//! # uba — Byzantine Agreement with Unknown Participants and Failures
//!
//! A faithful, executable reproduction of *"Byzantine Agreement with
//! Unknown Participants and Failures"* (Khanchandani & Wattenhofer,
//! PODC 2020): agreement algorithms for the **id-only model**, where every
//! node knows its own (unique, non-consecutive) identifier and **nothing
//! else** — neither the number of participants `n` nor the failure bound
//! `f` — yet all the fundamental agreement problems are solved with the
//! optimal resiliency `n > 3f`.
//!
//! This facade re-exports the workspace crates:
//!
//! - [`sim`] ([`uba_sim`]) — the synchronous round engine, the
//!   full-information rushing Byzantine adversary interface, dynamic
//!   membership, and the semi-synchronous/asynchronous engine;
//! - [`core`] ([`uba_core`]) — the paper's algorithms: reliable broadcast,
//!   rotor-coordinator, `O(f)` consensus, approximate agreement, parallel
//!   consensus, total ordering in dynamic networks, the appendix extensions
//!   (terminating reliable broadcast, renaming, king consensus), the
//!   classic known-`(n, f)` baselines, and the impossibility constructions;
//! - [`adversary`] ([`uba_adversary`]) — Byzantine strategies, generic and
//!   protocol-aware;
//! - [`net`] ([`uba_net`]) — the real TCP transport: framed codec, round
//!   synchronizer, WAN fault proxy, and the key-sharded log service
//!   (`logd`/`loadgen`);
//! - [`trace`] ([`uba_trace`]) — deterministic event traces and wall-clock
//!   runtime metrics.
//!
//! # Example: consensus among strangers
//!
//! ```
//! use uba::core::consensus::EarlyConsensus;
//! use uba::sim::{sparse_ids, SyncEngine};
//!
//! let ids = sparse_ids(7, 1);
//! let mut engine = SyncEngine::builder()
//!     .correct_many(ids.iter().enumerate().map(|(i, &id)| {
//!         EarlyConsensus::new(id, (i % 2) as u64)
//!     }))
//!     .build();
//! let done = engine.run_to_completion(100)?;
//! let mut decided: Vec<u64> = done.outputs.values().copied().collect();
//! decided.dedup();
//! assert_eq!(decided.len(), 1, "agreement without knowing n or f");
//! # Ok::<(), uba::sim::EngineError>(())
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! EXPERIMENTS.md for the full reproduction of the paper's claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use uba_adversary as adversary;
pub use uba_core as core;
pub use uba_net as net;
pub use uba_sim as sim;
pub use uba_trace as trace;

/// Compiles and runs every fenced Rust block in `README.md` as a doctest,
/// so the quickstart snippet can never drift from the actual API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;
