//! `uba-demo` — run any protocol of the paper from the command line.
//!
//! ```text
//! uba-demo consensus --nodes 10 --faulty 3 --adversary equivocate --seed 7
//! uba-demo broadcast --nodes 7  --faulty 2 --adversary forge
//! uba-demo approx    --nodes 9  --faulty 2 --iterations 5
//! uba-demo rotor     --nodes 7  --faulty 2
//! uba-demo ordering  --nodes 5  --rounds 50
//! uba-demo renaming  --nodes 8  --faulty 2
//! uba-demo trap      --patience 4
//! ```
//!
//! Every run is deterministic per `--seed`. Argument parsing is hand-rolled
//! to keep the dependency set minimal.

use std::collections::BTreeMap;
use std::process::ExitCode;

use uba::adversary::attacks::{ApproxExtremist, ConsensusEquivocator, RotorSplitAdversary};
use uba::adversary::{MirrorAdversary, ScriptedAdversary, SplitMirrorAdversary};
use uba::core::approx::ApproxAgreement;
use uba::core::consensus::{ConsensusMsg, EarlyConsensus};
use uba::core::harness::Setup;
use uba::core::lower_bounds::{delay_sweep, TimeoutConsensus};
use uba::core::ordering::TotalOrdering;
use uba::core::reliable::{RbMsg, ReliableBroadcast};
use uba::core::renaming::Renaming;
use uba::core::rotor::RotorCoordinator;
use uba::sim::{Adversary, AdversaryOutbox, AdversaryView, FnAdversary, NoAdversary, SyncEngine};

const USAGE: &str = "\
uba-demo — Byzantine agreement with unknown participants and failures

USAGE:
    uba-demo <consensus|broadcast|approx|rotor|ordering|renaming|trap> [OPTIONS]

OPTIONS (defaults in parentheses):
    --nodes <N>       correct nodes (7)
    --faulty <F>      Byzantine nodes (2)
    --seed <S>        deterministic seed (42)
    --adversary <A>   consensus: none|vanish|mirror|split-mirror|equivocate (equivocate)
                      broadcast: none|vanish|forge (forge)
    --iterations <K>  approx iterations (4)
    --rounds <R>      ordering horizon (40)
    --patience <P>    trap timeout parameter (4)
";

#[derive(Debug)]
struct Args {
    command: String,
    nodes: usize,
    faulty: usize,
    seed: u64,
    adversary: String,
    iterations: u64,
    rounds: u64,
    patience: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(|| USAGE.to_string())?;
    let mut args = Args {
        command,
        nodes: 7,
        faulty: 2,
        seed: 42,
        adversary: String::new(),
        iterations: 4,
        rounds: 40,
        patience: 4,
    };
    while let Some(flag) = argv.next() {
        let value = argv
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--nodes" => args.nodes = value.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--faulty" => args.faulty = value.parse().map_err(|e| format!("--faulty: {e}"))?,
            "--seed" => args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--adversary" => args.adversary = value,
            "--iterations" => {
                args.iterations = value.parse().map_err(|e| format!("--iterations: {e}"))?
            }
            "--rounds" => args.rounds = value.parse().map_err(|e| format!("--rounds: {e}"))?,
            "--patience" => {
                args.patience = value.parse().map_err(|e| format!("--patience: {e}"))?
            }
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if args.nodes == 0 {
        return Err("--nodes must be at least 1".into());
    }
    Ok(args)
}

fn banner(setup: &Setup) {
    println!(
        "population: {} correct + {} Byzantine = {} nodes (n > 3f: {})",
        setup.correct.len(),
        setup.f(),
        setup.n(),
        setup.satisfies_resiliency()
    );
    if !setup.satisfies_resiliency() {
        println!("WARNING: n ≤ 3f — the paper's guarantees do not apply; expect failures.");
    }
}

fn run_consensus(args: &Args) -> Result<(), String> {
    let setup = Setup::new(args.nodes, args.faulty, args.seed);
    banner(&setup);
    let inputs: Vec<u64> = (0..args.nodes).map(|i| (i % 2) as u64).collect();
    println!("inputs (by id order): {inputs:?}");
    let adversary: Box<dyn Adversary<ConsensusMsg<u64>>> = match args.adversary.as_str() {
        "" | "equivocate" => Box::new(ConsensusEquivocator::new(0u64, 1u64)),
        "none" => Box::new(NoAdversary),
        "vanish" => Box::new(ScriptedAdversary::announce_then_vanish(
            ConsensusMsg::RotorInit,
        )),
        "mirror" => Box::new(MirrorAdversary::new()),
        "split-mirror" => Box::new(SplitMirrorAdversary::new()),
        other => return Err(format!("unknown consensus adversary {other}")),
    };
    let mut engine = SyncEngine::builder()
        .correct_many(
            setup
                .correct
                .iter()
                .zip(&inputs)
                .map(|(&id, &x)| EarlyConsensus::new(id, x)),
        )
        .faulty_many(setup.faulty.iter().copied())
        .adversary(adversary)
        .build();
    let budget = 2 + 5 * (setup.n() as u64 + 6);
    match engine.run_to_completion(budget) {
        Ok(done) => {
            for (id, v) in &done.outputs {
                println!("  {id} decided {v} in round {}", done.decided_round[id]);
            }
            println!(
                "done in {} rounds, {} sends ({} adversarial)",
                done.last_decided_round(),
                done.stats.correct_sends + done.stats.adversary_sends,
                done.stats.adversary_sends
            );
            Ok(())
        }
        Err(e) => Err(format!("run failed: {e}")),
    }
}

fn run_broadcast(args: &Args) -> Result<(), String> {
    let setup = Setup::new(args.nodes, args.faulty, args.seed);
    banner(&setup);
    let sender = setup.correct[0];
    println!("designated sender: {sender}");
    let adversary: Box<dyn Adversary<RbMsg<&'static str>>> = match args.adversary.as_str() {
        "" | "forge" => Box::new(FnAdversary::new(
            |view: &AdversaryView<'_, RbMsg<&'static str>>,
             out: &mut AdversaryOutbox<RbMsg<&'static str>>| {
                for &b in view.faulty.iter() {
                    out.broadcast(b, RbMsg::Echo("forged"));
                }
            },
        )),
        "none" => Box::new(NoAdversary),
        "vanish" => Box::new(ScriptedAdversary::announce_then_vanish(RbMsg::Present)),
        other => return Err(format!("unknown broadcast adversary {other}")),
    };
    let mut engine = SyncEngine::builder()
        .correct_many(setup.correct.iter().map(|&id| {
            ReliableBroadcast::new(id, sender, (id == sender).then_some("payload")).with_horizon(8)
        }))
        .faulty_many(setup.faulty.iter().copied())
        .adversary(adversary)
        .build();
    let done = engine.run_to_completion(10).map_err(|e| e.to_string())?;
    for (id, accepted) in &done.outputs {
        match accepted.get("payload") {
            Some(r) => println!("  {id} accepted the payload in round {r}"),
            None => println!("  {id} accepted NOTHING"),
        }
        if accepted.contains_key("forged") {
            println!("  {id} accepted a FORGED message (resiliency violated)");
        }
    }
    Ok(())
}

fn run_approx(args: &Args) -> Result<(), String> {
    let setup = Setup::new(args.nodes, args.faulty, args.seed);
    banner(&setup);
    let inputs: Vec<f64> = (0..args.nodes).map(|i| i as f64).collect();
    println!(
        "inputs: 0.0..={:.1}, extremist adversary ±1e9",
        (args.nodes - 1) as f64
    );
    let mut engine = SyncEngine::builder()
        .correct_many(
            setup
                .correct
                .iter()
                .zip(&inputs)
                .map(|(&id, &x)| ApproxAgreement::new(id, x).with_iterations(args.iterations)),
        )
        .faulty_many(setup.faulty.iter().copied())
        .adversary(ApproxExtremist::new(1e9))
        .build();
    let done = engine
        .run_to_completion(args.iterations + 3)
        .map_err(|e| e.to_string())?;
    let lo = done.outputs.values().cloned().fold(f64::INFINITY, f64::min);
    let hi = done
        .outputs
        .values()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    for (id, v) in &done.outputs {
        println!("  {id} -> {v:.6}");
    }
    println!(
        "output range {:.6} after {} iterations (input range {:.1})",
        hi - lo,
        args.iterations,
        (args.nodes - 1) as f64
    );
    Ok(())
}

fn run_rotor(args: &Args) -> Result<(), String> {
    let setup = Setup::new(args.nodes, args.faulty, args.seed);
    banner(&setup);
    let mut engine = SyncEngine::builder()
        .correct_many(
            setup
                .correct
                .iter()
                .map(|&id| RotorCoordinator::new(id, id.raw())),
        )
        .faulty_many(setup.faulty.iter().copied())
        .adversary(RotorSplitAdversary::new())
        .build();
    let done = engine
        .run_to_completion(3 + 2 * setup.n() as u64 + 8)
        .map_err(|e| e.to_string())?;
    let sample = done.outputs.values().next().expect("outputs");
    println!("coordinator schedule (one node's view):");
    for (round, p) in &sample.selections {
        let kind = if setup.correct.contains(p) {
            "correct"
        } else {
            "faulty/ghost"
        };
        println!("  round {round}: {p} ({kind})");
    }
    println!("terminated in round {}", done.last_decided_round());
    Ok(())
}

fn run_ordering(args: &Args) -> Result<(), String> {
    let setup = Setup::new(args.nodes, 0, args.seed);
    banner(&setup);
    let mut engine = SyncEngine::builder()
        .correct_many(setup.correct.iter().enumerate().map(|(i, &id)| {
            TotalOrdering::genesis(id)
                .with_events((2..args.rounds / 2).map(move |r| (r, 100 * i as u64 + r)))
                .with_horizon(args.rounds)
        }))
        .build();
    let done = engine
        .run_to_completion(args.rounds + 2)
        .map_err(|e| e.to_string())?;
    let chain = done.outputs.values().next().expect("outputs");
    println!("final chain ({} events):", chain.len());
    for e in chain.iter().take(20) {
        println!("  wave {:>3}  {}  {}", e.wave, e.origin, e.value);
    }
    if chain.len() > 20 {
        println!("  … {} more", chain.len() - 20);
    }
    let identical = done.outputs.values().all(|c| c == chain);
    println!("all replicas identical: {identical}");
    Ok(())
}

fn run_renaming(args: &Args) -> Result<(), String> {
    let setup = Setup::new(args.nodes, args.faulty, args.seed);
    banner(&setup);
    let adversary: Box<dyn Adversary<uba::core::renaming::RenameMsg>> = if args.faulty > 0 {
        Box::new(ScriptedAdversary::announce_then_vanish(
            uba::core::renaming::RenameMsg::Init,
        ))
    } else {
        Box::new(NoAdversary)
    };
    let mut engine = SyncEngine::builder()
        .correct_many(setup.correct.iter().map(|&id| Renaming::new(id)))
        .faulty_many(setup.faulty.iter().copied())
        .adversary(adversary)
        .build();
    let done = engine
        .run_to_completion(4 * (setup.f() as u64 + 3) + 10)
        .map_err(|e| e.to_string())?;
    let last = done.last_decided_round();
    let outputs: BTreeMap<_, _> = done.outputs;
    for (id, outcome) in &outputs {
        println!("  {id} -> new id {}", outcome.my_rank);
    }
    println!("terminated in round {last}");
    Ok(())
}

fn run_trap(args: &Args) -> Result<(), String> {
    let ids = uba::sim::sparse_ids(args.nodes.max(2), args.seed);
    let half = ids.len() / 2;
    let horizon = TimeoutConsensus::decision_horizon(args.patience);
    println!(
        "two groups of {} vs {}, patience {}, decision horizon {} ticks",
        half,
        ids.len() - half,
        args.patience,
        horizon
    );
    println!("cross-delay | outcome");
    for point in delay_sweep(&ids[..half], &ids[half..], args.patience, 1..=horizon + 3) {
        println!(
            "{:>11} | {}",
            point.cross_delay,
            if point.disagreement {
                "DISAGREEMENT"
            } else {
                "agreement"
            }
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "consensus" => run_consensus(&args),
        "broadcast" => run_broadcast(&args),
        "approx" => run_approx(&args),
        "rotor" => run_rotor(&args),
        "ordering" => run_ordering(&args),
        "renaming" => run_renaming(&args),
        "trap" => run_trap(&args),
        other => Err(format!("unknown command {other}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
