//! Quickstart: the three headline primitives in one tour.
//!
//! Seven nodes with sparse 64-bit identifiers — none of which knows how
//! many participants exist or how many may be Byzantine — run reliable
//! broadcast, binary consensus and approximate agreement, with two faulty
//! nodes mounting a value-equivocation attack against the consensus.
//!
//! Run with: `cargo run --example quickstart`

use uba::adversary::attacks::ConsensusEquivocator;
use uba::core::approx::ApproxAgreement;
use uba::core::consensus::EarlyConsensus;
use uba::core::harness::Setup;
use uba::core::reliable::ReliableBroadcast;
use uba::sim::SyncEngine;

fn main() -> Result<(), uba::sim::EngineError> {
    let setup = Setup::new(7, 2, 42);
    println!("== the id-only model ==");
    println!("correct nodes: {:?}", setup.correct);
    println!("faulty nodes:  {:?}", setup.faulty);
    println!(
        "n = {}, f = {} (n > 3f: {}) — but no node knows any of this!\n",
        setup.n(),
        setup.f(),
        setup.satisfies_resiliency()
    );

    // --- Reliable broadcast -------------------------------------------------
    let sender = setup.correct[0];
    let mut engine = SyncEngine::builder()
        .correct_many(setup.correct.iter().map(|&id| {
            ReliableBroadcast::new(id, sender, (id == sender).then_some("ship it")).with_horizon(6)
        }))
        .build();
    let done = engine.run_to_completion(8)?;
    println!("== reliable broadcast ==");
    for (id, accepted) in &done.outputs {
        let round = accepted.get("ship it").expect("accepted");
        println!("  {id} accepted \"ship it\" in round {round}");
    }
    println!("  (correct sender => everyone accepts in round 3)\n");

    // --- Consensus under equivocation ---------------------------------------
    let mut engine = SyncEngine::builder()
        .correct_many(
            setup
                .correct
                .iter()
                .enumerate()
                .map(|(i, &id)| EarlyConsensus::new(id, (i % 2) as u64)),
        )
        .faulty_many(setup.faulty.iter().copied())
        .adversary(ConsensusEquivocator::new(0u64, 1u64))
        .build();
    let done = engine.run_to_completion(200)?;
    println!("== consensus (inputs split 0/1, Byzantine equivocators active) ==");
    for (id, v) in &done.outputs {
        println!("  {id} decided {v} in round {}", done.decided_round[id]);
    }
    println!(
        "  agreement in {} rounds, {} messages\n",
        done.last_decided_round(),
        done.stats.correct_sends + done.stats.adversary_sends
    );

    // --- Approximate agreement ----------------------------------------------
    let inputs = [20.1, 20.4, 19.8, 21.0, 20.6, 19.9, 20.2];
    let mut engine = SyncEngine::builder()
        .correct_many(
            setup
                .correct
                .iter()
                .zip(inputs)
                .map(|(&id, x)| ApproxAgreement::new(id, x).with_iterations(4)),
        )
        .build();
    let done = engine.run_to_completion(6)?;
    println!("== approximate agreement (4 iterations) ==");
    for (id, v) in &done.outputs {
        println!("  {id} converged to {v:.4}");
    }
    let lo = done.outputs.values().cloned().fold(f64::INFINITY, f64::min);
    let hi = done
        .outputs
        .values()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "  input range 1.2 -> output range {:.4} (halves per iteration)",
        hi - lo
    );
    Ok(())
}
