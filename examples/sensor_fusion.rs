//! Sensor fusion in a wireless sensor network — the paper's motivating
//! scenario of a network "that experiences a changing number of faulty or
//! disconnected nodes over time".
//!
//! Eleven temperature sensors (three of them compromised, feeding
//! coordinated extreme readings to different halves of the network) fuse
//! their readings with iterated approximate agreement. No sensor knows how
//! many peers exist or how many are compromised; the `⌊n_v/3⌋` trimming of
//! Algorithm 4 still pins every output inside the honest reading range and
//! halves the spread every iteration.
//!
//! Run with: `cargo run --example sensor_fusion`

use uba::adversary::attacks::ApproxExtremist;
use uba::core::approx::ApproxAgreement;
use uba::core::harness::{output_range, Setup};
use uba::sim::SyncEngine;

fn main() -> Result<(), uba::sim::EngineError> {
    let setup = Setup::new(8, 3, 7);
    // Honest readings cluster around 21 °C with calibration spread.
    let readings = [20.3, 22.1, 21.4, 20.9, 21.8, 20.6, 21.1, 21.6];
    let honest_lo = readings.iter().cloned().fold(f64::INFINITY, f64::min);
    let honest_hi = readings.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

    println!("== Byzantine sensor fusion ==");
    println!(
        "honest sensors: {} (readings {honest_lo}..{honest_hi} °C)",
        setup.correct.len()
    );
    println!(
        "compromised sensors: {} (injecting ±1000 °C, different signs to different halves)\n",
        setup.faulty.len()
    );

    let iterations = 6;
    let mut engine = SyncEngine::builder()
        .correct_many(
            setup
                .correct
                .iter()
                .zip(readings)
                .map(|(&id, r)| ApproxAgreement::new(id, r).with_iterations(iterations)),
        )
        .faulty_many(setup.faulty.iter().copied())
        .adversary(ApproxExtremist::new(1000.0))
        .build();

    // Watch the spread shrink iteration by iteration.
    println!("iteration | honest spread (°C)");
    for it in 0..=iterations {
        if it > 0 {
            engine.run_round();
        }
        let estimates: std::collections::BTreeMap<_, _> = setup
            .correct
            .iter()
            .filter_map(|&id| engine.process(id).map(|p| (id, p.current())))
            .collect();
        let lo = estimates.values().cloned().fold(f64::INFINITY, f64::min);
        let hi = estimates
            .values()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!("{it:>9} | {:.6}", hi - lo);
    }

    let done = engine.run_to_completion(iterations + 3)?;
    let (lo, hi) = output_range(&done.outputs);
    println!("\nfused estimates: {lo:.4}..{hi:.4} °C");
    assert!(
        lo >= honest_lo && hi <= honest_hi,
        "attack never escapes the honest range"
    );
    println!(
        "every estimate is inside the honest range {honest_lo}..{honest_hi} — attack defused."
    );
    Ok(())
}
