//! Why synchrony is necessary — the paper's impossibility results, run as
//! an experiment.
//!
//! Without knowing `n` or `f`, a node cannot know how many messages to wait
//! for; any timeout-style decision rule must eventually decide on whatever
//! it has seen. This example runs the canonical timeout-based consensus
//! attempt under the adversarial scheduler from the paper's
//! indistinguishability proofs: two groups with opposite inputs, fast
//! delivery inside each group, and a sweep of cross-group delays. The
//! output shows the predicted sharp threshold — agreement below the
//! decision horizon, guaranteed disagreement above it — for every patience
//! parameter, i.e. no timeout tuning can save the protocol.
//!
//! Run with: `cargo run --example asynchrony_trap`

use uba::core::lower_bounds::{delay_sweep, partition_run, TimeoutConsensus};
use uba::sim::sparse_ids;

fn main() -> Result<(), uba::sim::EngineError> {
    let ids = sparse_ids(8, 2024);
    let (a, b) = ids.split_at(4);

    println!("== the asynchrony trap ==");
    println!("group A (input 1): {a:?}");
    println!("group B (input 0): {b:?}\n");

    for patience in [2u64, 4, 8] {
        let horizon = TimeoutConsensus::decision_horizon(patience);
        println!("patience = {patience} (decision horizon = {horizon} ticks)");
        println!("  cross-delay | outcome");
        let sweep = delay_sweep(a, b, patience, 1..=horizon + 3);
        for point in &sweep {
            println!(
                "  {:>11} | {}",
                point.cross_delay,
                if point.disagreement {
                    "DISAGREEMENT — each side decided alone"
                } else {
                    "agreement"
                }
            );
            assert_eq!(point.disagreement, point.cross_delay > horizon);
        }
        println!();
    }

    // The semi-synchronous argument in one line: whatever patience you
    // pick, a delay just beyond your horizon defeats it — and you do not
    // know the delay bound, so you cannot pick a safe patience.
    let patience = 16;
    let horizon = TimeoutConsensus::decision_horizon(patience);
    let outcome = partition_run(a, b, patience, horizon + 1, 10 * horizon)?;
    println!(
        "even with patience {patience}: cross-delay {} ⇒ disagreement = {}",
        horizon + 1,
        outcome.disagreement
    );
    println!("conclusion: with unknown n and f, agreement requires synchrony (paper §Synchrony is Necessary).");
    Ok(())
}
