//! Configuration agreement in an elastic database cluster — the paper's
//! first motivating example: "a database cluster that requires frequent
//! node scaling because of changing load", where no node can be kept
//! up-to-date about the current cluster size or failure budget.
//!
//! Nine replicas must agree which configuration epoch to activate. Three of
//! them are faulty: they run the real protocol for a while and then crash
//! (a realistic fault), while the run is repeated with a full equivocation
//! attack for comparison. Consensus (Algorithm 3) decides in `O(f)` rounds
//! either way, and the decision is always an epoch some correct replica
//! proposed.
//!
//! Run with: `cargo run --example cluster_config`

use uba::adversary::attacks::ConsensusEquivocator;
use uba::adversary::CrashAdversary;
use uba::core::consensus::EarlyConsensus;
use uba::core::harness::{assert_agreement, Setup};
use uba::sim::SyncEngine;

/// A configuration epoch proposal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
struct Epoch(u64);

fn main() -> Result<(), uba::sim::EngineError> {
    let setup = Setup::new(9, 3, 123);
    // Replicas propose the epochs they last saw: a rolling upgrade has left
    // the cluster split between epoch 7 and epoch 8.
    let proposals: Vec<Epoch> = (0..9).map(|i| Epoch(7 + (i % 2) as u64)).collect();

    println!("== elastic cluster, scenario 1: crash faults ==");
    let crash = CrashAdversary::new(
        setup
            .faulty
            .iter()
            .map(|&id| EarlyConsensus::new(id, Epoch(7))),
        12,
    );
    let mut engine = SyncEngine::builder()
        .correct_many(
            setup
                .correct
                .iter()
                .zip(&proposals)
                .map(|(&id, &e)| EarlyConsensus::new(id, e)),
        )
        .faulty_many(setup.faulty.iter().copied())
        .adversary(crash)
        .build();
    let done = engine.run_to_completion(300)?;
    let epoch = assert_agreement(&done.outputs);
    println!(
        "  {} replicas activated {epoch:?} in {} rounds ({} messages), \
         3 replicas crashed at round 12",
        done.outputs.len(),
        done.last_decided_round(),
        done.stats.correct_sends + done.stats.adversary_sends,
    );

    println!("\n== elastic cluster, scenario 2: equivocating replicas ==");
    let mut engine = SyncEngine::builder()
        .correct_many(
            setup
                .correct
                .iter()
                .zip(&proposals)
                .map(|(&id, &e)| EarlyConsensus::new(id, e)),
        )
        .faulty_many(setup.faulty.iter().copied())
        .adversary(ConsensusEquivocator::new(Epoch(7), Epoch(8)))
        .build();
    let done = engine.run_to_completion(300)?;
    let epoch = assert_agreement(&done.outputs);
    println!(
        "  {} replicas activated {epoch:?} in {} rounds despite split-brain lies",
        done.outputs.len(),
        done.last_decided_round(),
    );
    assert!(epoch == Epoch(7) || epoch == Epoch(8), "validity");
    println!("\nboth runs agreed on a proposed epoch — no replica ever knew n or f.");
    Ok(())
}
