//! Byzantine-tolerant clock synchronization via iterated approximate
//! agreement — the classic application the paper cites for approximate
//! agreement (Welch–Lynch style fault-tolerant clock sync), here in the
//! id-only model: the ensemble does not know its own size or how many
//! clocks are compromised.
//!
//! Ten nodes hold drifting hardware clock offsets (milliseconds); three are
//! compromised and report wildly different times to different peers. Each
//! synchronization beat runs one approximate-agreement iteration on the
//! clock estimates; the honest ensemble's spread collapses geometrically
//! and never leaves the honest envelope, so the cluster can timestamp
//! events consistently.
//!
//! Run with: `cargo run --example clock_sync`

use uba::adversary::attacks::ApproxExtremist;
use uba::core::harness::{output_range, Setup};
use uba::core::{approx::ApproxAgreement, spec};
use uba::sim::SyncEngine;

fn main() -> Result<(), uba::sim::EngineError> {
    let setup = Setup::new(7, 3, 2029);
    // Honest clock offsets in ms relative to true time.
    let offsets = [-4.2, 1.3, 0.4, -2.8, 3.9, 2.2, -0.7];
    let beats = 8;

    println!("== Byzantine clock synchronization ==");
    println!("honest clocks: {offsets:?} ms");
    println!(
        "compromised clocks: {} (reporting ±1e6 ms, split by recipient)\n",
        setup.f()
    );

    let mut engine = SyncEngine::builder()
        .correct_many(
            setup
                .correct
                .iter()
                .zip(offsets)
                .map(|(&id, off)| ApproxAgreement::new(id, off).with_iterations(beats)),
        )
        .faulty_many(setup.faulty.iter().copied())
        .adversary(ApproxExtremist::new(1e6))
        .build();

    println!("beat | ensemble spread (ms)");
    for beat in 0..=beats {
        if beat > 0 {
            engine.run_round();
        }
        let spread = {
            let estimates: Vec<f64> = setup
                .correct
                .iter()
                .filter_map(|&id| engine.process(id).map(|p| p.current()))
                .collect();
            estimates.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - estimates.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        println!("{beat:>4} | {spread:.6}");
    }

    let done = engine.run_to_completion(beats + 3)?;
    let (lo, hi) = output_range(&done.outputs);
    println!("\nsynchronized offsets: {lo:.5}..{hi:.5} ms");

    // Check the formal properties with the executable spec.
    let inputs: std::collections::BTreeMap<_, _> =
        setup.correct.iter().copied().zip(offsets).collect();
    spec::approx_containment(&inputs, &done.outputs).assert_holds();
    spec::approx_contraction(&inputs, &done.outputs, beats as u32).assert_holds();
    println!(
        "containment and per-beat halving verified — clocks agree to within {:.4} ms.",
        hi - lo
    );
    Ok(())
}
