//! A permissionless replicated event log — the paper's blockchain
//! motivation: participants come and go, nobody is told `n` or `f`, yet all
//! replicas must agree on one growing, totally ordered log.
//!
//! Four founding replicas order client events with Algorithm 6 (one
//! parallel-consensus wave per round). A fifth replica joins mid-run,
//! synchronizes its round via the majority-ack protocol and contributes
//! events; one founder later announces departure and finishes its
//! outstanding waves before leaving. The run prints every replica's chain
//! and checks the chain-prefix property.
//!
//! Run with: `cargo run --example permissionless_log`

use uba::core::harness::mutual_prefix;
use uba::core::ordering::TotalOrdering;
use uba::sim::{sparse_ids, ChurnSchedule, SyncEngine};

fn main() -> Result<(), uba::sim::EngineError> {
    let ids = sparse_ids(5, 99);
    let (founders, joiner) = (&ids[..4], ids[4]);
    let horizon = 70;

    let mut churn: ChurnSchedule<TotalOrdering<String>> = ChurnSchedule::new();
    churn.join_correct(
        6,
        TotalOrdering::joining(joiner)
            .with_events([
                (14, "tx-from-joiner".to_string()),
                (18, "another-tx".to_string()),
            ])
            .with_horizon(horizon),
    );

    let mut engine = SyncEngine::builder()
        .correct_many(founders.iter().enumerate().map(|(i, &id)| {
            let node = TotalOrdering::genesis(id).with_events([
                (2 + i as u64, format!("tx-{i}-a")),
                (10 + i as u64, format!("tx-{i}-b")),
            ]);
            if i == 0 {
                // The first founder leaves mid-run.
                node.with_leave_at(30)
            } else {
                node.with_horizon(horizon)
            }
        }))
        .churn(churn)
        .build();

    println!("== permissionless event log ==");
    println!("founders: {founders:?}");
    println!("joiner:   {joiner} (joins at round 6)");
    println!(
        "leaver:   {} (announces absence at round 30)\n",
        founders[0]
    );

    let done = engine.run_to_completion(horizon + 5)?;

    for (id, chain) in &done.outputs {
        let rendered: Vec<String> = chain
            .iter()
            .map(|e| format!("[w{} {}]", e.wave, e.value))
            .collect();
        println!("{id}: {} events", chain.len());
        println!("   {}", rendered.join(" -> "));
    }

    // Consistency: every pair of replicas agrees on the waves they both
    // report (founders satisfy plain chain-prefix; the late joiner reports
    // a suffix, the early leaver a prefix — their overlaps must match).
    let all: Vec<&Vec<_>> = done.outputs.values().collect();
    for i in 0..all.len() {
        for j in i + 1..all.len() {
            let (a, b) = (all[i], all[j]);
            let (Some(a0), Some(b0)) = (a.first(), b.first()) else {
                continue;
            };
            let lo = a0.wave.max(b0.wave);
            let hi = a
                .last()
                .expect("non-empty")
                .wave
                .min(b.last().expect("non-empty").wave);
            let a_win: Vec<_> = a.iter().filter(|e| e.wave >= lo && e.wave <= hi).collect();
            let b_win: Vec<_> = b.iter().filter(|e| e.wave >= lo && e.wave <= hi).collect();
            assert!(
                mutual_prefix(&a_win, &b_win) && a_win.len() == b_win.len(),
                "overlap mismatch between replicas {i} and {j}"
            );
        }
    }
    println!("\nchain consistency holds across founders, the joiner and the leaver.");
    Ok(())
}
