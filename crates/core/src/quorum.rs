//! Threshold arithmetic for the `n_v/3` and `2n_v/3` quorum rules.
//!
//! The paper's central observation: if all correct nodes broadcast in a
//! round, then each correct node `v` receives fewer than `n_v/3` messages
//! from Byzantine nodes, where `n_v` is the number of nodes `v` has heard
//! from — so the classic `f + 1` / `n − f` thresholds can be replaced by
//! `n_v/3` / `2n_v/3` even though `n_v/3` is *not* a correct upper bound on
//! the number of failures.
//!
//! All comparisons are exact rational arithmetic over integers — no floats:
//! `count ≥ n/3 ⟺ 3·count ≥ n` and `count ≥ 2n/3 ⟺ 3·count ≥ 2n`.

use std::collections::BTreeMap;

/// `count ≥ n/3` (exactly, as rationals), with the convention that hearing
/// nothing never meets a quorum.
///
/// # Examples
///
/// ```
/// use uba_core::quorum::meets_third;
/// assert!(meets_third(2, 4));  // 2 ≥ 4/3
/// assert!(!meets_third(1, 4)); // 1 < 4/3
/// assert!(meets_third(1, 3));  // 1 ≥ 1
/// assert!(!meets_third(0, 0)); // vacuous quorums are rejected
/// ```
pub fn meets_third(count: usize, n: usize) -> bool {
    count > 0 && 3 * count >= n
}

/// `count ≥ 2n/3` (exactly, as rationals), with the same non-vacuous
/// convention as [`meets_third`].
///
/// # Examples
///
/// ```
/// use uba_core::quorum::meets_two_thirds;
/// assert!(meets_two_thirds(3, 4));  // 3 ≥ 8/3
/// assert!(!meets_two_thirds(2, 4)); // 2 < 8/3
/// assert!(meets_two_thirds(2, 3));  // 2 ≥ 2
/// ```
pub fn meets_two_thirds(count: usize, n: usize) -> bool {
    count > 0 && 3 * count >= 2 * n
}

/// Tallies occurrences of each value.
///
/// Returns a map from value to count, deterministic by the value ordering.
pub fn tally<V: Ord, I: IntoIterator<Item = V>>(values: I) -> BTreeMap<V, usize> {
    let mut map = BTreeMap::new();
    for v in values {
        *map.entry(v).or_insert(0) += 1;
    }
    map
}

/// The value with the highest count (ties broken toward the smaller value),
/// or `None` for an empty tally.
///
/// When `n > 3f`, the quorum-intersection lemmas of the paper guarantee at
/// most one value can reach a `2n_v/3` quorum; this deterministic selection
/// only matters in deliberately broken (`n ≤ 3f`) configurations, where the
/// algorithms must still behave deterministically rather than panic.
pub fn max_tally<V: Ord + Clone>(tally: &BTreeMap<V, usize>) -> Option<(V, usize)> {
    tally
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
        .map(|(v, c)| (v.clone(), *c))
}

/// The unique value whose count meets `threshold(count, n)`, selected
/// deterministically via [`max_tally`] if several qualify.
pub fn quorum_value<V: Ord + Clone>(
    tally: &BTreeMap<V, usize>,
    n: usize,
    threshold: fn(usize, usize) -> bool,
) -> Option<V> {
    let (v, c) = max_tally(tally)?;
    threshold(c, n).then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn third_threshold_boundaries() {
        // n = 6: n/3 = 2.
        assert!(!meets_third(1, 6));
        assert!(meets_third(2, 6));
        // n = 7: n/3 = 2.33…, so 3 is needed.
        assert!(!meets_third(2, 7));
        assert!(meets_third(3, 7));
        // n = 1.
        assert!(meets_third(1, 1));
    }

    #[test]
    fn two_thirds_threshold_boundaries() {
        // n = 6: 2n/3 = 4.
        assert!(!meets_two_thirds(3, 6));
        assert!(meets_two_thirds(4, 6));
        // n = 7: 2n/3 = 4.66…, so 5 is needed.
        assert!(!meets_two_thirds(4, 7));
        assert!(meets_two_thirds(5, 7));
        // n = 1: a single self-echo suffices.
        assert!(meets_two_thirds(1, 1));
    }

    #[test]
    fn zero_count_never_meets() {
        assert!(!meets_third(0, 0));
        assert!(!meets_two_thirds(0, 0));
    }

    #[test]
    fn tally_counts() {
        let t = tally(vec!["a", "b", "a", "a"]);
        assert_eq!(t["a"], 3);
        assert_eq!(t["b"], 1);
    }

    #[test]
    fn max_tally_breaks_ties_low() {
        let t = tally(vec![2, 1, 1, 2]);
        assert_eq!(max_tally(&t), Some((1, 2)));
        let empty: BTreeMap<u8, usize> = BTreeMap::new();
        assert_eq!(max_tally(&empty), None);
    }

    #[test]
    fn quorum_value_respects_threshold() {
        let t = tally(vec![5, 5, 5, 9]);
        assert_eq!(quorum_value(&t, 4, meets_two_thirds), Some(5));
        assert_eq!(quorum_value(&t, 12, meets_two_thirds), None);
    }
}
