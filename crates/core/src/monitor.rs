//! Online monitors evaluating the paper's properties on partial state.
//!
//! The [`crate::spec`] checkers judge finished runs; the monitors
//! here implement the *prefix-closed* strengthening of the same properties
//! so a [`RoundMonitor`] installed on the engine can abort a run at the
//! **first** round in which a property breaks:
//!
//! - [`AgreementMonitor`] — *agreement-so-far*: all outputs produced so far
//!   by the watched nodes are equal (agreement can never be repaired once
//!   two nodes have decided differently);
//! - [`ValidityMonitor`] — every output produced so far is a watched node's
//!   input, and unanimity is preserved;
//! - [`ApproxMonitor`] — every watched node's *current estimate* stays in
//!   the watched input range (containment is inductive round by round), and
//!   the final outputs satisfy the contraction bound;
//! - [`RelayMonitor`] / [`UnforgeabilityMonitor`] — reliable-broadcast
//!   relay (acceptance by a watched node in round `r` forces acceptance by
//!   all watched nodes by round `r + 1`) and unforgeability (a silent
//!   correct sender's message is never accepted).
//!
//! `watched` should be the run's *pristine* nodes: correct, never touched
//! by the [`FaultPlan`](uba_sim::FaultPlan), and within the `n > 3f`
//! budget; the paper promises nothing to anyone else.

use std::collections::{BTreeMap, BTreeSet};

use uba_sim::{MonitorView, NodeId, Process, RoundMonitor, ViolationReport};

use crate::approx::ApproxAgreement;
use crate::reliable::ReliableBroadcast;
use crate::spec::{self, SpecReport};
use crate::value::Value;

/// Converts a [`SpecReport`] into the monitor result for `round`.
fn lift(round: u64, report: SpecReport) -> Result<(), ViolationReport> {
    if report.holds() {
        Ok(())
    } else {
        Err(ViolationReport {
            round,
            spec: report.property.to_string(),
            nodes: report.offenders,
            violations: report.violations,
        })
    }
}

/// *Agreement-so-far*: the outputs produced so far by the watched nodes are
/// all equal.
///
/// Works for any protocol whose output is a [`Value`] (consensus, vector
/// consensus, renaming, …).
#[derive(Debug, Clone)]
pub struct AgreementMonitor {
    watched: BTreeSet<NodeId>,
}

impl AgreementMonitor {
    /// Watches the given (pristine) nodes.
    pub fn new<I: IntoIterator<Item = NodeId>>(watched: I) -> Self {
        AgreementMonitor {
            watched: watched.into_iter().collect(),
        }
    }
}

impl<P> RoundMonitor<P> for AgreementMonitor
where
    P: Process,
    P::Output: Value,
{
    fn check(&mut self, view: &MonitorView<'_, P>) -> Result<(), ViolationReport> {
        let outputs: BTreeMap<NodeId, P::Output> = view
            .outputs()
            .into_iter()
            .filter(|(id, _)| self.watched.contains(id))
            .collect();
        lift(view.round, spec::consensus_agreement(&outputs))
    }
}

/// *Validity-so-far*: every output produced so far by a watched node is some
/// watched node's input, and unanimous inputs force that very output.
#[derive(Debug, Clone)]
pub struct ValidityMonitor<V: Value> {
    inputs: BTreeMap<NodeId, V>,
}

impl<V: Value> ValidityMonitor<V> {
    /// Watches the nodes keyed in `inputs` (their protocol inputs).
    pub fn new(inputs: BTreeMap<NodeId, V>) -> Self {
        ValidityMonitor { inputs }
    }
}

impl<V: Value, P: Process<Output = V>> RoundMonitor<P> for ValidityMonitor<V> {
    fn check(&mut self, view: &MonitorView<'_, P>) -> Result<(), ViolationReport> {
        let outputs: BTreeMap<NodeId, V> = view
            .outputs()
            .into_iter()
            .filter(|(id, _)| self.inputs.contains_key(id))
            .collect();
        lift(view.round, spec::consensus_validity(&self.inputs, &outputs))
    }
}

/// Approximate-agreement containment (checked every round on the current
/// estimates) and contraction (checked once every watched node has decided).
#[derive(Debug, Clone)]
pub struct ApproxMonitor {
    inputs: BTreeMap<NodeId, f64>,
    watched: BTreeSet<NodeId>,
    iterations: u32,
}

impl ApproxMonitor {
    /// Watches the nodes keyed in `inputs`; `iterations` is the configured
    /// iteration count the contraction bound `range / 2^iterations` uses.
    pub fn new(inputs: BTreeMap<NodeId, f64>, iterations: u32) -> Self {
        ApproxMonitor {
            watched: inputs.keys().copied().collect(),
            inputs,
            iterations,
        }
    }

    /// Restricts the checked nodes to `watched` (the run's pristine nodes).
    ///
    /// The containment/contraction range still spans *all* inputs: a
    /// benign-faulted victim is honest, so its input legitimately pulls on
    /// everyone's estimates — but the paper promises convergence only to
    /// nodes within the `n > 3f` budget, and an omission-faulted victim
    /// that hears nobody rightfully keeps its own input forever.
    pub fn watched<I: IntoIterator<Item = NodeId>>(mut self, watched: I) -> Self {
        self.watched = watched.into_iter().collect();
        self
    }
}

impl RoundMonitor<ApproxAgreement> for ApproxMonitor {
    fn check(&mut self, view: &MonitorView<'_, ApproxAgreement>) -> Result<(), ViolationReport> {
        // Containment is inductive: the current estimate of every watched
        // node must stay within the input range in *every* round, not just
        // at termination.
        let estimates: BTreeMap<NodeId, f64> = self
            .watched
            .iter()
            .filter_map(|&id| view.process(id).map(|p| (id, p.current())))
            .collect();
        lift(
            view.round,
            spec::approx_containment(&self.inputs, &estimates),
        )?;

        // Contraction is only promised for the final outputs.
        let outputs: BTreeMap<NodeId, f64> = view
            .outputs()
            .into_iter()
            .filter(|(id, _)| self.watched.contains(id))
            .collect();
        if outputs.len() == self.watched.len() {
            lift(
                view.round,
                spec::approx_contraction(&self.inputs, &outputs, self.iterations),
            )?;
        }
        Ok(())
    }
}

/// Gathers the accepted-message maps of the watched, present nodes.
fn watched_accepted<M: Value>(
    watched: &BTreeSet<NodeId>,
    view: &MonitorView<'_, ReliableBroadcast<M>>,
) -> BTreeMap<NodeId, BTreeMap<M, u64>> {
    watched
        .iter()
        .filter_map(|&id| view.process(id).map(|p| (id, p.accepted())))
        .collect()
}

/// Online reliable-broadcast *relay*: once a watched node accepts `m` in
/// round `r`, every watched node must have accepted `m` by round `r + 1`
/// (and never more than one round apart).
#[derive(Debug, Clone)]
pub struct RelayMonitor {
    watched: BTreeSet<NodeId>,
}

impl RelayMonitor {
    /// Watches the given (pristine) nodes.
    pub fn new<I: IntoIterator<Item = NodeId>>(watched: I) -> Self {
        RelayMonitor {
            watched: watched.into_iter().collect(),
        }
    }
}

impl<M: Value> RoundMonitor<ReliableBroadcast<M>> for RelayMonitor {
    fn check(
        &mut self,
        view: &MonitorView<'_, ReliableBroadcast<M>>,
    ) -> Result<(), ViolationReport> {
        let accepted = watched_accepted(&self.watched, view);
        let mut per_message: BTreeMap<&M, Vec<(NodeId, u64)>> = BTreeMap::new();
        for (id, acc) in &accepted {
            for (m, r) in acc {
                per_message.entry(m).or_default().push((*id, *r));
            }
        }
        let mut violations = Vec::new();
        let mut offenders: Vec<NodeId> = Vec::new();
        let mut blame = |id: NodeId| {
            if !offenders.contains(&id) {
                offenders.push(id);
            }
        };
        for (m, holders) in per_message {
            let first = holders.iter().map(|(_, r)| *r).min().unwrap_or(0);
            // The relay window is still open in rounds `first` and
            // `first + 1`; from `first + 1` on, everyone must have it.
            if view.round < first + 1 {
                continue;
            }
            for (&id, acc) in &accepted {
                match acc.get(m) {
                    None => {
                        violations.push(format!(
                            "{id} has not accepted {m:?}, first accepted in round {first}"
                        ));
                        blame(id);
                    }
                    Some(&r) if r > first + 1 => {
                        violations.push(format!(
                            "{id} accepted {m:?} in round {r}, more than one round after {first}"
                        ));
                        blame(id);
                    }
                    Some(_) => {}
                }
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(ViolationReport {
                round: view.round,
                spec: "reliable broadcast relay".to_string(),
                nodes: offenders,
                violations,
            })
        }
    }
}

/// Reliable-broadcast *unforgeability* for a correct, silent sender: no
/// watched node may ever accept anything.
#[derive(Debug, Clone)]
pub struct UnforgeabilityMonitor {
    watched: BTreeSet<NodeId>,
}

impl UnforgeabilityMonitor {
    /// Watches the given (pristine) nodes.
    pub fn new<I: IntoIterator<Item = NodeId>>(watched: I) -> Self {
        UnforgeabilityMonitor {
            watched: watched.into_iter().collect(),
        }
    }
}

impl<M: Value> RoundMonitor<ReliableBroadcast<M>> for UnforgeabilityMonitor {
    fn check(
        &mut self,
        view: &MonitorView<'_, ReliableBroadcast<M>>,
    ) -> Result<(), ViolationReport> {
        let accepted = watched_accepted(&self.watched, view);
        lift(view.round, spec::broadcast_unforgeability(&accepted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::EarlyConsensus;
    use uba_sim::{sparse_ids, EngineError, SyncEngine};

    #[test]
    fn agreement_monitor_passes_an_honest_consensus_run() {
        let ids = sparse_ids(4, 7);
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .enumerate()
                    .map(|(i, &id)| EarlyConsensus::new(id, (i % 2) as u64)),
            )
            .monitor(AgreementMonitor::new(ids.iter().copied()))
            .build();
        engine.run_to_completion(50).expect("no violation");
    }

    #[test]
    fn validity_monitor_passes_unanimous_run() {
        let ids = sparse_ids(4, 7);
        let inputs: BTreeMap<NodeId, u64> = ids.iter().map(|&id| (id, 9)).collect();
        let mut engine = SyncEngine::builder()
            .correct_many(ids.iter().map(|&id| EarlyConsensus::new(id, 9u64)))
            .monitor(ValidityMonitor::new(inputs))
            .build();
        let done = engine.run_to_completion(50).expect("no violation");
        assert!(done.outputs.values().all(|&v| v == 9));
    }

    #[test]
    fn approx_monitor_flags_estimate_outside_input_range() {
        // The monitor is told the inputs are {0, 1} but one process actually
        // starts at 5: containment is violated in the very first round.
        let ids = sparse_ids(2, 3);
        let inputs: BTreeMap<NodeId, f64> = [(ids[0], 0.0), (ids[1], 1.0)].into_iter().collect();
        let mut engine = SyncEngine::builder()
            .correct(ApproxAgreement::new(ids[0], 0.0).with_iterations(1))
            .correct(ApproxAgreement::new(ids[1], 5.0).with_iterations(1))
            .monitor(ApproxMonitor::new(inputs, 1))
            .build();
        match engine.try_run_round().unwrap_err() {
            EngineError::InvariantViolated(report) => {
                assert_eq!(report.round, 1);
                assert_eq!(report.spec, "approximate agreement containment");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn relay_monitor_passes_an_honest_broadcast() {
        let ids = sparse_ids(4, 11);
        let sender = ids[0];
        let mut engine = SyncEngine::builder()
            .correct_many(ids.iter().map(|&id| {
                ReliableBroadcast::new(id, sender, (id == sender).then_some(7u64)).with_horizon(6)
            }))
            .monitor(RelayMonitor::new(ids.iter().copied()))
            .build();
        engine.run_to_completion(8).expect("relay holds");
    }

    #[test]
    fn unforgeability_monitor_flags_acceptance_at_its_round() {
        // Install the silent-sender monitor on a run whose sender *does*
        // broadcast: acceptance happens in round 3 and the monitor must
        // pinpoint exactly that round.
        let ids = sparse_ids(4, 11);
        let sender = ids[0];
        let mut engine = SyncEngine::builder()
            .correct_many(ids.iter().map(|&id| {
                ReliableBroadcast::new(id, sender, (id == sender).then_some(7u64)).with_horizon(6)
            }))
            .monitor(UnforgeabilityMonitor::new(ids.iter().copied()))
            .build();
        let mut first_violation = None;
        for _ in 0..6 {
            if let Err(EngineError::InvariantViolated(report)) = engine.try_run_round() {
                first_violation = Some(report);
                break;
            }
        }
        let report = first_violation.expect("monitor fires");
        assert_eq!(report.round, 3, "acceptance happens in round 3");
    }
}
