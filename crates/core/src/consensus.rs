//! Early-terminating consensus — Algorithm 3 of the paper.
//!
//! Every correct node has an input (a real number in the paper; any
//! [`Value`] here); all correct nodes must output a common value that was
//! the input of some correct node if all correct inputs were equal, within
//! `O(f)` rounds — without knowing `n` or `f`.
//!
//! The algorithm runs 5-round *phases* on top of a two-round initialization
//! that also initializes the embedded rotor-coordinator:
//!
//! | phase round | action |
//! |-------------|--------|
//! | 1 | broadcast `input(x_v)` |
//! | 2 | on a `2n_v/3` input quorum, broadcast `prefer(x)` |
//! | 3 | on `n_v/3` prefers adopt `x`; on `2n_v/3` broadcast `strongprefer(x)` |
//! | 4 | one rotor-coordinator step; the selected coordinator broadcasts its opinion |
//! | 5 | with `< n_v/3` strongprefers adopt the coordinator's opinion; with a `2n_v/3` strongprefer quorum terminate |
//!
//! Membership is frozen after initialization ("a node only accepts messages
//! from a node if it counted towards `n_v`"), and a counted member that goes
//! silent is substituted by the receiver's *own most recent message of the
//! expected type* (the caption of Algorithm 3) — this is what lets nodes
//! that terminated a phase earlier be accounted for consistently.

use std::collections::{BTreeMap, BTreeSet};

use uba_sim::{Context, Envelope, NodeId, Process};

use crate::quorum::{max_tally, meets_third, meets_two_thirds, quorum_value, tally};
use crate::rotor::RotorCore;
use crate::tracker::{FrozenMembership, ParticipantTracker};
use crate::value::Value;

pub mod king;

/// Messages of the consensus protocol. The `Rotor*` and `Opinion` variants
/// belong to the embedded rotor-coordinator.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ConsensusMsg<V> {
    /// Rotor: willingness to coordinate (global round 1).
    RotorInit,
    /// Rotor: candidate echo.
    RotorEcho(NodeId),
    /// Rotor: the phase coordinator's opinion.
    Opinion(V),
    /// Phase round 1: the node's current value.
    Input(V),
    /// Phase round 2: a `2n_v/3` input quorum was observed.
    Prefer(V),
    /// Phase round 3: a `2n_v/3` prefer quorum was observed.
    StrongPrefer(V),
}

/// Number of engine rounds of one phase.
pub const PHASE_ROUNDS: u64 = 5;
/// Number of initialization rounds before the first phase.
pub const INIT_ROUNDS: u64 = 2;

/// Converts a global engine round to `(phase, phase_round)`, both 1-based.
///
/// # Panics
///
/// Panics if `round` is an initialization round (≤ 2).
pub fn phase_of_round(round: u64) -> (u64, u8) {
    assert!(
        round > INIT_ROUNDS,
        "round {round} is an initialization round"
    );
    let k = round - INIT_ROUNDS - 1;
    (k / PHASE_ROUNDS + 1, (k % PHASE_ROUNDS + 1) as u8)
}

/// One node's state machine for Algorithm 3.
///
/// # Examples
///
/// ```
/// use uba_core::consensus::EarlyConsensus;
/// use uba_sim::{sparse_ids, SyncEngine};
///
/// // Unanimous inputs decide in the first phase (round 7).
/// let ids = sparse_ids(4, 2);
/// let mut engine = SyncEngine::builder()
///     .correct_many(ids.iter().map(|&id| EarlyConsensus::new(id, 7u64)))
///     .build();
/// let done = engine.run_to_completion(10)?;
/// assert!(done.outputs.values().all(|&v| v == 7));
/// assert_eq!(done.last_decided_round(), 7);
/// # Ok::<(), uba_sim::EngineError>(())
/// ```
#[derive(Clone, Debug)]
pub struct EarlyConsensus<V> {
    me: NodeId,
    x: V,
    tracker: ParticipantTracker,
    frozen: Option<FrozenMembership>,
    rotor: RotorCore,
    /// Candidate id → distinct member senders whose echo arrived since the
    /// last rotor step (rotor steps are 5 rounds apart here, so echoes are
    /// buffered between steps).
    rotor_echo_buf: BTreeMap<NodeId, BTreeSet<NodeId>>,
    sent_input: Option<V>,
    sent_prefer: Option<V>,
    sent_strong: Option<V>,
    /// Strongprefer tally collected in phase round 4 (messages are sent in
    /// round 3, physically arrive in round 4, and are evaluated in round 5 —
    /// the paper's labelling).
    strong_counts: BTreeMap<V, usize>,
    this_phase_coordinator: Option<NodeId>,
    decided: Option<V>,
    phases_executed: u64,
    substitution: bool,
}

impl<V: Value> EarlyConsensus<V> {
    /// Creates a node with input `input`.
    pub fn new(me: NodeId, input: V) -> Self {
        EarlyConsensus {
            me,
            x: input,
            tracker: ParticipantTracker::new(),
            frozen: None,
            rotor: RotorCore::new(),
            rotor_echo_buf: BTreeMap::new(),
            sent_input: None,
            sent_prefer: None,
            sent_strong: None,
            strong_counts: BTreeMap::new(),
            this_phase_coordinator: None,
            decided: None,
            phases_executed: 0,
            substitution: true,
        }
    }

    /// **Ablation only**: disables the silent-member substitution rule from
    /// the caption of Algorithm 3. Without it, nodes that terminate one
    /// phase earlier (or members that crash) erode the `2n_v/3` quorums of
    /// the stragglers, which can then loop forever — experiment T9 measures
    /// exactly this. Never use in production.
    pub fn without_substitution(mut self) -> Self {
        self.substitution = false;
        self
    }

    /// The node's current opinion `x_v`.
    pub fn current_opinion(&self) -> &V {
        &self.x
    }

    /// Phases fully executed so far.
    pub fn phases_executed(&self) -> u64 {
        self.phases_executed
    }

    /// The frozen participant estimate, once initialization completed.
    pub fn frozen_estimate(&self) -> Option<usize> {
        self.frozen.as_ref().map(FrozenMembership::n)
    }

    /// Tallies `extract`ed values from the member-filtered inbox, then
    /// substitutes the receiver's own `sent` message for every frozen member
    /// that sent nothing of this type this round.
    fn tally_with_substitution(
        &self,
        inbox: &[Envelope<ConsensusMsg<V>>],
        extract: impl Fn(&ConsensusMsg<V>) -> Option<V>,
        sent: &Option<V>,
    ) -> BTreeMap<V, usize> {
        let frozen = self.frozen.as_ref().expect("initialized");
        let mut senders: BTreeSet<NodeId> = BTreeSet::new();
        let mut values: Vec<V> = Vec::new();
        for env in frozen.filter_inbox(inbox) {
            if let Some(v) = extract(env.msg()) {
                senders.insert(env.from);
                values.push(v);
            }
        }
        let mut counts = tally(values);
        if self.substitution {
            if let Some(own) = sent {
                let missing = frozen
                    .members()
                    .iter()
                    .filter(|m| !senders.contains(m))
                    .count();
                if missing > 0 {
                    *counts.entry(own.clone()).or_insert(0) += missing;
                }
            }
        }
        counts
    }

    fn buffer_rotor_echoes(&mut self, inbox: &[Envelope<ConsensusMsg<V>>]) {
        let frozen = self.frozen.as_ref().expect("initialized");
        for env in frozen.filter_inbox(inbox) {
            if let &ConsensusMsg::RotorEcho(p) = env.msg() {
                self.rotor_echo_buf.entry(p).or_default().insert(env.from);
            }
        }
    }
}

impl<V: Value> Process for EarlyConsensus<V> {
    type Msg = ConsensusMsg<V>;
    type Output = V;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut Context<'_, ConsensusMsg<V>>) {
        let round = ctx.round();
        match round {
            1 => {
                ctx.broadcast(ConsensusMsg::RotorInit);
                return;
            }
            2 => {
                self.tracker.observe_inbox(ctx.inbox());
                let initiators: BTreeSet<NodeId> = ctx
                    .inbox()
                    .iter()
                    .filter(|e| matches!(e.msg(), ConsensusMsg::RotorInit))
                    .map(|e| e.from)
                    .collect();
                for p in initiators {
                    ctx.broadcast(ConsensusMsg::RotorEcho(p));
                }
                return;
            }
            3 => {
                // End of initialization: everything heard during rounds 1–2
                // (arriving in rounds 2–3) counts towards n_v; later senders
                // are discarded.
                self.tracker.observe_inbox(ctx.inbox());
                self.frozen = Some(self.tracker.freeze());
            }
            _ => {}
        }

        self.buffer_rotor_echoes(ctx.inbox());
        let n = self.frozen.as_ref().expect("initialized").n();
        let (_phase, phase_round) = phase_of_round(round);
        match phase_round {
            1 => {
                self.sent_prefer = None;
                self.sent_strong = None;
                self.strong_counts.clear();
                self.this_phase_coordinator = None;
                ctx.broadcast(ConsensusMsg::Input(self.x.clone()));
                self.sent_input = Some(self.x.clone());
            }
            2 => {
                let counts = self.tally_with_substitution(
                    ctx.inbox(),
                    |m| match m {
                        ConsensusMsg::Input(v) => Some(v.clone()),
                        _ => None,
                    },
                    &self.sent_input,
                );
                if let Some(x) = quorum_value(&counts, n, meets_two_thirds) {
                    ctx.broadcast(ConsensusMsg::Prefer(x.clone()));
                    self.sent_prefer = Some(x);
                }
            }
            3 => {
                let counts = self.tally_with_substitution(
                    ctx.inbox(),
                    |m| match m {
                        ConsensusMsg::Prefer(v) => Some(v.clone()),
                        _ => None,
                    },
                    &self.sent_prefer,
                );
                if let Some((v, c)) = max_tally(&counts) {
                    if meets_third(c, n) {
                        self.x = v.clone();
                    }
                    if meets_two_thirds(c, n) {
                        ctx.broadcast(ConsensusMsg::StrongPrefer(v.clone()));
                        self.sent_strong = Some(v);
                    }
                }
            }
            4 => {
                // Strongprefers physically arrive now; evaluated in round 5.
                self.strong_counts = self.tally_with_substitution(
                    ctx.inbox(),
                    |m| match m {
                        ConsensusMsg::StrongPrefer(v) => Some(v.clone()),
                        _ => None,
                    },
                    &self.sent_strong,
                );
                // One rotor-coordinator step.
                let support: BTreeMap<NodeId, usize> = self
                    .rotor_echo_buf
                    .iter()
                    .map(|(p, s)| (*p, s.len()))
                    .collect();
                self.rotor_echo_buf.clear();
                let step = self.rotor.step(n, &support);
                if !step.terminated {
                    for p in &step.re_echo {
                        ctx.broadcast(ConsensusMsg::RotorEcho(*p));
                    }
                    self.this_phase_coordinator = step.coordinator;
                    if step.coordinator == Some(self.me) {
                        ctx.broadcast(ConsensusMsg::Opinion(self.x.clone()));
                    }
                }
            }
            5 => {
                let frozen = self.frozen.as_ref().expect("initialized");
                let coordinator_opinion: Option<V> = self.this_phase_coordinator.and_then(|p| {
                    let mut opinions: Vec<&V> = frozen
                        .filter_inbox(ctx.inbox())
                        .filter(|e| e.from == p)
                        .filter_map(|e| match e.msg() {
                            ConsensusMsg::Opinion(v) => Some(v),
                            _ => None,
                        })
                        .collect();
                    opinions.sort();
                    opinions.first().map(|v| (*v).clone())
                });

                let strongest = max_tally(&self.strong_counts);
                let has_third = strongest.as_ref().is_some_and(|(_, c)| meets_third(*c, n));
                if !has_third {
                    if let Some(c) = coordinator_opinion {
                        self.x = c;
                    }
                }
                if let Some((v, c)) = strongest {
                    if meets_two_thirds(c, n) {
                        self.decided = Some(v);
                    }
                }
                self.phases_executed += 1;
            }
            _ => unreachable!("phase rounds are 1..=5"),
        }
    }

    fn output(&self) -> Option<V> {
        self.decided.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_sim::{sparse_ids, SyncEngine};

    fn run_all_correct(inputs: &[u64], seed: u64) -> (BTreeMap<NodeId, u64>, u64) {
        let ids = sparse_ids(inputs.len(), seed);
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .zip(inputs)
                    .map(|(&id, &x)| EarlyConsensus::new(id, x)),
            )
            .build();
        let done = engine
            .run_to_completion(100)
            .expect("consensus must terminate");
        let last = done.last_decided_round();
        (done.outputs, last)
    }

    #[test]
    fn phase_mapping() {
        assert_eq!(phase_of_round(3), (1, 1));
        assert_eq!(phase_of_round(7), (1, 5));
        assert_eq!(phase_of_round(8), (2, 1));
        assert_eq!(phase_of_round(12), (2, 5));
    }

    #[test]
    #[should_panic(expected = "initialization round")]
    fn phase_mapping_rejects_init_rounds() {
        let _ = phase_of_round(2);
    }

    #[test]
    fn unanimous_inputs_decide_in_first_phase() {
        for n in [1, 2, 4, 7] {
            let inputs = vec![5u64; n];
            let (outputs, last_round) = run_all_correct(&inputs, 31);
            assert_eq!(outputs.len(), n);
            assert!(outputs.values().all(|&v| v == 5));
            assert_eq!(last_round, 7, "validity fast path is one phase (n = {n})");
        }
    }

    #[test]
    fn mixed_inputs_agree_on_some_input() {
        let inputs = [0u64, 1, 0, 1, 0, 1, 1];
        let (outputs, last_round) = run_all_correct(&inputs, 17);
        let decided: BTreeSet<u64> = outputs.values().copied().collect();
        assert_eq!(decided.len(), 1, "agreement");
        assert!(inputs.contains(decided.iter().next().unwrap()), "validity");
        assert!(
            last_round <= 2 + 3 * PHASE_ROUNDS,
            "all-correct: decided fast"
        );
    }

    #[test]
    fn silent_byzantine_members_do_not_block_agreement() {
        // Faulty nodes announce themselves during initialization (inflating
        // n_v) and then go silent forever.
        use uba_sim::{AdversaryOutbox, AdversaryView, FnAdversary};
        let ids = sparse_ids(7, 3);
        let byz = [NodeId::new(1), NodeId::new(2)];
        let adv = FnAdversary::new(
            |view: &AdversaryView<'_, ConsensusMsg<u64>>,
             out: &mut AdversaryOutbox<ConsensusMsg<u64>>| {
                if view.round <= 2 {
                    for &b in view.faulty.iter() {
                        out.broadcast(b, ConsensusMsg::RotorInit);
                    }
                }
            },
        );
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .enumerate()
                    .map(|(i, &id)| EarlyConsensus::new(id, (i % 2) as u64)),
            )
            .faulty_many(byz)
            .adversary(adv)
            .build();
        let done = engine.run_to_completion(120).expect("terminates");
        let decided: BTreeSet<u64> = done.outputs.values().copied().collect();
        assert_eq!(decided.len(), 1, "agreement despite inflated n_v");
        // Every correct node froze n_v = 9 (7 correct + 2 announced faulty).
        assert!(decided.iter().next().unwrap() < &2);
    }

    #[test]
    fn frozen_estimate_counts_initialization_senders_only() {
        let ids = sparse_ids(3, 9);
        let mut engine = SyncEngine::builder()
            .correct_many(ids.iter().map(|&id| EarlyConsensus::new(id, 1u8)))
            .build();
        engine.run_rounds(3);
        for &id in &ids {
            assert_eq!(engine.process(id).unwrap().frozen_estimate(), Some(3));
        }
    }

    #[test]
    fn single_node_decides_alone() {
        let (outputs, last) = run_all_correct(&[9], 1);
        assert_eq!(outputs.values().copied().collect::<Vec<_>>(), vec![9]);
        assert_eq!(last, 7);
    }
}
