//! Synchrony is necessary — executable versions of the paper's
//! impossibility arguments.
//!
//! The paper proves that when nodes know neither `n` nor `f`, consensus is
//! impossible — even with probabilistic termination — in asynchronous
//! systems (unbounded delays) *and* in semi-synchronous systems (delays
//! bounded by an unknown `Δ`). Both proofs are indistinguishability
//! arguments: partition the nodes, delay all cross-partition messages past
//! each side's decision point, and each side behaves exactly as if it were
//! the whole system — deciding its own input and disagreeing.
//!
//! An impossibility result cannot be "run" directly, so this module runs the
//! *construction*: [`TimeoutConsensus`] is the canonical algorithm one would
//! write without synchrony (gossip values, wait until the participant set is
//! quiet for a patience window, decide the majority — with unknown `n` there
//! is nothing else to wait for), and [`partition_run`] executes it under the
//! adversarial delay assignment of the proofs. The experiment sweep
//! (EXPERIMENTS.md, F2) shows the predicted sharp transition: agreement
//! whenever the cross-partition delay is below the decision horizon,
//! guaranteed disagreement the moment it exceeds it — for *every* patience
//! parameter, which is exactly the paper's statement that no choice of
//! timeout can help.

use std::collections::BTreeMap;

use uba_sim::{Context, DelayedEngine, NodeId, PartitionDelay, Process};

/// A plausible consensus attempt for unknown-`n` systems without synchrony.
///
/// Every tick the node broadcasts its input; once it has seen no new
/// participant for `patience` consecutive ticks it decides the majority of
/// the values it knows (ties toward the smaller value). With unbounded or
/// unknown-bound delays this is exactly the kind of algorithm the paper
/// proves cannot work; under a partition it demonstrably disagrees.
#[derive(Clone, Debug)]
pub struct TimeoutConsensus {
    me: NodeId,
    input: u8,
    patience: u64,
    known: BTreeMap<NodeId, u8>,
    quiet_ticks: u64,
    decided: Option<u8>,
}

impl TimeoutConsensus {
    /// Creates a node with binary `input` and the given patience window.
    pub fn new(me: NodeId, input: u8, patience: u64) -> Self {
        TimeoutConsensus {
            me,
            input,
            patience,
            known: BTreeMap::new(),
            quiet_ticks: 0,
            decided: None,
        }
    }

    /// The largest cross-partition delay at which two groups of
    /// mutually-1-tick-connected nodes still merge their views in time: an
    /// isolated group decides at tick `patience + 2` (broadcast, hear
    /// everyone, `patience` quiet ticks), and a message sent at tick 1 with
    /// delay `patience + 1` arrives exactly then — any later and each group
    /// decides alone.
    pub fn decision_horizon(patience: u64) -> u64 {
        patience + 1
    }
}

impl Process for TimeoutConsensus {
    type Msg = u8;
    type Output = u8;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u8>) {
        let mut new_participant = false;
        for env in ctx.inbox() {
            if self.known.insert(env.from, *env.msg()).is_none() {
                new_participant = true;
            }
        }
        if new_participant || ctx.round() == 1 {
            self.quiet_ticks = 0;
        } else {
            self.quiet_ticks += 1;
        }
        ctx.broadcast(self.input);
        if self.quiet_ticks >= self.patience && self.decided.is_none() {
            // Majority of known values (including our own — present in
            // `known` via self-delivery, or seeded here before any
            // broadcast came back), ties toward 0.
            let mut counts: BTreeMap<u8, usize> = BTreeMap::new();
            if !self.known.contains_key(&self.me) {
                *counts.entry(self.input).or_insert(0) += 1;
            }
            for v in self.known.values() {
                *counts.entry(*v).or_insert(0) += 1;
            }
            let (&v, _) = counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                .expect("at least the own value");
            self.decided = Some(v);
        }
    }

    fn output(&self) -> Option<u8> {
        self.decided
    }
}

/// The result of one partitioned execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionOutcome {
    /// Every node's decision.
    pub decisions: BTreeMap<NodeId, u8>,
    /// Whether two correct nodes decided differently.
    pub disagreement: bool,
    /// Ticks until the last decision.
    pub ticks: u64,
}

/// Runs [`TimeoutConsensus`] under the proofs' delay assignment: two groups
/// (inputs 1 and 0), intra-group delay 1, cross-group delay `cross_delay`.
///
/// Per the paper's argument, `cross_delay >
/// TimeoutConsensus::decision_horizon(patience)` forces disagreement: each
/// group decides before hearing from the other, exactly as in the
/// indistinguishable single-group system.
///
/// # Errors
///
/// Returns the engine error if some node has not decided after `max_ticks`
/// (cannot happen for `max_ticks > decision_horizon`).
///
/// # Examples
///
/// ```
/// use uba_core::lower_bounds::{partition_run, TimeoutConsensus};
/// use uba_sim::sparse_ids;
///
/// let ids = sparse_ids(6, 3);
/// let patience = 3;
/// let horizon = TimeoutConsensus::decision_horizon(patience);
///
/// // Slow cross-partition messages: both sides decide alone => disagreement.
/// let split = partition_run(&ids[..3], &ids[3..], patience, horizon + 1, 100)?;
/// assert!(split.disagreement);
///
/// // Fast cross-partition messages: everyone hears everyone => agreement.
/// let joined = partition_run(&ids[..3], &ids[3..], patience, 1, 100)?;
/// assert!(!joined.disagreement);
/// # Ok::<(), uba_sim::EngineError>(())
/// ```
pub fn partition_run(
    group_a: &[NodeId],
    group_b: &[NodeId],
    patience: u64,
    cross_delay: u64,
    max_ticks: u64,
) -> Result<PartitionOutcome, uba_sim::EngineError> {
    let delay = PartitionDelay::new(&[group_a.to_vec(), group_b.to_vec()], 1, cross_delay);
    let nodes = group_a
        .iter()
        .map(|&id| TimeoutConsensus::new(id, 1, patience))
        .chain(
            group_b
                .iter()
                .map(|&id| TimeoutConsensus::new(id, 0, patience)),
        );
    let mut engine = DelayedEngine::new(nodes, delay);
    let done = engine.run_to_completion(max_ticks)?;
    let decisions = done.outputs;
    let mut values: Vec<u8> = decisions.values().copied().collect();
    values.dedup();
    values.sort_unstable();
    values.dedup();
    Ok(PartitionOutcome {
        disagreement: values.len() > 1,
        decisions,
        ticks: done.decided_round.values().copied().max().unwrap_or(0),
    })
}

/// One point of the delay sweep of experiment F2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepPoint {
    /// Cross-partition delay used.
    pub cross_delay: u64,
    /// Whether the execution disagreed.
    pub disagreement: bool,
}

/// Sweeps the cross-partition delay and records where disagreement starts.
///
/// The paper predicts a sharp threshold at the decision horizon: below it
/// the two groups merge their views in time; above it they are
/// indistinguishable from isolated systems and must disagree.
pub fn delay_sweep(
    group_a: &[NodeId],
    group_b: &[NodeId],
    patience: u64,
    delays: impl IntoIterator<Item = u64>,
) -> Vec<SweepPoint> {
    delays
        .into_iter()
        .map(|d| {
            let outcome = partition_run(group_a, group_b, patience, d, 10 * (patience + d + 4))
                .expect("timeout consensus always decides");
            SweepPoint {
                cross_delay: d,
                disagreement: outcome.disagreement,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_sim::sparse_ids;

    #[test]
    fn fast_network_agrees() {
        let ids = sparse_ids(6, 1);
        let outcome = partition_run(&ids[..3], &ids[3..], 4, 1, 100).expect("decides");
        assert!(!outcome.disagreement);
        // Majority of {1, 1, 1, 0, 0, 0} with ties toward 0.
        assert!(outcome.decisions.values().all(|&v| v == 0));
    }

    #[test]
    fn partitioned_network_disagrees() {
        let ids = sparse_ids(6, 2);
        let patience = 3;
        let horizon = TimeoutConsensus::decision_horizon(patience);
        let outcome =
            partition_run(&ids[..3], &ids[3..], patience, horizon + 1, 100).expect("decides");
        assert!(outcome.disagreement, "both groups decide their own input");
    }

    #[test]
    fn sweep_shows_sharp_threshold() {
        let ids = sparse_ids(4, 5);
        let patience = 2;
        let horizon = TimeoutConsensus::decision_horizon(patience);
        let sweep = delay_sweep(&ids[..2], &ids[2..], patience, 1..=(horizon + 3));
        for point in &sweep {
            assert_eq!(
                point.disagreement,
                point.cross_delay > horizon,
                "threshold at the decision horizon: {point:?}"
            );
        }
    }

    #[test]
    fn raising_patience_never_helps() {
        // The semi-synchronous argument: for EVERY patience value there is a
        // delay (unknown to the nodes) that forces disagreement.
        let ids = sparse_ids(4, 8);
        for patience in [1, 2, 5, 9] {
            let horizon = TimeoutConsensus::decision_horizon(patience);
            let outcome =
                partition_run(&ids[..2], &ids[2..], patience, horizon + 1, 400).expect("decides");
            assert!(outcome.disagreement, "patience {patience} still fails");
        }
    }
}
