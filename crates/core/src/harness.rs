//! Convenience runners and property checkers shared by tests, examples and
//! the experiment harness.

use std::collections::BTreeMap;
use std::fmt::Debug;

use uba_sim::{sparse_ids, NodeId};

/// The node population of one experiment: correct and faulty identifiers,
/// all sparse and disjoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Setup {
    /// Correct node ids, ascending.
    pub correct: Vec<NodeId>,
    /// Faulty node ids, ascending.
    pub faulty: Vec<NodeId>,
}

impl Setup {
    /// Samples `n_correct + n_faulty` sparse identifiers and splits them
    /// pseudo-randomly (but deterministically per seed) between correct and
    /// faulty nodes, so that faulty ids are interleaved with correct ones in
    /// the identifier order — the adversary should not always own the
    /// largest ids, since the rotor-coordinator selects by id order.
    pub fn new(n_correct: usize, n_faulty: usize, seed: u64) -> Self {
        let all = sparse_ids(n_correct + n_faulty, seed);
        // Deterministic interleaving: spread faulty ids across the order.
        let mut correct = Vec::with_capacity(n_correct);
        let mut faulty = Vec::with_capacity(n_faulty);
        let total = all.len();
        for (i, id) in all.into_iter().enumerate() {
            // Assign every ⌈total/n_faulty⌉-th position to the adversary.
            let is_faulty = n_faulty > 0
                && (i * n_faulty) % total < n_faulty
                && faulty.len() < n_faulty
                && i % 2 == 1;
            if is_faulty {
                faulty.push(id);
            } else {
                correct.push(id);
            }
        }
        // Top up if the stride under-assigned.
        while faulty.len() < n_faulty {
            faulty.push(correct.pop().expect("enough ids"));
        }
        correct.sort_unstable();
        faulty.sort_unstable();
        Setup { correct, faulty }
    }

    /// Total number of nodes.
    pub fn n(&self) -> usize {
        self.correct.len() + self.faulty.len()
    }

    /// Number of faulty nodes.
    pub fn f(&self) -> usize {
        self.faulty.len()
    }

    /// Whether this population satisfies the optimal-resiliency condition.
    pub fn satisfies_resiliency(&self) -> bool {
        self.n() > 3 * self.f()
    }
}

/// The largest `f` with `n > 3f`.
pub fn max_faulty(n: usize) -> usize {
    n.saturating_sub(1) / 3
}

/// Asserts that all outputs are equal and returns the common value.
///
/// # Panics
///
/// Panics if the map is empty or two outputs differ.
pub fn assert_agreement<V: PartialEq + Clone + Debug>(outputs: &BTreeMap<NodeId, V>) -> V {
    let mut iter = outputs.iter();
    let (first_id, first) = iter.next().expect("at least one output");
    for (id, v) in iter {
        assert_eq!(
            v, first,
            "agreement violated: {id} decided {v:?}, {first_id} decided {first:?}"
        );
    }
    first.clone()
}

/// Checks agreement without panicking; returns the common value if any.
pub fn check_agreement<V: PartialEq + Clone>(outputs: &BTreeMap<NodeId, V>) -> Option<V> {
    let mut iter = outputs.values();
    let first = iter.next()?;
    iter.all(|v| v == first).then(|| first.clone())
}

/// The `(min, max)` of a set of real-valued outputs.
///
/// # Panics
///
/// Panics if the map is empty.
pub fn output_range(outputs: &BTreeMap<NodeId, f64>) -> (f64, f64) {
    assert!(!outputs.is_empty(), "no outputs");
    let lo = outputs.values().cloned().fold(f64::INFINITY, f64::min);
    let hi = outputs.values().cloned().fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

/// Whether `a` is a prefix of `b` or vice versa (the chain-prefix property).
pub fn mutual_prefix<T: PartialEq>(a: &[T], b: &[T]) -> bool {
    let k = a.len().min(b.len());
    a[..k] == b[..k]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_is_disjoint_and_deterministic() {
        let s1 = Setup::new(7, 2, 3);
        let s2 = Setup::new(7, 2, 3);
        assert_eq!(s1, s2);
        assert_eq!(s1.correct.len(), 7);
        assert_eq!(s1.faulty.len(), 2);
        for f in &s1.faulty {
            assert!(!s1.correct.contains(f));
        }
        assert!(s1.satisfies_resiliency());
    }

    #[test]
    fn setup_interleaves_faulty_ids() {
        // At least sometimes a faulty id must be smaller than some correct
        // id, otherwise the rotor never selects a faulty candidate first.
        let s = Setup::new(6, 2, 1);
        let min_correct = s.correct.iter().min().unwrap();
        let max_faulty_id = s.faulty.iter().max().unwrap();
        assert!(max_faulty_id > min_correct || s.faulty.iter().min().unwrap() < min_correct);
    }

    #[test]
    fn max_faulty_boundary() {
        assert_eq!(max_faulty(1), 0);
        assert_eq!(max_faulty(3), 0);
        assert_eq!(max_faulty(4), 1);
        assert_eq!(max_faulty(7), 2);
        assert_eq!(max_faulty(10), 3);
    }

    #[test]
    fn agreement_checks() {
        let mut outputs = BTreeMap::new();
        outputs.insert(NodeId::new(1), 5u8);
        outputs.insert(NodeId::new(2), 5u8);
        assert_eq!(assert_agreement(&outputs), 5);
        outputs.insert(NodeId::new(3), 6u8);
        assert_eq!(check_agreement(&outputs), None);
    }

    #[test]
    #[should_panic(expected = "agreement violated")]
    fn assert_agreement_panics_on_split() {
        let mut outputs = BTreeMap::new();
        outputs.insert(NodeId::new(1), 1u8);
        outputs.insert(NodeId::new(2), 2u8);
        assert_agreement(&outputs);
    }

    #[test]
    fn prefix_check() {
        assert!(mutual_prefix(&[1, 2], &[1, 2, 3]));
        assert!(mutual_prefix(&[1, 2, 3], &[1, 2]));
        assert!(!mutual_prefix(&[1, 9], &[1, 2, 3]));
        assert!(mutual_prefix::<u8>(&[], &[1]));
    }

    #[test]
    fn output_range_works() {
        let mut outputs = BTreeMap::new();
        outputs.insert(NodeId::new(1), 1.5);
        outputs.insert(NodeId::new(2), -0.5);
        assert_eq!(output_range(&outputs), (-0.5, 1.5));
    }
}
