//! Rotor-driven king consensus — the appendix algorithm of the paper
//! (Algorithm `con`), a direct adaptation of the Berman–Garay–Perry *king*
//! algorithm to the *id-only* model.
//!
//! Unlike [`EarlyConsensus`](crate::consensus::EarlyConsensus) this variant
//! has no early termination: it runs phases until the embedded
//! rotor-coordinator terminates (after `O(n)` selections, which guarantees a
//! good phase for `n > 3f`), then outputs the current opinion. It serves as
//! the paper's conceptual baseline for the `O(f)`-round early-terminating
//! algorithm: same structure, simpler message ladder (`input`/`support`
//! instead of `input`/`prefer`/`strongprefer`), worse round complexity
//! (`O(n)` instead of `O(f)`).
//!
//! Phase layout (5 engine rounds, matching
//! [`phase_of_round`]):
//!
//! 1. broadcast `input(x_v)`;
//! 2. on a `2n_v/3` input quorum broadcast `support(x)`;
//! 3. on `n_v/3` supports adopt `x` (the support tally is kept for round 5);
//! 4. one rotor step; the selected coordinator broadcasts its opinion;
//! 5. if the round-3 support tally was below `2n_v/3`, adopt the
//!    coordinator's opinion.
//!
//! Membership freezing and silent-member substitution follow Algorithm 3's
//! caption, which keeps the run well-defined when nodes terminate at
//! slightly different rounds.

use std::collections::{BTreeMap, BTreeSet};

use uba_sim::{Context, Envelope, NodeId, Process};

use crate::consensus::phase_of_round;
use crate::quorum::{max_tally, meets_third, meets_two_thirds, quorum_value, tally};
use crate::rotor::RotorCore;
use crate::tracker::{FrozenMembership, ParticipantTracker};
use crate::value::Value;

/// Messages of the king consensus protocol.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum KingMsg<V> {
    /// Rotor: willingness to coordinate (global round 1).
    RotorInit,
    /// Rotor: candidate echo.
    RotorEcho(NodeId),
    /// Rotor: the phase coordinator's opinion.
    Opinion(V),
    /// Phase round 1: the node's current value.
    Input(V),
    /// Phase round 2: a `2n_v/3` input quorum was observed.
    Support(V),
}

/// One node's state machine for the appendix king algorithm.
///
/// # Examples
///
/// ```
/// use uba_core::consensus::king::KingConsensus;
/// use uba_sim::{sparse_ids, SyncEngine};
///
/// let ids = sparse_ids(4, 8);
/// let mut engine = SyncEngine::builder()
///     .correct_many(ids.iter().enumerate().map(|(i, &id)| KingConsensus::new(id, i % 2 == 0)))
///     .build();
/// let done = engine.run_to_completion(60)?;
/// let mut decided: Vec<bool> = done.outputs.values().copied().collect();
/// decided.dedup();
/// assert_eq!(decided.len(), 1, "agreement");
/// # Ok::<(), uba_sim::EngineError>(())
/// ```
#[derive(Clone, Debug)]
pub struct KingConsensus<V> {
    me: NodeId,
    x: V,
    tracker: ParticipantTracker,
    frozen: Option<FrozenMembership>,
    rotor: RotorCore,
    rotor_echo_buf: BTreeMap<NodeId, BTreeSet<NodeId>>,
    sent_input: Option<V>,
    sent_support: Option<V>,
    /// Support tally observed in phase round 3 (evaluated again in round 5
    /// for the "take the king's value" rule).
    support_counts: BTreeMap<V, usize>,
    this_phase_coordinator: Option<NodeId>,
    rotor_done: bool,
    decided: Option<V>,
}

impl<V: Value> KingConsensus<V> {
    /// Creates a node with input `input`.
    pub fn new(me: NodeId, input: V) -> Self {
        KingConsensus {
            me,
            x: input,
            tracker: ParticipantTracker::new(),
            frozen: None,
            rotor: RotorCore::new(),
            rotor_echo_buf: BTreeMap::new(),
            sent_input: None,
            sent_support: None,
            support_counts: BTreeMap::new(),
            this_phase_coordinator: None,
            rotor_done: false,
            decided: None,
        }
    }

    /// The node's current opinion `x_v`.
    pub fn current_opinion(&self) -> &V {
        &self.x
    }

    fn tally_with_substitution(
        &self,
        inbox: &[Envelope<KingMsg<V>>],
        extract: impl Fn(&KingMsg<V>) -> Option<V>,
        sent: &Option<V>,
    ) -> BTreeMap<V, usize> {
        let frozen = self.frozen.as_ref().expect("initialized");
        let mut senders: BTreeSet<NodeId> = BTreeSet::new();
        let mut values: Vec<V> = Vec::new();
        for env in frozen.filter_inbox(inbox) {
            if let Some(v) = extract(env.msg()) {
                senders.insert(env.from);
                values.push(v);
            }
        }
        let mut counts = tally(values);
        if let Some(own) = sent {
            let missing = frozen
                .members()
                .iter()
                .filter(|m| !senders.contains(m))
                .count();
            if missing > 0 {
                *counts.entry(own.clone()).or_insert(0) += missing;
            }
        }
        counts
    }
}

impl<V: Value> Process for KingConsensus<V> {
    type Msg = KingMsg<V>;
    type Output = V;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut Context<'_, KingMsg<V>>) {
        let round = ctx.round();
        match round {
            1 => {
                ctx.broadcast(KingMsg::RotorInit);
                return;
            }
            2 => {
                self.tracker.observe_inbox(ctx.inbox());
                let initiators: BTreeSet<NodeId> = ctx
                    .inbox()
                    .iter()
                    .filter(|e| matches!(e.msg(), KingMsg::RotorInit))
                    .map(|e| e.from)
                    .collect();
                for p in initiators {
                    ctx.broadcast(KingMsg::RotorEcho(p));
                }
                return;
            }
            3 => {
                self.tracker.observe_inbox(ctx.inbox());
                self.frozen = Some(self.tracker.freeze());
            }
            _ => {}
        }

        {
            let frozen = self.frozen.as_ref().expect("initialized");
            let echoes: Vec<(NodeId, NodeId)> = frozen
                .filter_inbox(ctx.inbox())
                .filter_map(|env| match *env.msg() {
                    KingMsg::RotorEcho(p) => Some((p, env.from)),
                    _ => None,
                })
                .collect();
            for (p, from) in echoes {
                self.rotor_echo_buf.entry(p).or_default().insert(from);
            }
        }

        let n = self.frozen.as_ref().expect("initialized").n();
        let (_phase, phase_round) = phase_of_round(round);
        match phase_round {
            1 => {
                self.sent_support = None;
                self.support_counts.clear();
                self.this_phase_coordinator = None;
                ctx.broadcast(KingMsg::Input(self.x.clone()));
                self.sent_input = Some(self.x.clone());
            }
            2 => {
                let counts = self.tally_with_substitution(
                    ctx.inbox(),
                    |m| match m {
                        KingMsg::Input(v) => Some(v.clone()),
                        _ => None,
                    },
                    &self.sent_input,
                );
                if let Some(x) = quorum_value(&counts, n, meets_two_thirds) {
                    ctx.broadcast(KingMsg::Support(x.clone()));
                    self.sent_support = Some(x);
                }
            }
            3 => {
                self.support_counts = self.tally_with_substitution(
                    ctx.inbox(),
                    |m| match m {
                        KingMsg::Support(v) => Some(v.clone()),
                        _ => None,
                    },
                    &self.sent_support,
                );
                if let Some((v, c)) = max_tally(&self.support_counts) {
                    if meets_third(c, n) {
                        self.x = v;
                    }
                }
            }
            4 => {
                let support: BTreeMap<NodeId, usize> = self
                    .rotor_echo_buf
                    .iter()
                    .map(|(p, s)| (*p, s.len()))
                    .collect();
                self.rotor_echo_buf.clear();
                let step = self.rotor.step(n, &support);
                if step.terminated {
                    self.rotor_done = true;
                } else {
                    for p in &step.re_echo {
                        ctx.broadcast(KingMsg::RotorEcho(*p));
                    }
                    self.this_phase_coordinator = step.coordinator;
                    if step.coordinator == Some(self.me) {
                        ctx.broadcast(KingMsg::Opinion(self.x.clone()));
                    }
                }
            }
            5 => {
                let frozen = self.frozen.as_ref().expect("initialized");
                let coordinator_opinion: Option<V> = self.this_phase_coordinator.and_then(|p| {
                    let mut opinions: Vec<&V> = frozen
                        .filter_inbox(ctx.inbox())
                        .filter(|e| e.from == p)
                        .filter_map(|e| match e.msg() {
                            KingMsg::Opinion(v) => Some(v),
                            _ => None,
                        })
                        .collect();
                    opinions.sort();
                    opinions.first().map(|v| (*v).clone())
                });
                let strong_enough =
                    max_tally(&self.support_counts).is_some_and(|(_, c)| meets_two_thirds(c, n));
                if !strong_enough {
                    if let Some(c) = coordinator_opinion {
                        self.x = c;
                    }
                }
                if self.rotor_done {
                    self.decided = Some(self.x.clone());
                }
            }
            _ => unreachable!("phase rounds are 1..=5"),
        }
    }

    fn output(&self) -> Option<V> {
        self.decided.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_sim::{sparse_ids, SyncEngine};

    fn run(inputs: &[bool], seed: u64) -> BTreeMap<NodeId, bool> {
        let ids = sparse_ids(inputs.len(), seed);
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .zip(inputs)
                    .map(|(&id, &x)| KingConsensus::new(id, x)),
            )
            .build();
        engine
            .run_to_completion(2 + 5 * (inputs.len() as u64 + 2))
            .expect("king consensus terminates when the rotor does")
            .outputs
    }

    #[test]
    fn unanimous_inputs_stay_fixed() {
        let outputs = run(&[true; 5], 4);
        assert!(outputs.values().all(|&v| v));
    }

    #[test]
    fn mixed_inputs_reach_agreement() {
        for seed in 0..5 {
            let outputs = run(&[true, false, true, false, true, false, false], seed);
            let mut decided: Vec<bool> = outputs.values().copied().collect();
            decided.dedup();
            assert_eq!(decided.len(), 1, "agreement (seed {seed})");
        }
    }

    #[test]
    fn terminates_when_rotor_does() {
        // All-correct, n nodes: rotor terminates at its (n+1)-th step, i.e.
        // phase n+1, so the run lasts 2 + 5(n+1) rounds.
        let n = 4;
        let ids = sparse_ids(n, 6);
        let mut engine = SyncEngine::builder()
            .correct_many(ids.iter().map(|&id| KingConsensus::new(id, true)))
            .build();
        let done = engine.run_to_completion(100).expect("terminates");
        assert_eq!(done.last_decided_round(), 2 + 5 * (n as u64 + 1));
    }
}
