//! Parallel consensus — Algorithm 5 of the paper (`EarlyConsensus(id)` and
//! the `ParallelConsensus` wrapper).
//!
//! Every correct node holds a set of input pairs `(id, x)`; nodes need *not*
//! agree on which instance identifiers exist. The protocol guarantees:
//!
//! 1. **Validity** — a pair `(id, x)` with `x ≠ ⊥` input at *every* correct
//!    node is output by every correct node;
//! 2. **Agreement** — if any correct node outputs `(id, x)`, all do;
//! 3. **Termination** — every correct node outputs a (possibly empty) set of
//!    pairs after finitely many rounds.
//!
//! Instances share one initialization (rounds 1–2, which also initialize one
//! shared rotor-coordinator) and run phase-aligned with each other. A node
//! that has no input pair for `id` **joins** the instance when it first
//! hears `id:input`, `id:prefer`, or `id:strongprefer` during (respectively)
//! the second, third, or fifth round of the first phase, and discards
//! identifiers it first hears anywhere else. Missing opinions are filled
//! with `⊥` the first time a message type is heard (first phase) and with
//! the receiver's own same-slot message in later phases; explicit
//! `id:nopreference` / `id:nostrongpreference` messages let receivers
//! distinguish an aware-but-undecided node from an unaware one.
//!
//! The driving structure is exposed as [`ParallelConsensusCore`] (local
//! round numbers, messages in/out) so that the total-ordering protocol can
//! run one core per *wave*, and as the standalone [`ParallelConsensus`]
//! process.

use std::collections::{BTreeMap, BTreeSet};

use uba_sim::{Context, Envelope, NodeId, Process};

use crate::consensus::phase_of_round;
use crate::quorum::{max_tally, meets_third, meets_two_thirds, quorum_value};
use crate::rotor::RotorCore;
use crate::tracker::{FrozenMembership, ParticipantTracker};
use crate::value::Value;

/// Messages of the parallel-consensus protocol. `I` identifies the
/// instance, `V` is the opinion type; `None` encodes the paper's `⊥`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ParMsg<I, V> {
    /// Shared rotor: willingness to coordinate (round 1).
    RotorInit,
    /// Shared rotor: candidate echo.
    RotorEcho(NodeId),
    /// The phase coordinator's opinion for one instance.
    Opinion(I, Option<V>),
    /// `id:input(x)` — only ever sent with a non-`⊥` value.
    Input(I, V),
    /// `id:prefer(x)` — a `2n_v/3` input quorum was observed (possibly on `⊥`).
    Prefer(I, Option<V>),
    /// `id:nopreference` — aware of `id`, but no input quorum.
    NoPreference(I),
    /// `id:strongprefer(x)` — a `2n_v/3` prefer quorum was observed.
    StrongPrefer(I, Option<V>),
    /// `id:nostrongpreference` — aware of `id`, but no prefer quorum.
    NoStrongPreference(I),
}

/// A received prefer-class message: `Some(value)` for `prefer(value)`,
/// `None` for an explicit `nopreference`.
type PreferClass<V> = Option<Option<V>>;

/// What a node last sent in a given message slot of the current phase.
#[derive(Clone, Debug, PartialEq, Eq)]
enum SentSlot<V> {
    /// Nothing was sent in this slot.
    NotSent,
    /// An explicit no-preference marker was sent.
    No,
    /// A value (possibly `⊥`) was sent.
    Val(Option<V>),
}

/// Per-instance state.
#[derive(Clone, Debug)]
struct Instance<V> {
    /// Current opinion `id:x_v` (`None` = `⊥`).
    x: Option<V>,
    /// Created from a strongprefer first heard in phase-round 4; evaluated
    /// with `⊥` fills at round 5 and skips earlier slots.
    joined_r5: bool,
    /// This node's logical input this phase: its opinion at phase start.
    /// A `⊥` opinion is not broadcast, but it still drives substitution.
    logical_input: Option<V>,
    sent_prefer: SentSlot<V>,
    sent_strong: SentSlot<V>,
    /// Members that sent a strongprefer-class message in phase-round 4.
    strong_senders: BTreeSet<NodeId>,
    /// Strongprefer tally collected in phase-round 4 (evaluated in round 5).
    strong_counts: BTreeMap<Option<V>, usize>,
    /// Members that sent any message of this instance in the previous
    /// phase. A member silent at the input round but active last phase is
    /// an alive `⊥`-holder (substituted with `input(⊥)`); a member with no
    /// activity at all has terminated or is Byzantine-silent and is
    /// substituted with the receiver's own logical input, exactly like
    /// Algorithm 3's rule.
    active_prev: BTreeSet<NodeId>,
    active_cur: BTreeSet<NodeId>,
}

impl<V> Instance<V> {
    fn new(x: Option<V>) -> Self {
        Instance {
            x,
            joined_r5: false,
            logical_input: None,
            sent_prefer: SentSlot::NotSent,
            sent_strong: SentSlot::NotSent,
            strong_senders: BTreeSet::new(),
            strong_counts: BTreeMap::new(),
            active_prev: BTreeSet::new(),
            active_cur: BTreeSet::new(),
        }
    }
}

/// The timing-relative engine of Algorithm 5: feed it local round numbers
/// (1-based) and the (already delivered) inbox; it returns the messages to
/// broadcast. [`ParallelConsensus`] wraps it as a [`Process`]; the
/// total-ordering protocol drives one core per wave with wave-tagged
/// messages.
#[derive(Clone, Debug)]
pub struct ParallelConsensusCore<I, V> {
    me: NodeId,
    /// When set, only messages from these nodes are accepted at all — the
    /// total-ordering algorithm's "run with respect to the set S".
    restrict: Option<BTreeSet<NodeId>>,
    tracker: ParticipantTracker,
    frozen: Option<FrozenMembership>,
    rotor: RotorCore,
    rotor_echo_buf: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// This node's own input pairs, instantiated at phase 1 round 1.
    own_inputs: BTreeMap<I, V>,
    instances: BTreeMap<I, Instance<V>>,
    finished: BTreeMap<I, Option<V>>,
    this_phase_coordinator: Option<NodeId>,
    done: Option<BTreeMap<I, V>>,
}

impl<I: Value, V: Value> ParallelConsensusCore<I, V> {
    /// Creates a core for node `me` with its input pairs.
    pub fn new<P: IntoIterator<Item = (I, V)>>(me: NodeId, inputs: P) -> Self {
        ParallelConsensusCore {
            me,
            restrict: None,
            tracker: ParticipantTracker::new(),
            frozen: None,
            rotor: RotorCore::new(),
            rotor_echo_buf: BTreeMap::new(),
            own_inputs: inputs.into_iter().collect(),
            instances: BTreeMap::new(),
            finished: BTreeMap::new(),
            this_phase_coordinator: None,
            done: None,
        }
    }

    /// Restricts accepted senders to `members` (the ordering algorithm's
    /// membership snapshot `S`).
    pub fn restrict_to(mut self, members: BTreeSet<NodeId>) -> Self {
        self.restrict = Some(members);
        self
    }

    /// The final outputs (non-`⊥` pairs), once every instance terminated.
    pub fn output(&self) -> Option<&BTreeMap<I, V>> {
        self.done.as_ref()
    }

    /// Instance ids this node is currently participating in.
    pub fn active_instances(&self) -> Vec<I> {
        self.instances.keys().cloned().collect()
    }

    /// Per-instance results so far, including `⊥` outcomes.
    pub fn finished_instances(&self) -> &BTreeMap<I, Option<V>> {
        &self.finished
    }

    fn known(&self, id: &I) -> bool {
        self.instances.contains_key(id) || self.finished.contains_key(id)
    }

    /// Executes one local round. `inbox` is this round's delivered messages;
    /// outgoing broadcasts are appended to `out`.
    pub fn on_round(
        &mut self,
        local_round: u64,
        inbox: &[Envelope<ParMsg<I, V>>],
        out: &mut Vec<ParMsg<I, V>>,
    ) {
        let inbox: Vec<&Envelope<ParMsg<I, V>>> = match &self.restrict {
            Some(allow) => inbox.iter().filter(|e| allow.contains(&e.from)).collect(),
            None => inbox.iter().collect(),
        };
        match local_round {
            1 => {
                out.push(ParMsg::RotorInit);
                return;
            }
            2 => {
                for env in &inbox {
                    self.tracker.observe(env.from);
                }
                let initiators: BTreeSet<NodeId> = inbox
                    .iter()
                    .filter(|e| matches!(e.msg(), ParMsg::RotorInit))
                    .map(|e| e.from)
                    .collect();
                for p in initiators {
                    out.push(ParMsg::RotorEcho(p));
                }
                return;
            }
            3 => {
                for env in &inbox {
                    self.tracker.observe(env.from);
                }
                self.frozen = Some(self.tracker.freeze());
            }
            _ => {}
        }

        let frozen = self.frozen.clone().expect("initialized");
        // Everything below only accepts messages from frozen members.
        let inbox: Vec<&Envelope<ParMsg<I, V>>> = inbox
            .into_iter()
            .filter(|e| frozen.contains(e.from))
            .collect();
        for env in &inbox {
            if let &ParMsg::RotorEcho(p) = env.msg() {
                self.rotor_echo_buf.entry(p).or_default().insert(env.from);
            }
        }
        let n = frozen.n();
        let (phase, phase_round) = phase_of_round(local_round);
        match phase_round {
            1 => {
                if phase == 1 {
                    let own = std::mem::take(&mut self.own_inputs);
                    for (id, x) in own {
                        self.instances.insert(id, Instance::new(Some(x)));
                    }
                }
                self.this_phase_coordinator = None;
                for (id, inst) in self.instances.iter_mut() {
                    inst.sent_prefer = SentSlot::NotSent;
                    inst.sent_strong = SentSlot::NotSent;
                    inst.strong_senders.clear();
                    inst.strong_counts.clear();
                    inst.joined_r5 = false;
                    inst.active_prev = std::mem::take(&mut inst.active_cur);
                    inst.logical_input = inst.x.clone();
                    if let Some(x) = &inst.x {
                        out.push(ParMsg::Input(id.clone(), x.clone()));
                    }
                }
            }
            2 => {
                // Group this round's input messages per instance.
                let mut per_id: BTreeMap<I, Vec<(NodeId, V)>> = BTreeMap::new();
                for env in &inbox {
                    if let ParMsg::Input(id, v) = env.msg() {
                        per_id
                            .entry(id.clone())
                            .or_default()
                            .push((env.from, v.clone()));
                    }
                }
                // Join window: id:input first heard in round 2 of phase 1.
                if phase == 1 {
                    for id in per_id.keys() {
                        if !self.known(id) {
                            self.instances.insert(id.clone(), Instance::new(None));
                        }
                    }
                }
                for (id, inst) in self.instances.iter_mut() {
                    let msgs = per_id.remove(id).unwrap_or_default();
                    let mut senders: BTreeSet<NodeId> = BTreeSet::new();
                    let mut counts: BTreeMap<Option<V>, usize> = BTreeMap::new();
                    for (from, v) in msgs {
                        senders.insert(from);
                        inst.active_cur.insert(from);
                        *counts.entry(Some(v)).or_insert(0) += 1;
                    }
                    for m in frozen.members() {
                        if senders.contains(m) {
                            continue;
                        }
                        let fill = if phase == 1 {
                            // First time this type is heard: fill input(⊥).
                            None
                        } else if inst.active_prev.contains(m) {
                            // Alive last phase but silent at the input
                            // round: it logically holds ⊥.
                            None
                        } else {
                            // Terminated or Byzantine-silent: the receiver's
                            // own logical input (Algorithm 3's rule).
                            inst.logical_input.clone()
                        };
                        *counts.entry(fill).or_insert(0) += 1;
                    }
                    if let Some(x) = quorum_value(&counts, n, meets_two_thirds) {
                        out.push(ParMsg::Prefer(id.clone(), x.clone()));
                        inst.sent_prefer = SentSlot::Val(x);
                    } else {
                        out.push(ParMsg::NoPreference(id.clone()));
                        inst.sent_prefer = SentSlot::No;
                    }
                }
            }
            3 => {
                let mut per_id: BTreeMap<I, Vec<(NodeId, PreferClass<V>)>> = BTreeMap::new();
                for env in &inbox {
                    match env.msg() {
                        ParMsg::Prefer(id, v) => per_id
                            .entry(id.clone())
                            .or_default()
                            .push((env.from, Some(v.clone()))),
                        ParMsg::NoPreference(id) => {
                            per_id.entry(id.clone()).or_default().push((env.from, None))
                        }
                        _ => {}
                    }
                }
                // Join window: id:prefer first heard in round 3 of phase 1
                // (an explicit nopreference does not create awareness).
                if phase == 1 {
                    for (id, msgs) in &per_id {
                        if !self.known(id) && msgs.iter().any(|(_, v)| v.is_some()) {
                            self.instances.insert(id.clone(), Instance::new(None));
                        }
                    }
                }
                for (id, inst) in self.instances.iter_mut() {
                    let msgs = per_id.remove(id).unwrap_or_default();
                    let mut senders: BTreeSet<NodeId> = BTreeSet::new();
                    let mut counts: BTreeMap<Option<V>, usize> = BTreeMap::new();
                    for (from, v) in msgs {
                        senders.insert(from);
                        inst.active_cur.insert(from);
                        if let Some(val) = v {
                            *counts.entry(val).or_insert(0) += 1;
                        }
                    }
                    let missing = frozen
                        .members()
                        .iter()
                        .filter(|m| !senders.contains(m))
                        .count();
                    if phase == 1 {
                        *counts.entry(None).or_insert(0) += missing;
                    } else if let SentSlot::Val(own) = &inst.sent_prefer {
                        *counts.entry(own.clone()).or_insert(0) += missing;
                    }
                    if let Some((v, c)) = max_tally(&counts) {
                        if meets_third(c, n) {
                            inst.x = v.clone();
                        }
                        if meets_two_thirds(c, n) {
                            out.push(ParMsg::StrongPrefer(id.clone(), v.clone()));
                            inst.sent_strong = SentSlot::Val(v);
                            continue;
                        }
                    }
                    out.push(ParMsg::NoStrongPreference(id.clone()));
                    inst.sent_strong = SentSlot::No;
                }
            }
            4 => {
                // Strongprefers physically arrive now; evaluated in round 5.
                // Join window: id:strongprefer "first heard during the fifth
                // round" — the message physically arrives now and is
                // evaluated (and the join takes effect) in round 5.
                if phase == 1 {
                    for env in &inbox {
                        if let ParMsg::StrongPrefer(id, _) = env.msg() {
                            if !self.known(id) {
                                let mut inst = Instance::new(None);
                                inst.joined_r5 = true;
                                self.instances.insert(id.clone(), inst);
                            }
                        }
                    }
                }
                for env in &inbox {
                    match env.msg() {
                        ParMsg::StrongPrefer(id, v) => {
                            if let Some(inst) = self.instances.get_mut(id) {
                                inst.strong_senders.insert(env.from);
                                inst.active_cur.insert(env.from);
                                *inst.strong_counts.entry(v.clone()).or_insert(0) += 1;
                            }
                        }
                        ParMsg::NoStrongPreference(id) => {
                            if let Some(inst) = self.instances.get_mut(id) {
                                inst.strong_senders.insert(env.from);
                                inst.active_cur.insert(env.from);
                            }
                        }
                        _ => {}
                    }
                }
                // One shared rotor step for all instances.
                let support: BTreeMap<NodeId, usize> = self
                    .rotor_echo_buf
                    .iter()
                    .map(|(p, s)| (*p, s.len()))
                    .collect();
                self.rotor_echo_buf.clear();
                let step = self.rotor.step(n, &support);
                if !step.terminated {
                    for p in &step.re_echo {
                        out.push(ParMsg::RotorEcho(*p));
                    }
                    self.this_phase_coordinator = step.coordinator;
                    if step.coordinator == Some(self.me) {
                        for (id, inst) in &self.instances {
                            if !inst.joined_r5 {
                                out.push(ParMsg::Opinion(id.clone(), inst.x.clone()));
                            }
                        }
                    }
                }
            }
            5 => {
                let mut opinions: BTreeMap<I, Vec<Option<V>>> = BTreeMap::new();
                if let Some(p) = self.this_phase_coordinator {
                    for env in &inbox {
                        if env.from == p {
                            if let ParMsg::Opinion(id, v) = env.msg() {
                                opinions.entry(id.clone()).or_default().push(v.clone());
                            }
                        }
                    }
                }
                let mut newly_finished: Vec<I> = Vec::new();
                for (id, inst) in self.instances.iter_mut() {
                    let mut counts = inst.strong_counts.clone();
                    let missing = frozen
                        .members()
                        .iter()
                        .filter(|m| !inst.strong_senders.contains(m))
                        .count();
                    if phase == 1 {
                        *counts.entry(None).or_insert(0) += missing;
                    } else if let SentSlot::Val(own) = &inst.sent_strong {
                        *counts.entry(own.clone()).or_insert(0) += missing;
                    }
                    let strongest = max_tally(&counts);
                    let has_third = strongest.as_ref().is_some_and(|(_, c)| meets_third(*c, n));
                    if !has_third {
                        if let Some(cs) = opinions.get(id) {
                            let mut cs = cs.clone();
                            cs.sort();
                            if let Some(c) = cs.first() {
                                inst.x = c.clone();
                            }
                        }
                    }
                    if let Some((v, c)) = strongest {
                        if meets_two_thirds(c, n) {
                            newly_finished.push(id.clone());
                            self.finished.insert(id.clone(), v);
                        }
                    }
                }
                for id in newly_finished {
                    self.instances.remove(&id);
                }
                // No identifier can be joined after phase 1, so once every
                // instance has terminated the output set is final.
                if self.instances.is_empty() && self.done.is_none() {
                    self.done = Some(
                        self.finished
                            .iter()
                            .filter_map(|(id, v)| v.clone().map(|x| (id.clone(), x)))
                            .collect(),
                    );
                }
            }
            _ => unreachable!("phase rounds are 1..=5"),
        }
    }
}

/// The standalone parallel-consensus process (Algorithm 5 over the engine).
///
/// # Examples
///
/// ```
/// use uba_core::parallel::ParallelConsensus;
/// use uba_sim::{sparse_ids, SyncEngine};
///
/// // Two instances input at every node decide with their unanimous values.
/// let ids = sparse_ids(4, 6);
/// let mut engine = SyncEngine::builder()
///     .correct_many(ids.iter().map(|&id| {
///         ParallelConsensus::new(id, [("alpha", 1u64), ("beta", 2u64)])
///     }))
///     .build();
/// let done = engine.run_to_completion(12)?;
/// for out in done.outputs.values() {
///     assert_eq!(out.get("alpha"), Some(&1));
///     assert_eq!(out.get("beta"), Some(&2));
/// }
/// # Ok::<(), uba_sim::EngineError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ParallelConsensus<I, V> {
    core: ParallelConsensusCore<I, V>,
}

impl<I: Value, V: Value> ParallelConsensus<I, V> {
    /// Creates a node with its set of input pairs (possibly empty).
    pub fn new<P: IntoIterator<Item = (I, V)>>(me: NodeId, inputs: P) -> Self {
        ParallelConsensus {
            core: ParallelConsensusCore::new(me, inputs),
        }
    }

    /// Access to the underlying core (inspection in tests and experiments).
    pub fn core(&self) -> &ParallelConsensusCore<I, V> {
        &self.core
    }
}

impl<I: Value, V: Value> Process for ParallelConsensus<I, V> {
    type Msg = ParMsg<I, V>;
    type Output = BTreeMap<I, V>;

    fn id(&self) -> NodeId {
        self.core.me
    }

    fn on_round(&mut self, ctx: &mut Context<'_, ParMsg<I, V>>) {
        let mut out = Vec::new();
        self.core.on_round(ctx.round(), ctx.inbox(), &mut out);
        for msg in out {
            ctx.broadcast(msg);
        }
    }

    fn output(&self) -> Option<BTreeMap<I, V>> {
        self.core.done.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_sim::{sparse_ids, SyncEngine};

    fn run(
        node_inputs: Vec<Vec<(&'static str, u64)>>,
        seed: u64,
    ) -> BTreeMap<NodeId, BTreeMap<&'static str, u64>> {
        let ids = sparse_ids(node_inputs.len(), seed);
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .zip(node_inputs)
                    .map(|(&id, inputs)| ParallelConsensus::new(id, inputs)),
            )
            .build();
        engine
            .run_to_completion(200)
            .expect("parallel consensus terminates")
            .outputs
    }

    #[test]
    fn unanimous_instances_are_output_by_all() {
        let inputs = vec![vec![("a", 1), ("b", 2)]; 4];
        let outputs = run(inputs, 11);
        for out in outputs.values() {
            assert_eq!(out.get("a"), Some(&1));
            assert_eq!(out.get("b"), Some(&2));
        }
    }

    #[test]
    fn no_inputs_terminates_with_empty_output() {
        let outputs = run(vec![vec![]; 3], 5);
        for out in outputs.values() {
            assert!(out.is_empty());
        }
    }

    #[test]
    fn instance_known_to_one_node_reaches_agreement() {
        // Only node 0 has the pair ("solo", 9): the others join on hearing
        // id:input. Outputs must agree (they may all output the pair or all
        // drop it; with all-correct nodes it is in fact decided).
        let mut inputs = vec![vec![]; 5];
        inputs[0] = vec![("solo", 9u64)];
        let outputs = run(inputs, 23);
        let distinct: BTreeSet<_> = outputs.values().cloned().collect();
        assert_eq!(distinct.len(), 1, "agreement on the output set");
    }

    #[test]
    fn conflicting_inputs_agree_on_one_value() {
        // Same id, different values at different nodes.
        let inputs = vec![
            vec![("k", 1u64)],
            vec![("k", 2u64)],
            vec![("k", 1u64)],
            vec![("k", 2u64)],
        ];
        let outputs = run(inputs, 31);
        let distinct: BTreeSet<_> = outputs.values().cloned().collect();
        assert_eq!(distinct.len(), 1, "agreement");
        let out = distinct.into_iter().next().unwrap();
        if let Some(v) = out.get("k") {
            assert!([1, 2].contains(v), "validity-compatible value");
        }
    }

    #[test]
    fn mixed_known_and_unknown_instances() {
        let inputs = vec![
            vec![("x", 1u64), ("y", 7)],
            vec![("x", 1u64)],
            vec![("x", 1u64), ("y", 7)],
            vec![("x", 1u64), ("y", 7)],
            vec![("x", 1u64)],
        ];
        let outputs = run(inputs, 41);
        let distinct: BTreeSet<_> = outputs.values().cloned().collect();
        assert_eq!(distinct.len(), 1, "agreement");
        let out = distinct.into_iter().next().unwrap();
        assert_eq!(out.get("x"), Some(&1), "validity for the unanimous pair");
    }

    #[test]
    fn fake_instance_injected_by_adversary_is_never_output() {
        use uba_sim::{AdversaryOutbox, AdversaryView, FnAdversary, NodeId};
        type M = ParMsg<&'static str, u64>;
        let ids = sparse_ids(4, 2);
        let target = ids[0];
        let byz = NodeId::new(7);
        // The adversary announces itself during initialization, then feeds a
        // fake instance to a single correct node in phase 1 round 1.
        let adv = FnAdversary::new(
            move |view: &AdversaryView<'_, M>, out: &mut AdversaryOutbox<M>| match view.round {
                1 => out.broadcast(byz, ParMsg::RotorInit),
                3 => out.send(byz, target, ParMsg::Input("fake", 666)),
                _ => {}
            },
        );
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .map(|&id| ParallelConsensus::new(id, [("real", 5u64)])),
            )
            .faulty(byz)
            .adversary(adv)
            .build();
        let done = engine.run_to_completion(200).expect("terminates");
        for out in done.outputs.values() {
            assert_eq!(out.get("real"), Some(&5));
            assert!(!out.contains_key("fake"), "fake instance must be dropped");
        }
    }
}
