//! # uba-core — Byzantine agreement with unknown participants and failures
//!
//! Implementations of every algorithm in *"Byzantine Agreement with Unknown
//! Participants and Failures"* (Khanchandani & Wattenhofer, PODC 2020) for
//! the *id-only* model: nodes know their own (non-consecutive) identifier
//! and nothing else — in particular neither the system size `n` nor the
//! failure bound `f` — yet achieve the optimal resiliency `n > 3f`:
//!
//! - [`reliable`] — reliable broadcast (Algorithm 1);
//! - [`rotor`] — the rotor-coordinator (Algorithm 2), the paper's key
//!   device for simulating `f + 1` coordinator rounds without knowing `f`;
//! - [`consensus`] — `O(f)`-round early-terminating consensus
//!   (Algorithm 3), plus the appendix's rotor-driven king consensus;
//! - [`approx`] — approximate agreement (Algorithm 4), one-shot and
//!   iterated;
//! - [`parallel`] — parallel consensus over an unknown set of instance
//!   identifiers (Algorithm 5);
//! - [`ordering`] — total ordering of events in dynamic networks
//!   (Algorithm 6);
//! - [`trb`], [`renaming`] — the appendix extensions (terminating reliable
//!   broadcast, Byzantine renaming);
//! - [`baselines`] — the classic known-`(n, f)` counterparts
//!   (Srikanth–Toueg broadcast, Dolev et al. approximate agreement, the
//!   phase-king consensus) used by the experiment harness to show that
//!   dropping the knowledge of `n` and `f` costs neither resiliency nor
//!   asymptotic complexity;
//! - [`lower_bounds`] — executable versions of the paper's impossibility
//!   arguments (synchrony is necessary);
//! - [`vector`] — vector consensus (interactive consistency), a composition
//!   of the primitives per the Discussion section;
//! - [`spec`] — the paper's problem definitions as executable property
//!   checkers;
//! - [`monitor`] — online (per-round) monitors of the same properties, for
//!   the engine's [`RoundMonitor`](uba_sim::RoundMonitor) hook;
//! - [`harness`] — convenience runners used by tests, examples and
//!   benchmarks.
//!
//! All protocols implement [`uba_sim::Process`] and run on the engines of
//! the [`uba_sim`] crate.
//!
//! # Quickstart
//!
//! ```
//! use uba_core::consensus::EarlyConsensus;
//! use uba_sim::{sparse_ids, SyncEngine};
//!
//! // Seven nodes with split opinions agree on one of them, without any
//! // node ever knowing how many participants exist.
//! let ids = sparse_ids(7, 42);
//! let mut engine = SyncEngine::builder()
//!     .correct_many(ids.iter().enumerate().map(|(i, &id)| {
//!         EarlyConsensus::new(id, (i % 2) as u64)
//!     }))
//!     .build();
//! let done = engine.run_to_completion(100)?;
//! let mut decided: Vec<u64> = done.outputs.values().copied().collect();
//! decided.dedup();
//! assert_eq!(decided.len(), 1);
//! # Ok::<(), uba_sim::EngineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod baselines;
pub mod consensus;
pub mod harness;
pub mod lower_bounds;
pub mod monitor;
pub mod observe;
pub mod ordering;
pub mod parallel;
pub mod quorum;
pub mod reliable;
pub mod renaming;
pub mod rotor;
pub mod spec;
pub mod tracker;
pub mod trb;
pub mod value;
pub mod vector;

pub use tracker::{FrozenMembership, ParticipantTracker};
pub use value::{OrderedF64, Value};
