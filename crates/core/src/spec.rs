//! Executable specifications of the paper's problem definitions.
//!
//! Each agreement problem in the paper comes with a precise list of
//! properties (correctness/unforgeability/relay; agreement/validity/
//! termination; containment/contraction; chain-prefix/chain-growth). This
//! module turns those definitions into reusable checkers over run outputs,
//! so that integration tests, property-based tests and the experiment
//! harness all assert *the same* formalization instead of re-deriving it
//! ad hoc.
//!
//! Checkers return a [`SpecReport`] rather than panicking, so the
//! resiliency experiments can *count* violations in deliberately broken
//! (`n ≤ 3f`) configurations.

use std::collections::BTreeMap;

use uba_sim::NodeId;

use crate::ordering::Chain;
use crate::value::Value;

/// Outcome of checking one property.
///
/// # Examples
///
/// ```
/// use std::collections::BTreeMap;
/// use uba_core::spec::consensus_agreement;
/// use uba_sim::NodeId;
///
/// let mut outputs = BTreeMap::new();
/// outputs.insert(NodeId::new(1), "commit");
/// outputs.insert(NodeId::new(2), "abort");
/// let report = consensus_agreement(&outputs);
/// assert!(!report.holds());
/// assert_eq!(report.violations.len(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecReport {
    /// Name of the property checked.
    pub property: &'static str,
    /// Human-readable violations; empty means the property held.
    pub violations: Vec<String>,
    /// Nodes implicated by the violations, deduplicated in first-blamed
    /// order; empty when violations are global (e.g. a range bound) or when
    /// the property held.
    pub offenders: Vec<NodeId>,
}

impl SpecReport {
    fn new(property: &'static str) -> Self {
        SpecReport {
            property,
            violations: Vec::new(),
            offenders: Vec::new(),
        }
    }

    fn violate(&mut self, message: String) {
        self.violations.push(message);
    }

    /// Records a violation attributable to specific nodes.
    fn violate_nodes(&mut self, nodes: &[NodeId], message: String) {
        self.violations.push(message);
        for &node in nodes {
            if !self.offenders.contains(&node) {
                self.offenders.push(node);
            }
        }
    }

    /// Whether the property held.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with the violations if the property did not hold.
    ///
    /// # Panics
    ///
    /// Panics iff there is at least one violation.
    pub fn assert_holds(&self) {
        assert!(
            self.holds(),
            "{} violated:\n  {}",
            self.property,
            self.violations.join("\n  ")
        );
    }
}

/// Consensus **agreement**: all outputs equal.
pub fn consensus_agreement<V: Value>(outputs: &BTreeMap<NodeId, V>) -> SpecReport {
    let mut report = SpecReport::new("consensus agreement");
    let mut iter = outputs.iter();
    if let Some((first_id, first)) = iter.next() {
        for (id, v) in iter {
            if v != first {
                report.violate_nodes(
                    &[*id, *first_id],
                    format!("{id} decided {v:?} but {first_id} decided {first:?}"),
                );
            }
        }
    }
    report
}

/// Consensus **validity**: every output was some correct node's input; if
/// all inputs are equal, the output must be that input.
pub fn consensus_validity<V: Value>(
    inputs: &BTreeMap<NodeId, V>,
    outputs: &BTreeMap<NodeId, V>,
) -> SpecReport {
    let mut report = SpecReport::new("consensus validity");
    let input_values: Vec<&V> = inputs.values().collect();
    let unanimous = input_values.windows(2).all(|w| w[0] == w[1]);
    for (id, v) in outputs {
        if !input_values.contains(&v) {
            report.violate_nodes(
                &[*id],
                format!("{id} decided {v:?}, which no correct node input"),
            );
        }
        if unanimous {
            if let Some(the_input) = input_values.first() {
                if &v != the_input {
                    report.violate_nodes(
                        &[*id],
                        format!("unanimous input {the_input:?} but {id} decided {v:?}"),
                    );
                }
            }
        }
    }
    report
}

/// Consensus **termination**: every expected node produced an output.
pub fn consensus_termination<V: Value>(
    expected: &[NodeId],
    outputs: &BTreeMap<NodeId, V>,
) -> SpecReport {
    let mut report = SpecReport::new("consensus termination");
    for id in expected {
        if !outputs.contains_key(id) {
            report.violate_nodes(&[*id], format!("{id} never decided"));
        }
    }
    report
}

/// Reliable-broadcast **correctness**: with a correct sender of `m`, every
/// correct node accepts `m` in round 3.
pub fn broadcast_correctness<M: Value>(
    message: &M,
    accepted: &BTreeMap<NodeId, BTreeMap<M, u64>>,
) -> SpecReport {
    let mut report = SpecReport::new("reliable broadcast correctness");
    for (id, acc) in accepted {
        match acc.get(message) {
            None => report.violate_nodes(&[*id], format!("{id} never accepted {message:?}")),
            Some(3) => {}
            Some(r) => report.violate_nodes(
                &[*id],
                format!("{id} accepted {message:?} in round {r}, not 3"),
            ),
        }
    }
    report
}

/// Reliable-broadcast **relay**: per message, acceptance rounds of any two
/// correct nodes differ by at most one, and acceptance is all-or-nothing.
pub fn broadcast_relay<M: Value>(accepted: &BTreeMap<NodeId, BTreeMap<M, u64>>) -> SpecReport {
    let mut report = SpecReport::new("reliable broadcast relay");
    let mut per_message: BTreeMap<&M, Vec<(NodeId, u64)>> = BTreeMap::new();
    for (id, acc) in accepted {
        for (m, r) in acc {
            per_message.entry(m).or_default().push((*id, *r));
        }
    }
    for (m, rounds) in per_message {
        if rounds.len() != accepted.len() {
            let holders: Vec<NodeId> = rounds.iter().map(|(id, _)| *id).collect();
            let missing: Vec<NodeId> = accepted
                .keys()
                .filter(|id| !holders.contains(id))
                .copied()
                .collect();
            report.violate_nodes(
                &missing,
                format!(
                    "{m:?} accepted by {}/{} nodes",
                    rounds.len(),
                    accepted.len()
                ),
            );
            continue;
        }
        let min = rounds.iter().map(|(_, r)| *r).min().unwrap_or(0);
        let max = rounds.iter().map(|(_, r)| *r).max().unwrap_or(0);
        if max - min > 1 {
            let extremes: Vec<NodeId> = rounds
                .iter()
                .filter(|(_, r)| *r == min || *r == max)
                .map(|(id, _)| *id)
                .collect();
            report.violate_nodes(
                &extremes,
                format!("{m:?} acceptance spread {min}..{max} exceeds 1"),
            );
        }
    }
    report
}

/// Reliable-broadcast **unforgeability** (correct, silent sender): nothing
/// may be accepted.
pub fn broadcast_unforgeability<M: Value>(
    accepted: &BTreeMap<NodeId, BTreeMap<M, u64>>,
) -> SpecReport {
    let mut report = SpecReport::new("reliable broadcast unforgeability");
    for (id, acc) in accepted {
        for (m, r) in acc {
            report.violate_nodes(
                &[*id],
                format!(
                    "{id} accepted forged {m:?} in round {r} although the sender never broadcast"
                ),
            );
        }
    }
    report
}

/// Approximate-agreement **containment**: outputs within the correct input
/// range.
pub fn approx_containment(
    inputs: &BTreeMap<NodeId, f64>,
    outputs: &BTreeMap<NodeId, f64>,
) -> SpecReport {
    let mut report = SpecReport::new("approximate agreement containment");
    let lo = inputs.values().cloned().fold(f64::INFINITY, f64::min);
    let hi = inputs.values().cloned().fold(f64::NEG_INFINITY, f64::max);
    for (id, o) in outputs {
        if *o < lo - 1e-12 || *o > hi + 1e-12 {
            report.violate_nodes(&[*id], format!("{id} output {o} outside [{lo}, {hi}]"));
        }
    }
    report
}

/// Approximate-agreement **contraction**: output range at most half the
/// input range per iteration.
pub fn approx_contraction(
    inputs: &BTreeMap<NodeId, f64>,
    outputs: &BTreeMap<NodeId, f64>,
    iterations: u32,
) -> SpecReport {
    let mut report = SpecReport::new("approximate agreement contraction");
    let in_range = {
        let lo = inputs.values().cloned().fold(f64::INFINITY, f64::min);
        let hi = inputs.values().cloned().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    };
    let out_range = {
        let lo = outputs.values().cloned().fold(f64::INFINITY, f64::min);
        let hi = outputs.values().cloned().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    };
    let bound = in_range / 2f64.powi(iterations as i32) + 1e-9;
    if out_range > bound {
        report.violate(format!(
            "output range {out_range} exceeds {bound} after {iterations} iteration(s)"
        ));
    }
    report
}

/// Ordering **chain-prefix** (overlap form, to accommodate late joiners and
/// early leavers): for every pair of chains, the events in their common
/// wave window must be identical.
pub fn chain_prefix<V: Value>(chains: &BTreeMap<NodeId, Chain<V>>) -> SpecReport {
    let mut report = SpecReport::new("chain-prefix");
    let entries: Vec<(&NodeId, &Chain<V>)> = chains.iter().collect();
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let (id_a, a) = entries[i];
            let (id_b, b) = entries[j];
            let (Some(a0), Some(b0)) = (a.first(), b.first()) else {
                continue;
            };
            let lo = a0.wave.max(b0.wave);
            let a_win: Vec<_> = a.iter().filter(|e| e.wave >= lo).collect();
            let b_win: Vec<_> = b.iter().filter(|e| e.wave >= lo).collect();
            let k = a_win.len().min(b_win.len());
            if a_win[..k] != b_win[..k] {
                report.violate_nodes(
                    &[*id_a, *id_b],
                    format!("{id_a} and {id_b} disagree on waves ≥ {lo}"),
                );
            }
        }
    }
    report
}

/// Ordering **chain-growth**: each node's chain length is non-decreasing
/// over the given observations and strictly grows overall when events keep
/// being submitted.
pub fn chain_growth(observations: &[BTreeMap<NodeId, usize>], expect_growth: bool) -> SpecReport {
    let mut report = SpecReport::new("chain-growth");
    for pair in observations.windows(2) {
        for (id, &later) in &pair[1] {
            if let Some(&earlier) = pair[0].get(id) {
                if later < earlier {
                    report.violate_nodes(&[*id], format!("{id} chain shrank {earlier} -> {later}"));
                }
            }
        }
    }
    if expect_growth {
        if let (Some(first), Some(last)) = (observations.first(), observations.last()) {
            let grew = last
                .iter()
                .any(|(id, &len)| len > first.get(id).copied().unwrap_or(0));
            if !grew {
                report.violate("no chain grew across the whole observation window".to_string());
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::OrderedEvent;

    fn ids(n: u64) -> Vec<NodeId> {
        (1..=n).map(NodeId::new).collect()
    }

    #[test]
    fn agreement_detects_split() {
        let nodes = ids(2);
        let mut outputs = BTreeMap::new();
        outputs.insert(nodes[0], 1u8);
        outputs.insert(nodes[1], 2u8);
        let report = consensus_agreement(&outputs);
        assert!(!report.holds());
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn validity_detects_invented_value() {
        let nodes = ids(2);
        let inputs: BTreeMap<NodeId, u8> = nodes.iter().map(|&id| (id, 0)).collect();
        let outputs: BTreeMap<NodeId, u8> = nodes.iter().map(|&id| (id, 9)).collect();
        let report = consensus_validity(&inputs, &outputs);
        assert!(!report.holds());
    }

    #[test]
    fn validity_enforces_unanimity() {
        let nodes = ids(2);
        let inputs: BTreeMap<NodeId, u8> = nodes.iter().map(|&id| (id, 1)).collect();
        let mut outputs = inputs.clone();
        outputs.insert(nodes[0], 1);
        assert!(consensus_validity(&inputs, &outputs).holds());
    }

    #[test]
    fn termination_detects_missing_node() {
        let nodes = ids(2);
        let outputs: BTreeMap<NodeId, u8> = [(nodes[0], 1)].into();
        assert!(!consensus_termination(&nodes, &outputs).holds());
    }

    #[test]
    fn relay_detects_partial_acceptance() {
        let nodes = ids(2);
        let mut accepted: BTreeMap<NodeId, BTreeMap<u8, u64>> = BTreeMap::new();
        accepted.insert(nodes[0], [(7u8, 3u64)].into());
        accepted.insert(nodes[1], BTreeMap::new());
        assert!(!broadcast_relay(&accepted).holds());
    }

    #[test]
    fn relay_detects_wide_spread() {
        let nodes = ids(2);
        let mut accepted: BTreeMap<NodeId, BTreeMap<u8, u64>> = BTreeMap::new();
        accepted.insert(nodes[0], [(7u8, 3u64)].into());
        accepted.insert(nodes[1], [(7u8, 5u64)].into());
        assert!(!broadcast_relay(&accepted).holds());
    }

    #[test]
    fn unforgeability_flags_any_acceptance() {
        let nodes = ids(1);
        let mut accepted: BTreeMap<NodeId, BTreeMap<u8, u64>> = BTreeMap::new();
        accepted.insert(nodes[0], [(9u8, 4u64)].into());
        assert!(!broadcast_unforgeability(&accepted).holds());
        accepted.get_mut(&nodes[0]).unwrap().clear();
        assert!(broadcast_unforgeability(&accepted).holds());
    }

    #[test]
    fn containment_and_contraction() {
        let nodes = ids(2);
        let inputs: BTreeMap<NodeId, f64> = [(nodes[0], 0.0), (nodes[1], 8.0)].into();
        let good: BTreeMap<NodeId, f64> = [(nodes[0], 4.0), (nodes[1], 5.0)].into();
        assert!(approx_containment(&inputs, &good).holds());
        assert!(approx_contraction(&inputs, &good, 2).holds());
        let bad: BTreeMap<NodeId, f64> = [(nodes[0], -1.0), (nodes[1], 9.0)].into();
        assert!(!approx_containment(&inputs, &bad).holds());
        assert!(!approx_contraction(&inputs, &bad, 1).holds());
    }

    #[test]
    fn chain_prefix_detects_overlap_mismatch() {
        let nodes = ids(2);
        let ev = |wave, origin: NodeId, value: u8| OrderedEvent {
            wave,
            origin,
            value,
        };
        let mut chains: BTreeMap<NodeId, Chain<u8>> = BTreeMap::new();
        chains.insert(nodes[0], vec![ev(1, nodes[0], 1), ev(2, nodes[1], 2)]);
        chains.insert(nodes[1], vec![ev(2, nodes[1], 9)]);
        assert!(!chain_prefix(&chains).holds());
        chains.insert(nodes[1], vec![ev(2, nodes[1], 2)]);
        assert!(chain_prefix(&chains).holds());
    }

    #[test]
    fn chain_growth_detects_shrinkage_and_stagnation() {
        let nodes = ids(1);
        let obs = vec![
            BTreeMap::from([(nodes[0], 3usize)]),
            BTreeMap::from([(nodes[0], 2usize)]),
        ];
        assert!(!chain_growth(&obs, false).holds());
        let flat = vec![
            BTreeMap::from([(nodes[0], 3usize)]),
            BTreeMap::from([(nodes[0], 3usize)]),
        ];
        assert!(chain_growth(&flat, false).holds());
        assert!(!chain_growth(&flat, true).holds());
    }

    #[test]
    fn assert_holds_panics_with_details() {
        let nodes = ids(2);
        let mut outputs = BTreeMap::new();
        outputs.insert(nodes[0], 1u8);
        outputs.insert(nodes[1], 2u8);
        let report = consensus_agreement(&outputs);
        let err = std::panic::catch_unwind(|| report.assert_holds()).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("consensus agreement violated"));
    }
}
