//! Classic known-`(n, f)` baselines.
//!
//! The paper's claim is comparative: the fundamental agreement problems can
//! be solved *without* knowing `n` and `f`, at the **same** resiliency
//! (`n > 3f`) and essentially the same round and message complexity as the
//! classic algorithms that *do* know them. These baselines make that
//! comparison executable:
//!
//! - [`StBroadcast`] — Srikanth–Toueg reliable broadcast with the classic
//!   `f + 1` / `2f + 1` thresholds;
//! - [`KnownApprox`] — Dolev et al. approximate agreement discarding exactly
//!   `f` extreme values per side;
//! - [`PhaseKing`] — the Berman–Garay–Perry phase-king consensus with
//!   `f + 1` pre-agreed kings (smallest identifiers first), possible only
//!   because `f` is known and the king schedule is common knowledge.
//!
//! All three run on the same engine and are measured by the same harness as
//! the unknown-participant algorithms (experiment T7).

use std::collections::{BTreeMap, BTreeSet};

use uba_sim::{Context, NodeId, Process};

use crate::quorum::{max_tally, tally};
use crate::value::{OrderedF64, Value};

/// Messages of the classic Srikanth–Toueg broadcast.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum StMsg<M> {
    /// The designated sender's initial broadcast.
    Payload(M),
    /// `echo(m)` support.
    Echo(M),
}

/// Classic reliable broadcast with known `f`: echo on a direct payload or on
/// `f + 1` distinct echoers (cumulative), accept on `2f + 1`.
///
/// # Examples
///
/// ```
/// use uba_core::baselines::StBroadcast;
/// use uba_sim::{sparse_ids, SyncEngine};
///
/// let ids = sparse_ids(4, 2);
/// let sender = ids[1];
/// let mut engine = SyncEngine::builder()
///     .correct_many(ids.iter().map(|&id| {
///         StBroadcast::new(id, sender, (id == sender).then_some("m"), 1).with_horizon(6)
///     }))
///     .build();
/// let done = engine.run_to_completion(8)?;
/// assert!(done.outputs.values().all(|a| a.contains_key("m")));
/// # Ok::<(), uba_sim::EngineError>(())
/// ```
#[derive(Clone, Debug)]
pub struct StBroadcast<M> {
    me: NodeId,
    sender: NodeId,
    payload: Option<M>,
    f: usize,
    /// Cumulative distinct echoers per message.
    echoers: BTreeMap<M, BTreeSet<NodeId>>,
    echoed: BTreeSet<M>,
    accepted: BTreeMap<M, u64>,
    horizon: Option<u64>,
    done: Option<BTreeMap<M, u64>>,
}

impl<M: Value> StBroadcast<M> {
    /// Creates a node's instance with the known failure bound `f`.
    pub fn new(me: NodeId, sender: NodeId, payload: Option<M>, f: usize) -> Self {
        StBroadcast {
            me,
            sender,
            payload,
            f,
            echoers: BTreeMap::new(),
            echoed: BTreeSet::new(),
            accepted: BTreeMap::new(),
            horizon: None,
            done: None,
        }
    }

    /// Terminates at the given round with the accepted map as output.
    pub fn with_horizon(mut self, round: u64) -> Self {
        self.horizon = Some(round);
        self
    }

    /// Messages accepted so far with their acceptance rounds.
    pub fn accepted(&self) -> &BTreeMap<M, u64> {
        &self.accepted
    }
}

impl<M: Value> Process for StBroadcast<M> {
    type Msg = StMsg<M>;
    type Output = BTreeMap<M, u64>;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut Context<'_, StMsg<M>>) {
        let round = ctx.round();
        if round == 1 {
            if self.me == self.sender {
                if let Some(m) = self.payload.clone() {
                    ctx.broadcast(StMsg::Payload(m));
                }
            }
        } else {
            let mut to_echo: Vec<M> = Vec::new();
            for e in ctx.inbox() {
                match e.msg() {
                    StMsg::Payload(m) if e.from == self.sender && !self.echoed.contains(m) => {
                        to_echo.push(m.clone());
                    }
                    StMsg::Echo(m) => {
                        self.echoers.entry(m.clone()).or_default().insert(e.from);
                    }
                    _ => {}
                }
            }
            for (m, echoers) in &self.echoers {
                if echoers.len() > self.f && !self.echoed.contains(m) {
                    to_echo.push(m.clone());
                }
                if echoers.len() > 2 * self.f && !self.accepted.contains_key(m) {
                    self.accepted.insert(m.clone(), round);
                }
            }
            for m in to_echo {
                self.echoed.insert(m.clone());
                ctx.broadcast(StMsg::Echo(m));
            }
        }
        if self.horizon == Some(round) {
            self.done = Some(self.accepted.clone());
        }
    }

    fn output(&self) -> Option<BTreeMap<M, u64>> {
        self.done.clone()
    }
}

/// Classic approximate agreement with known `f`: discard exactly `f`
/// smallest and `f` largest received values, output the midpoint of the
/// remaining extremes. Iterated like
/// [`ApproxAgreement`](crate::approx::ApproxAgreement).
#[derive(Clone, Debug)]
pub struct KnownApprox {
    me: NodeId,
    f: usize,
    current: OrderedF64,
    iterations: u64,
    local_round: u64,
    done: Option<f64>,
}

impl KnownApprox {
    /// Creates a node with input `input` and the known failure bound `f`.
    ///
    /// # Panics
    ///
    /// Panics if `input` is NaN.
    pub fn new(me: NodeId, input: f64, f: usize) -> Self {
        KnownApprox {
            me,
            f,
            current: OrderedF64::new(input).expect("input must not be NaN"),
            iterations: 1,
            local_round: 0,
            done: None,
        }
    }

    /// Sets the number of iterations (default 1).
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        assert!(iterations > 0, "at least one iteration is required");
        self.iterations = iterations;
        self
    }
}

impl Process for KnownApprox {
    type Msg = OrderedF64;
    type Output = f64;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut Context<'_, OrderedF64>) {
        self.local_round += 1;
        let r = self.local_round;
        if r > 1 {
            let mut received: BTreeMap<NodeId, OrderedF64> = BTreeMap::new();
            for env in ctx.inbox() {
                received
                    .entry(env.from)
                    .and_modify(|v| *v = (*v).min(*env.msg()))
                    .or_insert(*env.msg());
            }
            let mut values: Vec<OrderedF64> = received.values().copied().collect();
            values.sort_unstable();
            if values.len() > 2 * self.f {
                let kept = &values[self.f..values.len() - self.f];
                let lo = kept.first().expect("non-empty").get();
                let hi = kept.last().expect("non-empty").get();
                self.current = OrderedF64::new((lo + hi) / 2.0).expect("non-NaN midpoint");
            }
        }
        if r <= self.iterations {
            ctx.broadcast(self.current);
        } else {
            self.done = Some(self.current.get());
        }
    }

    fn output(&self) -> Option<f64> {
        self.done
    }
}

/// Messages of the phase-king consensus.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PkMsg<V> {
    /// Phase round 1: the node's current value.
    Value(V),
    /// Phase round 2: `n - f` identical values were received.
    Propose(V),
    /// Phase round 3: the phase king's tie-breaking value.
    King(V),
}

/// Classic phase-king consensus with known `n`, `f` and a pre-agreed king
/// schedule (the `f + 1` smallest identifiers, one per phase).
///
/// Each phase takes four engine rounds (value, propose, king, resolve) and
/// there are exactly `f + 1` phases, so the run length is `4(f + 1)` —
/// independent of the adversary but *not* early-terminating.
///
/// # Examples
///
/// ```
/// use uba_core::baselines::PhaseKing;
/// use uba_sim::{sparse_ids, SyncEngine};
///
/// let ids = sparse_ids(4, 14);
/// let all = ids.clone();
/// let mut engine = SyncEngine::builder()
///     .correct_many(ids.iter().enumerate().map(|(i, &id)| {
///         PhaseKing::new(id, (i % 2) as u8, all.clone(), 1)
///     }))
///     .build();
/// let done = engine.run_to_completion(8)?;
/// let mut decided: Vec<u8> = done.outputs.values().copied().collect();
/// decided.dedup();
/// assert_eq!(decided.len(), 1);
/// # Ok::<(), uba_sim::EngineError>(())
/// ```
#[derive(Clone, Debug)]
pub struct PhaseKing<V> {
    me: NodeId,
    x: V,
    n: usize,
    f: usize,
    /// King of phase `k` (0-based): `kings[k]`.
    kings: Vec<NodeId>,
    propose_count: usize,
    decided: Option<V>,
}

impl<V: Value> PhaseKing<V> {
    /// Creates a node with input `input`, the full (known!) membership, and
    /// the known failure bound `f`. The king schedule is the `f + 1`
    /// smallest identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `members` has fewer than `f + 1` nodes.
    pub fn new(me: NodeId, input: V, members: Vec<NodeId>, f: usize) -> Self {
        let n = members.len();
        let mut sorted = members;
        sorted.sort_unstable();
        assert!(
            sorted.len() > f,
            "need at least f + 1 members for the king schedule"
        );
        PhaseKing {
            me,
            x: input,
            n,
            f,
            kings: sorted.into_iter().take(f + 1).collect(),
            propose_count: 0,
            decided: None,
        }
    }
}

impl<V: Value> Process for PhaseKing<V> {
    type Msg = PkMsg<V>;
    type Output = V;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut Context<'_, PkMsg<V>>) {
        let round = ctx.round();
        let phase = ((round - 1) / 4) as usize; // 0-based
        let phase_round = (round - 1) % 4 + 1;
        let threshold = self.n - self.f;
        match phase_round {
            1 => ctx.broadcast(PkMsg::Value(self.x.clone())),
            2 => {
                let counts = tally(ctx.inbox().iter().filter_map(|e| match e.msg() {
                    PkMsg::Value(v) => Some(v.clone()),
                    _ => None,
                }));
                if let Some((v, c)) = max_tally(&counts) {
                    if c >= threshold {
                        ctx.broadcast(PkMsg::Propose(v));
                    }
                }
            }
            3 => {
                let counts = tally(ctx.inbox().iter().filter_map(|e| match e.msg() {
                    PkMsg::Propose(v) => Some(v.clone()),
                    _ => None,
                }));
                self.propose_count = 0;
                if let Some((v, c)) = max_tally(&counts) {
                    self.propose_count = c;
                    if c > self.f {
                        self.x = v;
                    }
                }
                if self.kings[phase] == self.me {
                    ctx.broadcast(PkMsg::King(self.x.clone()));
                }
            }
            4 => {
                if self.propose_count < threshold {
                    let king = self.kings[phase];
                    let mut king_values: Vec<&V> = ctx
                        .inbox()
                        .iter()
                        .filter(|e| e.from == king)
                        .filter_map(|e| match e.msg() {
                            PkMsg::King(v) => Some(v),
                            _ => None,
                        })
                        .collect();
                    king_values.sort();
                    if let Some(v) = king_values.first() {
                        self.x = (*v).clone();
                    }
                }
                if phase == self.f {
                    self.decided = Some(self.x.clone());
                }
            }
            _ => unreachable!("phase rounds are 1..=4"),
        }
    }

    fn output(&self) -> Option<V> {
        self.decided.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_sim::{sparse_ids, SyncEngine};

    #[test]
    fn st_broadcast_accepts_correct_sender_in_three_rounds() {
        let ids = sparse_ids(4, 6);
        let sender = ids[0];
        let mut engine = SyncEngine::builder()
            .correct_many(ids.iter().map(|&id| {
                StBroadcast::new(id, sender, (id == sender).then_some("m"), 1).with_horizon(6)
            }))
            .build();
        let done = engine.run_to_completion(8).expect("completes");
        for accepted in done.outputs.values() {
            assert_eq!(accepted.get("m"), Some(&3));
        }
    }

    #[test]
    fn known_approx_halves_range() {
        let ids = sparse_ids(4, 10);
        let inputs = [0.0, 2.0, 6.0, 8.0];
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .zip(inputs)
                    .map(|(&id, x)| KnownApprox::new(id, x, 1)),
            )
            .build();
        let done = engine.run_to_completion(4).expect("completes");
        let outputs: Vec<f64> = done.outputs.values().copied().collect();
        let lo = outputs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = outputs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(hi - lo <= 4.0);
        assert!(outputs.iter().all(|&o| (0.0..=8.0).contains(&o)));
    }

    #[test]
    fn phase_king_agrees_in_4_f_plus_1_rounds() {
        let ids = sparse_ids(7, 8);
        let f = 2;
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .enumerate()
                    .map(|(i, &id)| PhaseKing::new(id, (i % 2) as u8, ids.clone(), f)),
            )
            .build();
        let done = engine
            .run_to_completion(4 * (f as u64 + 1))
            .expect("completes");
        let mut decided: Vec<u8> = done.outputs.values().copied().collect();
        decided.dedup();
        assert_eq!(decided.len(), 1, "agreement");
        assert_eq!(done.last_decided_round(), 4 * (f as u64 + 1));
    }

    #[test]
    fn phase_king_unanimous_validity() {
        let ids = sparse_ids(4, 18);
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .map(|&id| PhaseKing::new(id, 1u8, ids.clone(), 1)),
            )
            .build();
        let done = engine.run_to_completion(8).expect("completes");
        assert!(done.outputs.values().all(|&v| v == 1));
    }
}
