//! Reliable broadcast without knowing `n` or `f` — Algorithm 1 of the paper.
//!
//! A designated node `s` (correct or faulty) broadcasts a message `(m, s)`.
//! The abstraction guarantees, for `n > 3f`:
//!
//! 1. **Correctness** — if `s` is correct, every correct node accepts
//!    `(m, s)` (in round 3: broadcast, echo, accept).
//! 2. **Unforgeability** — if a correct node accepts `(m, s)` and `s` is
//!    correct, then `s` really broadcast `m`.
//! 3. **Relay** — if a correct node accepts `(m, s)` in round `r`, every
//!    correct node accepts it by round `r + 1`.
//!
//! The classic Srikanth–Toueg protocol uses the thresholds `f + 1` and
//! `2f + 1`; this algorithm replaces them with `n_v/3` and `2n_v/3` where
//! `n_v` is the node's own (possibly inconsistent) participant estimate.
//! Round 1 makes every correct node announce itself (`present`), which is
//! what anchors `n_v ≥ g` at every correct node.
//!
//! The paper's protocol never terminates on its own (it is a subroutine);
//! [`ReliableBroadcast`] optionally terminates at a caller-chosen horizon
//! round, outputting everything accepted so far.

use std::collections::BTreeMap;

use uba_sim::{Context, NodeId, Process};

use crate::quorum::{meets_third, meets_two_thirds};
use crate::tracker::ParticipantTracker;
use crate::value::Value;

/// Messages of the reliable-broadcast protocol.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum RbMsg<M> {
    /// The designated sender's initial broadcast of `m` (round 1).
    Payload(M),
    /// Every other correct node announces itself in round 1.
    Present,
    /// `echo(m, s)` — support for accepting `(m, s)`. The designated sender
    /// `s` is fixed per protocol instance, so only `m` is carried.
    Echo(M),
}

/// Per-message acceptance state of one node.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct MessageState {
    accepted_round: Option<u64>,
}

/// One node's state machine for Algorithm 1.
///
/// All correct nodes (including the designated sender) run one instance per
/// broadcast. A faulty designated sender may cause several distinct messages
/// to be accepted — the three properties only constrain *correct* senders —
/// so the protocol tracks acceptance per message value.
///
/// # Examples
///
/// ```
/// use uba_core::reliable::ReliableBroadcast;
/// use uba_sim::{sparse_ids, SyncEngine};
///
/// let ids = sparse_ids(4, 1);
/// let sender = ids[0];
/// let mut engine = SyncEngine::builder()
///     .correct_many(ids.iter().map(|&id| {
///         ReliableBroadcast::new(id, sender, (id == sender).then_some("payload"))
///             .with_horizon(6)
///     }))
///     .build();
/// let done = engine.run_to_completion(8)?;
/// for accepted in done.outputs.values() {
///     assert_eq!(accepted.get("payload"), Some(&3), "accepted in round 3");
/// }
/// # Ok::<(), uba_sim::EngineError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ReliableBroadcast<M> {
    me: NodeId,
    sender: NodeId,
    /// `Some(m)` iff this node is the designated sender.
    payload: Option<M>,
    tracker: ParticipantTracker,
    states: BTreeMap<M, MessageState>,
    horizon: Option<u64>,
    done: Option<BTreeMap<M, u64>>,
}

impl<M: Value> ReliableBroadcast<M> {
    /// Creates a node's instance for the broadcast of `payload` by `sender`.
    ///
    /// `payload` must be `Some` exactly when `me == sender` *and* the sender
    /// intends to broadcast (a correct designated sender may also stay
    /// silent, in which case nothing is ever accepted).
    pub fn new(me: NodeId, sender: NodeId, payload: Option<M>) -> Self {
        ReliableBroadcast {
            me,
            sender,
            payload,
            tracker: ParticipantTracker::new(),
            states: BTreeMap::new(),
            horizon: None,
            done: None,
        }
    }

    /// Terminates the process at the given global round, outputting the map
    /// of accepted messages to their acceptance rounds.
    pub fn with_horizon(mut self, round: u64) -> Self {
        self.horizon = Some(round);
        self
    }

    /// Messages accepted so far, with the round each was accepted in.
    pub fn accepted(&self) -> BTreeMap<M, u64> {
        self.states
            .iter()
            .filter_map(|(m, st)| st.accepted_round.map(|r| (m.clone(), r)))
            .collect()
    }

    /// This node's current participant estimate `n_v`.
    pub fn participant_estimate(&self) -> usize {
        self.tracker.n()
    }

    fn state(&mut self, m: &M) -> &mut MessageState {
        self.states.entry(m.clone()).or_default()
    }
}

impl<M: Value> Process for ReliableBroadcast<M> {
    type Msg = RbMsg<M>;
    type Output = BTreeMap<M, u64>;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut Context<'_, RbMsg<M>>) {
        self.tracker.observe_inbox(ctx.inbox());
        let round = ctx.round();
        match round {
            1 => {
                // Round 1: the designated sender broadcasts (m, s); everyone
                // else announces itself so that n_v ≥ g everywhere.
                if self.me == self.sender {
                    if let Some(m) = self.payload.clone() {
                        ctx.broadcast(RbMsg::Payload(m));
                        return;
                    }
                }
                ctx.broadcast(RbMsg::Present);
            }
            2 => {
                // Round 2: echo iff the payload came directly from s —
                // envelope sender ids are unforgeable.
                let direct: Vec<M> = ctx
                    .inbox()
                    .iter()
                    .filter(|e| e.from == self.sender)
                    .filter_map(|e| match e.msg() {
                        RbMsg::Payload(m) => Some(m.clone()),
                        _ => None,
                    })
                    .collect();
                for m in direct {
                    ctx.broadcast(RbMsg::Echo(m));
                }
            }
            _ => {
                // Rounds 3…: count this round's echoes per message value
                // (distinct senders; the engine already dedups exact
                // duplicates per sender per round).
                let n_v = self.tracker.n();
                let mut counts: BTreeMap<M, usize> = BTreeMap::new();
                for e in ctx.inbox() {
                    if let RbMsg::Echo(m) = e.msg() {
                        *counts.entry(m.clone()).or_insert(0) += 1;
                    }
                }
                for (m, count) in counts {
                    let accepted = self.state(&m).accepted_round.is_some();
                    if accepted {
                        continue;
                    }
                    if meets_third(count, n_v) {
                        ctx.broadcast(RbMsg::Echo(m.clone()));
                    }
                    if meets_two_thirds(count, n_v) {
                        self.state(&m).accepted_round = Some(round);
                    }
                }
            }
        }
        if self.horizon == Some(round) {
            self.done = Some(self.accepted());
        }
    }

    fn output(&self) -> Option<BTreeMap<M, u64>> {
        self.done.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_sim::{sparse_ids, SyncEngine};

    fn run(n: usize, seed: u64) -> BTreeMap<NodeId, BTreeMap<&'static str, u64>> {
        let ids = sparse_ids(n, seed);
        let sender = ids[0];
        let mut engine = SyncEngine::builder()
            .correct_many(ids.iter().map(|&id| {
                ReliableBroadcast::new(id, sender, (id == sender).then_some("m")).with_horizon(6)
            }))
            .build();
        engine.run_to_completion(8).expect("completes").outputs
    }

    #[test]
    fn correct_sender_accepted_by_all_in_round_three() {
        for n in [1, 2, 4, 7, 10] {
            let outputs = run(n, 7);
            assert_eq!(outputs.len(), n);
            for accepted in outputs.values() {
                assert_eq!(accepted.get("m"), Some(&3), "n = {n}");
            }
        }
    }

    #[test]
    fn silent_sender_accepts_nothing() {
        let ids = sparse_ids(4, 3);
        let sender = ids[1];
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .map(|&id| ReliableBroadcast::<&str>::new(id, sender, None).with_horizon(6)),
            )
            .build();
        let done = engine.run_to_completion(8).expect("completes");
        for accepted in done.outputs.values() {
            assert!(accepted.is_empty());
        }
    }

    #[test]
    fn participant_estimate_reaches_group_size() {
        let ids = sparse_ids(5, 11);
        let sender = ids[0];
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .map(|&id| ReliableBroadcast::new(id, sender, (id == sender).then_some(1u8))),
            )
            .build();
        engine.run_rounds(3);
        for &id in &ids {
            assert_eq!(engine.process(id).unwrap().participant_estimate(), 5);
        }
    }
}
