//! Total ordering of events in a dynamic network — Algorithm 6 of the paper.
//!
//! Nodes enter and leave the system (subject to `n > 3f` holding at every
//! round) and must maintain a common, growing total order over the events
//! they witness. The algorithm starts one [parallel-consensus
//! wave](crate::parallel) per round `r`, tagged with `r` and run *with
//! respect to* the membership snapshot `S` taken when the wave starts; a
//! round `r'` becomes **final** once `r - r' > 5·|S^{r'}|/2 + 2` (enough
//! rounds for the wave's consensus to have terminated everywhere), and the
//! chain output is the concatenation of the outputs of all final waves in
//! wave order. The two guarantees (for `n > 3f` in every round):
//!
//! - **Chain-prefix** — the chains of any two correct nodes are prefixes of
//!   one another;
//! - **Chain-growth** — the chain keeps growing while correct nodes submit
//!   events.
//!
//! ## Joining and leaving
//!
//! A joining node broadcasts `present`; every member replies `(ack, r)` with
//! its current round, and the joiner adopts the majority round (correct
//! members all agree on it) and initializes `S` to the ack senders. Nodes
//! announce departure with `absent` and keep participating in outstanding
//! waves until those terminate. Two nodes joining in the same round also
//! record each other's `present` while still in the join phase — without
//! this, simultaneous joiners would permanently miss each other (see
//! DESIGN.md interpretation notes).

use std::collections::{BTreeMap, BTreeSet};

use uba_sim::{Context, Envelope, NodeId, Process};

use crate::parallel::{ParMsg, ParallelConsensusCore};
use crate::value::Value;

/// Messages of the total-ordering protocol.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum OrderMsg<V> {
    /// A node announces that it wants to participate.
    Present,
    /// A member replies to `present` with its current round.
    Ack(u64),
    /// A node announces departure.
    Absent,
    /// `(m, r)` — an event `m` witnessed in round `r`.
    Event(V, u64),
    /// A message of the parallel-consensus wave started in the given round.
    Wave(u64, ParMsg<NodeId, V>),
}

/// One ordered event of the output chain.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OrderedEvent<V> {
    /// The wave (round) that agreed on the event.
    pub wave: u64,
    /// The node that submitted the event (the instance identifier).
    pub origin: NodeId,
    /// The event value.
    pub value: V,
}

/// The totally ordered chain of events.
pub type Chain<V> = Vec<OrderedEvent<V>>;

/// One in-flight wave: a parallel-consensus core plus its local clock.
#[derive(Clone, Debug)]
struct WaveState<V> {
    core: ParallelConsensusCore<NodeId, V>,
    local_round: u64,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Mode {
    /// A founding member: starts its loop immediately with `r = 0`, `S = {v}`.
    Genesis,
    /// Join protocol: `present` broadcast pending.
    JoinAnnounce,
    /// Join protocol: `present` sent, acks are in flight.
    JoinWait,
    /// In the main loop.
    Running,
    /// `absent` announced; finishing outstanding waves.
    Leaving,
    /// All outstanding waves finished after leaving (or horizon reached).
    Done,
}

/// One node's state machine for Algorithm 6.
///
/// The protocol itself never terminates (chains grow forever); for use with
/// [`run_to_completion`](uba_sim::SyncEngine::run_to_completion) configure
/// either a [horizon](TotalOrdering::with_horizon) or a
/// [departure](TotalOrdering::with_leave_at), at which point the process
/// outputs its final chain. The growing chain is available at any time via
/// [`chain`](TotalOrdering::chain).
///
/// # Examples
///
/// ```
/// use uba_core::ordering::TotalOrdering;
/// use uba_sim::{sparse_ids, SyncEngine};
///
/// let ids = sparse_ids(4, 4);
/// let mut engine = SyncEngine::builder()
///     .correct_many(ids.iter().map(|&id| {
///         TotalOrdering::genesis(id)
///             .with_events([(2, format!("event-from-{id}"))])
///             .with_horizon(40)
///     }))
///     .build();
/// let done = engine.run_to_completion(45)?;
/// let chains: Vec<_> = done.outputs.values().cloned().collect();
/// assert!(chains.iter().all(|c| c == &chains[0]), "identical chains");
/// assert_eq!(chains[0].len(), 4, "all four events ordered");
/// # Ok::<(), uba_sim::EngineError>(())
/// ```
#[derive(Clone, Debug)]
pub struct TotalOrdering<V> {
    me: NodeId,
    mode: Mode,
    /// Current loop round `r` (synchronized across correct nodes).
    r: u64,
    /// Current membership estimate `S`.
    s: BTreeSet<NodeId>,
    /// Events this node will witness, keyed by the loop round they occur in.
    events: BTreeMap<u64, V>,
    /// In-flight waves keyed by wave number.
    waves: BTreeMap<u64, WaveState<V>>,
    /// Outputs of terminated waves.
    results: BTreeMap<u64, BTreeMap<NodeId, V>>,
    /// `|S|` snapshot of every wave this node started (for the finality rule).
    s_sizes: BTreeMap<u64, usize>,
    /// Terminate and output the chain at this loop round.
    horizon: Option<u64>,
    /// Announce departure at this loop round.
    leave_at: Option<u64>,
    done: Option<Chain<V>>,
}

impl<V: Value> TotalOrdering<V> {
    /// Creates a founding member (starts at round 0 with `S = {me}`).
    pub fn genesis(me: NodeId) -> Self {
        TotalOrdering {
            me,
            mode: Mode::Genesis,
            r: 0,
            s: BTreeSet::from([me]),
            events: BTreeMap::new(),
            waves: BTreeMap::new(),
            results: BTreeMap::new(),
            s_sizes: BTreeMap::new(),
            horizon: None,
            leave_at: None,
            done: None,
        }
    }

    /// Creates a node that joins a running system: it announces itself with
    /// `present` and synchronizes its round from the members' acks.
    pub fn joining(me: NodeId) -> Self {
        let mut node = Self::genesis(me);
        node.mode = Mode::JoinAnnounce;
        node
    }

    /// Schedules the events this node witnesses, keyed by loop round.
    /// Events scheduled for rounds before the node has joined are dropped.
    pub fn with_events<I: IntoIterator<Item = (u64, V)>>(mut self, events: I) -> Self {
        self.events.extend(events);
        self
    }

    /// Enqueues an event while the process is already running, scheduling
    /// it for the first free round after the current one (each loop round
    /// broadcasts at most one event per node). Returns the scheduled round,
    /// or `None` once the process has terminated and can order nothing
    /// more. This is the live-submission path of the `uba-net` log service:
    /// `with_events` declares a workload up front, `enqueue_event` feeds
    /// one in mid-run.
    pub fn enqueue_event(&mut self, value: V) -> Option<u64> {
        if self.mode == Mode::Done {
            return None;
        }
        let mut round = self.r + 1;
        while self.events.contains_key(&round) {
            round += 1;
        }
        self.events.insert(round, value);
        Some(round)
    }

    /// Terminates the process at the given loop round, outputting the chain.
    pub fn with_horizon(mut self, round: u64) -> Self {
        self.horizon = Some(round);
        self
    }

    /// Announces departure (`absent`) at the given loop round; the process
    /// keeps participating in outstanding waves, then terminates with its
    /// final chain.
    pub fn with_leave_at(mut self, round: u64) -> Self {
        self.leave_at = Some(round);
        self
    }

    /// The node's current loop round.
    pub fn round(&self) -> u64 {
        self.r
    }

    /// The node's current membership estimate `S`.
    pub fn members(&self) -> &BTreeSet<NodeId> {
        &self.s
    }

    /// The largest round `R` such that every round this node participated
    /// in up to `R` is final. A node that joined late only reports waves
    /// from its own first wave on — it has no way to reconstruct earlier
    /// history (its chain is suffix-consistent with older members' chains).
    pub fn finality_round(&self) -> u64 {
        let Some((&first_wave, _)) = self.s_sizes.first_key_value() else {
            return 0;
        };
        let mut r_final = first_wave - 1;
        for (&w, &s_size) in &self.s_sizes {
            if w != r_final + 1 {
                break;
            }
            // r - w > 5·s/2 + 2  ⟺  2(r - w) > 5s + 4; additionally the
            // wave's consensus must actually have terminated (it always has
            // by this time when n > 3f — see the paper's proof).
            let time_ok = 2 * self.r.saturating_sub(w) > 5 * s_size as u64 + 4;
            if time_ok && self.results.contains_key(&w) {
                r_final = w;
            } else {
                break;
            }
        }
        r_final
    }

    /// The current chain: the outputs of all final waves, in wave order,
    /// events within a wave ordered by origin id.
    pub fn chain(&self) -> Chain<V> {
        let r_final = self.finality_round();
        let mut chain = Vec::new();
        for (&w, outputs) in self.results.range(..=r_final) {
            for (&origin, value) in outputs {
                chain.push(OrderedEvent {
                    wave: w,
                    origin,
                    value: value.clone(),
                });
            }
        }
        chain
    }

    /// Processes membership announcements and returns the events received
    /// this round, keyed by origin.
    fn process_announcements(
        &mut self,
        inbox: &[Envelope<OrderMsg<V>>],
        ctx: &mut Context<'_, OrderMsg<V>>,
    ) -> BTreeMap<NodeId, V> {
        let mut events: BTreeMap<NodeId, V> = BTreeMap::new();
        for env in inbox {
            match env.msg() {
                OrderMsg::Present => {
                    self.s.insert(env.from);
                    ctx.send(env.from, OrderMsg::Ack(self.r));
                }
                OrderMsg::Absent => {
                    self.s.remove(&env.from);
                }
                OrderMsg::Event(m, round) if *round + 1 == self.r && self.s.contains(&env.from) => {
                    // Deterministic pick if an equivocating origin sends
                    // several events in one round.
                    events
                        .entry(env.from)
                        .and_modify(|v| {
                            if m < v {
                                *v = m.clone();
                            }
                        })
                        .or_insert_with(|| m.clone());
                }
                _ => {}
            }
        }
        events
    }

    /// Steps every in-flight wave with its share of this round's inbox.
    fn step_waves(&mut self, inbox: &[Envelope<OrderMsg<V>>], ctx: &mut Context<'_, OrderMsg<V>>) {
        let mut per_wave: BTreeMap<u64, Vec<Envelope<ParMsg<NodeId, V>>>> = BTreeMap::new();
        for env in inbox {
            if let OrderMsg::Wave(w, msg) = env.msg() {
                per_wave
                    .entry(*w)
                    .or_default()
                    .push(Envelope::new(env.from, msg.clone()));
            }
        }
        let mut finished: Vec<u64> = Vec::new();
        for (&w, wave) in self.waves.iter_mut() {
            wave.local_round += 1;
            let wave_inbox = per_wave.remove(&w).unwrap_or_default();
            let mut out = Vec::new();
            wave.core.on_round(wave.local_round, &wave_inbox, &mut out);
            for msg in out {
                ctx.broadcast(OrderMsg::Wave(w, msg));
            }
            if let Some(result) = wave.core.output() {
                self.results.insert(w, result.clone());
                finished.push(w);
            }
        }
        for w in finished {
            self.waves.remove(&w);
        }
    }

    /// One main-loop iteration (everything after the join protocol).
    fn loop_round(&mut self, ctx: &mut Context<'_, OrderMsg<V>>) {
        self.r += 1;
        let inbox: Vec<Envelope<OrderMsg<V>>> = ctx.inbox().to_vec();
        let leaving_now = self.mode == Mode::Running && self.leave_at == Some(self.r);

        let event_inputs = if self.mode == Mode::Running {
            self.process_announcements(&inbox, ctx)
        } else {
            BTreeMap::new()
        };

        if leaving_now {
            ctx.broadcast(OrderMsg::Absent);
            self.mode = Mode::Leaving;
        }

        if self.mode == Mode::Running {
            // Witness this round's event, if any.
            if let Some(m) = self.events.remove(&self.r) {
                ctx.broadcast(OrderMsg::Event(m, self.r));
            }
            // Start wave r with the events received this round, with respect
            // to the current S.
            let core =
                ParallelConsensusCore::new(self.me, event_inputs).restrict_to(self.s.clone());
            self.waves.insert(
                self.r,
                WaveState {
                    core,
                    local_round: 0,
                },
            );
            self.s_sizes.insert(self.r, self.s.len());
        }

        self.step_waves(&inbox, ctx);

        if self.mode == Mode::Leaving && self.waves.is_empty() {
            self.done = Some(self.chain());
            self.mode = Mode::Done;
        }
        if self.mode != Mode::Done && self.horizon == Some(self.r) {
            self.done = Some(self.chain());
            self.mode = Mode::Done;
        }
    }
}

impl<V: Value> Process for TotalOrdering<V> {
    type Msg = OrderMsg<V>;
    type Output = Chain<V>;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut Context<'_, OrderMsg<V>>) {
        match self.mode {
            Mode::Genesis => {
                // Founders announce themselves so everyone discovers
                // everyone in the first loop round.
                ctx.broadcast(OrderMsg::Present);
                self.mode = Mode::Running;
                self.loop_round(ctx);
            }
            Mode::JoinAnnounce => {
                ctx.broadcast(OrderMsg::Present);
                self.mode = Mode::JoinWait;
            }
            Mode::JoinWait => {
                // Acks are in flight; record other joiners' presents so that
                // simultaneous joiners know each other.
                for env in ctx.inbox() {
                    if matches!(env.msg(), OrderMsg::Present) {
                        self.s.insert(env.from);
                    }
                }
                let acks: Vec<(NodeId, u64)> = ctx
                    .inbox()
                    .iter()
                    .filter_map(|e| match *e.msg() {
                        OrderMsg::Ack(t) => Some((e.from, t)),
                        _ => None,
                    })
                    .collect();
                if !acks.is_empty() {
                    // Majority round among the acks (ties toward smaller).
                    let mut tallies: BTreeMap<u64, usize> = BTreeMap::new();
                    for (_, t) in &acks {
                        *tallies.entry(*t).or_insert(0) += 1;
                    }
                    let (&r0, _) = tallies
                        .iter()
                        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                        .expect("non-empty ack tally");
                    self.r = r0 + 1;
                    for (from, _) in acks {
                        self.s.insert(from);
                    }
                    self.mode = Mode::Running;
                }
            }
            Mode::Running | Mode::Leaving => self.loop_round(ctx),
            Mode::Done => {}
        }
    }

    fn output(&self) -> Option<Chain<V>> {
        self.done.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_sim::{sparse_ids, ChurnSchedule, SyncEngine};

    fn assert_prefix<V: PartialEq + std::fmt::Debug>(a: &[V], b: &[V]) {
        let k = a.len().min(b.len());
        assert_eq!(&a[..k], &b[..k], "chain-prefix violated");
    }

    #[test]
    fn static_membership_orders_all_events_identically() {
        let ids = sparse_ids(4, 15);
        let mut engine = SyncEngine::builder()
            .correct_many(ids.iter().enumerate().map(|(i, &id)| {
                TotalOrdering::genesis(id)
                    .with_events([(2 + i as u64, i as u64)])
                    .with_horizon(50)
            }))
            .build();
        let done = engine.run_to_completion(55).expect("horizon reached");
        let chains: Vec<Chain<u64>> = done.outputs.values().cloned().collect();
        for c in &chains {
            assert_eq!(c, &chains[0]);
        }
        assert_eq!(chains[0].len(), 4, "all events final: {:?}", chains[0]);
        // Events were witnessed in rounds 2..=5, so they land in waves 3..=6
        // in that order.
        let waves: Vec<u64> = chains[0].iter().map(|e| e.wave).collect();
        assert_eq!(waves, vec![3, 4, 5, 6]);
    }

    #[test]
    fn chains_grow_over_time() {
        let ids = sparse_ids(3, 7);
        let mut engine = SyncEngine::builder()
            .correct_many(ids.iter().map(|&id| {
                TotalOrdering::genesis(id)
                    .with_events((2..20).map(|r| (r, r)))
                    .with_horizon(60)
            }))
            .build();
        let mut lengths = Vec::new();
        for _ in 0..6 {
            engine.run_rounds(10);
            let chain = engine
                .process(ids[0])
                .map(|p| p.chain())
                .unwrap_or_default();
            lengths.push(chain.len());
        }
        assert!(lengths.windows(2).all(|w| w[0] <= w[1]));
        assert!(*lengths.last().unwrap() > 0, "chain-growth: {lengths:?}");
    }

    #[test]
    fn live_enqueued_events_are_ordered_on_every_chain() {
        let ids = sparse_ids(3, 21);
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .map(|&id| TotalOrdering::genesis(id).with_horizon(60)),
            )
            .build();
        engine.run_rounds(10);
        // A submission arriving mid-run lands in the first free round after
        // the node's current one; two submissions to the same node take
        // consecutive slots.
        let node = engine.process_mut(ids[0]).expect("node present");
        let first = node.enqueue_event(501).expect("still running");
        let second = node.enqueue_event(502).expect("still running");
        assert!(first > node.round());
        assert_eq!(second, first + 1);
        let done = engine.run_to_completion(70).expect("horizon reached");
        let chains: Vec<Chain<u64>> = done.outputs.values().cloned().collect();
        for c in &chains {
            assert_eq!(c, &chains[0]);
        }
        let values: Vec<u64> = chains[0].iter().map(|e| e.value).collect();
        assert_eq!(values, vec![501, 502], "live events ordered in slot order");
    }

    #[test]
    fn enqueue_after_termination_is_rejected() {
        let ids = sparse_ids(3, 5);
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .map(|&id| TotalOrdering::genesis(id).with_horizon(8)),
            )
            .build();
        engine.run_to_completion(12).expect("horizon reached");
        let node = engine.process_mut(ids[0]).expect("node present");
        assert_eq!(node.enqueue_event(1), None, "done process orders nothing");
    }

    #[test]
    fn same_round_events_are_ordered_by_origin() {
        let ids = sparse_ids(4, 33);
        let mut engine = SyncEngine::builder()
            .correct_many(ids.iter().enumerate().map(|(i, &id)| {
                TotalOrdering::genesis(id)
                    .with_events([(3, 100 + i as u64)])
                    .with_horizon(45)
            }))
            .build();
        let done = engine.run_to_completion(50).expect("horizon");
        let chain = done.outputs.values().next().unwrap().clone();
        assert_eq!(chain.len(), 4);
        assert!(chain.iter().all(|e| e.wave == 4));
        let origins: Vec<NodeId> = chain.iter().map(|e| e.origin).collect();
        assert_eq!(origins, ids, "tie-break by ascending origin id");
    }

    #[test]
    fn joining_node_synchronizes_round_and_participates() {
        let ids = sparse_ids(5, 91);
        let joiner = ids[4];
        let mut churn: ChurnSchedule<TotalOrdering<u64>> = ChurnSchedule::new();
        churn.join_correct(
            5,
            TotalOrdering::joining(joiner)
                .with_events([(12, 777u64)])
                .with_horizon(70),
        );
        let mut engine = SyncEngine::builder()
            .correct_many(ids[..4].iter().map(|&id| {
                TotalOrdering::genesis(id)
                    .with_events([(3, id.raw() % 100)])
                    .with_horizon(70)
            }))
            .churn(churn)
            .build();
        let done = engine.run_to_completion(75).expect("horizon");
        // All founding members output identical chains.
        let member_chains: Vec<&Chain<u64>> = ids[..4].iter().map(|id| &done.outputs[id]).collect();
        for c in &member_chains {
            assert_eq!(*c, member_chains[0], "chain agreement among members");
        }
        assert!(
            member_chains[0].iter().any(|e| e.value == 777),
            "the joiner's event was ordered: {:?}",
            member_chains[0]
        );
        // The joiner reports exactly the suffix of the common chain starting
        // at its own first wave (it cannot reconstruct earlier history).
        let joiner_chain = &done.outputs[&joiner];
        assert!(!joiner_chain.is_empty(), "joiner orders post-join events");
        let first_wave = joiner_chain[0].wave;
        let expected_suffix: Chain<u64> = member_chains[0]
            .iter()
            .filter(|e| e.wave >= first_wave)
            .cloned()
            .collect();
        assert_eq!(joiner_chain, &expected_suffix, "suffix-consistency");
    }

    #[test]
    fn leaving_node_finishes_outstanding_waves() {
        let ids = sparse_ids(4, 55);
        let leaver = ids[0];
        let mut engine = SyncEngine::builder()
            .correct_many(ids.iter().map(|&id| {
                let node = TotalOrdering::genesis(id).with_events([(2, id.raw() % 10)]);
                if id == leaver {
                    node.with_leave_at(10)
                } else {
                    node.with_horizon(60)
                }
            }))
            .build();
        let done = engine.run_to_completion(65).expect("completes");
        let leaver_chain = &done.outputs[&leaver];
        for (&id, chain) in &done.outputs {
            if id != leaver {
                assert_prefix(leaver_chain, chain);
                assert_eq!(chain.len(), 4, "stayers order all events");
            }
        }
    }

    #[test]
    fn finality_round_is_zero_before_any_wave() {
        let node: TotalOrdering<u64> = TotalOrdering::genesis(NodeId::new(1));
        assert_eq!(node.finality_round(), 0);
    }
}
