//! Approximate agreement — Algorithm 4 of the paper.
//!
//! Each correct node inputs a real number and outputs a real number such
//! that, for `n > 3f`:
//!
//! 1. every output lies within the range of correct inputs, and
//! 2. the output range is at most **half** the input range.
//!
//! One iteration: broadcast your value (including to yourself), collect the
//! multiset `R_v` of received values, discard the `⌊n_v/3⌋` smallest and
//! `⌊n_v/3⌋` largest, and output the midpoint of the remaining extremes.
//! Unlike the classic Dolev et al. protocol, the number of discarded values
//! is `⌊n_v/3⌋` — a function of the node's own participant estimate — rather
//! than the globally known `f`.
//!
//! [`ApproxAgreement`] runs a configurable number of pipelined iterations
//! (each one engine round after the first): the paper's §Dynamic networks
//! observes that the same algorithm keeps halving the correct range when run
//! repeatedly, even under churn, so the iterated form doubles as the dynamic
//! variant.

use std::collections::BTreeMap;

use uba_sim::{Context, NodeId, Process};

use crate::value::OrderedF64;

/// The number of iterations needed to shrink an initial spread of at most
/// `initial_range` below `epsilon`, given the per-iteration halving
/// guarantee.
///
/// Nodes cannot *measure* the global range in the id-only model, but a
/// caller that knows an a-priori bound on the inputs (e.g. sensor readings
/// in a known interval) can plan the iteration count up front — this is how
/// ε-agreement is obtained from the paper's one-shot algorithm.
///
/// # Examples
///
/// ```
/// use uba_core::approx::iterations_for;
/// assert_eq!(iterations_for(10.0, 1.0), 4);  // 10 → 5 → 2.5 → 1.25 → 0.625
/// assert_eq!(iterations_for(1.0, 1.0), 1);   // equal spread still needs one shot
/// assert_eq!(iterations_for(0.5, 1.0), 1);
/// ```
///
/// # Panics
///
/// Panics if `epsilon` is not strictly positive or either argument is NaN.
pub fn iterations_for(initial_range: f64, epsilon: f64) -> u64 {
    assert!(
        epsilon > 0.0 && !initial_range.is_nan(),
        "epsilon must be positive and the range must not be NaN"
    );
    let mut iterations = 1;
    let mut range = initial_range / 2.0;
    while range >= epsilon {
        range /= 2.0;
        iterations += 1;
    }
    iterations
}

/// One node's state machine for (iterated) approximate agreement.
///
/// # Examples
///
/// ```
/// use uba_core::approx::ApproxAgreement;
/// use uba_sim::{sparse_ids, SyncEngine};
///
/// let ids = sparse_ids(4, 3);
/// let inputs = [0.0, 1.0, 2.0, 10.0];
/// let mut engine = SyncEngine::builder()
///     .correct_many(
///         ids.iter()
///             .zip(inputs)
///             .map(|(&id, x)| ApproxAgreement::new(id, x)),
///     )
///     .build();
/// let done = engine.run_to_completion(3)?;
/// let outputs: Vec<f64> = done.outputs.values().copied().collect();
/// let spread = outputs.iter().cloned().fold(f64::MIN, f64::max)
///     - outputs.iter().cloned().fold(f64::MAX, f64::min);
/// assert!(spread <= 5.0, "range at most halved: {spread}");
/// assert!(outputs.iter().all(|&o| (0.0..=10.0).contains(&o)), "within input range");
/// # Ok::<(), uba_sim::EngineError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ApproxAgreement {
    me: NodeId,
    current: OrderedF64,
    iterations: u64,
    /// Local round counter (1-based), so that nodes joining a dynamic run
    /// mid-way behave like fresh nodes.
    local_round: u64,
    /// When set, only values from these peers are used (the paper's
    /// Discussion: a new node can run the algorithm with only a subset of
    /// nodes to get closer to the value of most of the nodes).
    peers: Option<std::collections::BTreeSet<NodeId>>,
    history: Vec<f64>,
    done: Option<f64>,
}

impl ApproxAgreement {
    /// Creates a node with real-valued input `input` running one iteration.
    ///
    /// # Panics
    ///
    /// Panics if `input` is NaN.
    pub fn new(me: NodeId, input: f64) -> Self {
        ApproxAgreement {
            me,
            current: OrderedF64::new(input).expect("approximate agreement input must not be NaN"),
            iterations: 1,
            local_round: 0,
            peers: None,
            history: vec![input],
            done: None,
        }
    }

    /// Restricts the values used in updates to the given peer subset (the
    /// paper's Discussion-section observation: a joining node can approach
    /// the network's value by talking to a subset of nodes only, as long as
    /// that subset itself satisfies `n > 3f`).
    pub fn with_peers<I: IntoIterator<Item = NodeId>>(mut self, peers: I) -> Self {
        self.peers = Some(peers.into_iter().collect());
        self
    }

    /// Sets the number of iterations (default 1). Each extra iteration
    /// halves the achievable output range again and costs one extra round.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is 0.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        assert!(iterations > 0, "at least one iteration is required");
        self.iterations = iterations;
        self
    }

    /// The node's current estimate.
    pub fn current(&self) -> f64 {
        self.current.get()
    }

    /// The estimate after each completed iteration, starting with the input.
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// One update step: keep one value per distinct sender, discard the
    /// `⌊n_v/3⌋` extremes on each side, return the midpoint of the rest.
    fn update(&self, received: &BTreeMap<NodeId, OrderedF64>) -> OrderedF64 {
        if received.is_empty() {
            return self.current;
        }
        let mut values: Vec<OrderedF64> = received.values().copied().collect();
        values.sort_unstable();
        let n_v = values.len();
        let k = n_v / 3;
        let kept = &values[k..n_v - k];
        debug_assert!(!kept.is_empty(), "⌊n/3⌋ trimming always leaves a value");
        let lo = kept.first().expect("non-empty").get();
        let hi = kept.last().expect("non-empty").get();
        OrderedF64::new((lo + hi) / 2.0).expect("midpoint of non-NaN values")
    }
}

impl Process for ApproxAgreement {
    type Msg = OrderedF64;
    type Output = f64;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut Context<'_, OrderedF64>) {
        self.local_round += 1;
        let r = self.local_round;
        if r > 1 {
            // One value per distinct sender; a Byzantine sender that sends
            // several values in one round is pinned to its smallest for
            // determinism.
            let mut received: BTreeMap<NodeId, OrderedF64> = BTreeMap::new();
            for env in ctx.inbox() {
                if let Some(peers) = &self.peers {
                    if !peers.contains(&env.from) {
                        continue;
                    }
                }
                received
                    .entry(env.from)
                    .and_modify(|v| *v = (*v).min(*env.msg()))
                    .or_insert(*env.msg());
            }
            self.current = self.update(&received);
            self.history.push(self.current.get());
        }
        if r <= self.iterations {
            ctx.broadcast(self.current);
        } else {
            self.done = Some(self.current.get());
        }
    }

    fn output(&self) -> Option<f64> {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_sim::{sparse_ids, SyncEngine};

    fn run(inputs: &[f64], iterations: u64, seed: u64) -> Vec<f64> {
        let ids = sparse_ids(inputs.len(), seed);
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .zip(inputs)
                    .map(|(&id, &x)| ApproxAgreement::new(id, x).with_iterations(iterations)),
            )
            .build();
        engine
            .run_to_completion(iterations + 2)
            .expect("terminates after iterations + 1 rounds")
            .outputs
            .values()
            .copied()
            .collect()
    }

    fn range(values: &[f64]) -> f64 {
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    }

    #[test]
    fn outputs_stay_within_input_range() {
        let inputs = [3.0, -1.0, 0.5, 7.25, 2.0];
        let outputs = run(&inputs, 1, 5);
        for &o in &outputs {
            assert!((-1.0..=7.25).contains(&o));
        }
    }

    #[test]
    fn one_iteration_halves_the_range() {
        let inputs = [0.0, 4.0, 8.0, 16.0];
        let outputs = run(&inputs, 1, 9);
        assert!(range(&outputs) <= range(&inputs) / 2.0 + 1e-12);
    }

    #[test]
    fn k_iterations_contract_geometrically() {
        let inputs = [0.0, 1.0, 2.0, 3.0, 4.0, 50.0];
        for k in 1..=6 {
            let outputs = run(&inputs, k, 13);
            assert!(
                range(&outputs) <= range(&inputs) / 2f64.powi(k as i32) + 1e-9,
                "k = {k}: {:?}",
                outputs
            );
        }
    }

    #[test]
    fn unanimous_inputs_are_fixed_point() {
        let outputs = run(&[5.5; 4], 3, 2);
        assert!(outputs.iter().all(|&o| o == 5.5));
    }

    #[test]
    fn single_node_keeps_its_value() {
        let outputs = run(&[1.25], 2, 3);
        assert_eq!(outputs, vec![1.25]);
    }

    #[test]
    fn byzantine_extremes_are_discarded() {
        use uba_sim::{AdversaryOutbox, AdversaryView, FnAdversary, NodeId};
        let ids = sparse_ids(4, 7);
        let inputs = [1.0, 2.0, 3.0, 4.0];
        let adv = FnAdversary::new(
            |view: &AdversaryView<'_, OrderedF64>, out: &mut AdversaryOutbox<OrderedF64>| {
                for &b in view.faulty.iter() {
                    out.broadcast(b, OrderedF64::new(1e12).unwrap());
                }
            },
        );
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .zip(inputs)
                    .map(|(&id, x)| ApproxAgreement::new(id, x).with_iterations(2)),
            )
            .faulty(NodeId::new(424242))
            .adversary(adv)
            .build();
        let done = engine.run_to_completion(5).expect("terminates");
        for (&id, &o) in &done.outputs {
            assert!(
                (1.0..=4.0).contains(&o),
                "node {id} output {o} escaped the correct range"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_input_is_rejected() {
        let _ = ApproxAgreement::new(NodeId::new(1), f64::NAN);
    }

    #[test]
    fn iterations_for_reaches_epsilon() {
        for (range, eps) in [(10.0, 1.0), (100.0, 0.01), (1.0, 0.5), (3.0, 3.0)] {
            let k = iterations_for(range, eps);
            assert!(
                range / 2f64.powi(k as i32) < eps,
                "range {range}, eps {eps}"
            );
            if k > 1 {
                assert!(
                    range / 2f64.powi(k as i32 - 1) >= eps,
                    "not minimal: range {range}, eps {eps}"
                );
            }
        }
    }

    #[test]
    fn planned_iterations_deliver_epsilon_agreement() {
        // Plan with the a-priori bound, then verify the actual outputs.
        let bound = 50.0;
        let eps = 0.125;
        let k = iterations_for(bound, eps);
        let inputs = [0.0, 17.5, 42.0, 50.0, 3.25];
        let outputs = run(&inputs, k, 77);
        assert!(range(&outputs) < eps, "spread {} ≥ {eps}", range(&outputs));
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn iterations_for_rejects_zero_epsilon() {
        let _ = iterations_for(1.0, 0.0);
    }

    #[test]
    fn subset_peers_pull_a_joiner_toward_the_subset() {
        // The Discussion-section scenario: five settled nodes hold values
        // near 4.0; a newcomer with value 100 runs the algorithm restricted
        // to three of them and lands inside the subset's range.
        let ids = sparse_ids(6, 8);
        let settled = [3.9, 4.0, 4.1, 4.0, 3.95];
        let newcomer = ids[5];
        let subset: Vec<_> = ids[..3].to_vec();
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids[..5]
                    .iter()
                    .zip(settled)
                    .map(|(&id, x)| ApproxAgreement::new(id, x).with_iterations(2)),
            )
            .correct(
                ApproxAgreement::new(newcomer, 100.0)
                    .with_iterations(2)
                    .with_peers(subset),
            )
            .build();
        let done = engine.run_to_completion(5).expect("terminates");
        let joiner_value = done.outputs[&newcomer];
        assert!(
            (3.9..=4.1).contains(&joiner_value),
            "newcomer converged to {joiner_value}"
        );
    }

    #[test]
    fn history_records_each_iteration() {
        let ids = sparse_ids(2, 4);
        let mut engine = SyncEngine::builder()
            .correct_many([
                ApproxAgreement::new(ids[0], 0.0).with_iterations(3),
                ApproxAgreement::new(ids[1], 8.0).with_iterations(3),
            ])
            .build();
        engine.run_rounds(4);
        let h = engine.process(ids[0]).unwrap().history();
        assert_eq!(h.len(), 4, "input + 3 iterations");
        assert_eq!(h[0], 0.0);
        assert_eq!(h[1], 4.0, "midpoint of {{0, 8}}");
    }
}
