//! Vector consensus (interactive consistency) in the *id-only* model — a
//! composition of the paper's primitives.
//!
//! Every correct node contributes one value and all correct nodes must
//! agree on a **common vector** mapping contributor ids to values, with
//! every correct node's own value guaranteed to appear. With known `n` and
//! `f` this is the classic interactive-consistency problem; here it
//! composes two of the paper's building blocks:
//!
//! 1. a **dissemination round**: every node broadcasts its contribution;
//!    sender ids are unforgeable, so every correct node receives the same
//!    authenticated pair `(id, value)` from every correct contributor;
//! 2. **[parallel consensus](crate::parallel)** over the received pairs:
//!    correct contributions are unanimous inputs (validity keeps them);
//!    pairs equivocated by Byzantine contributors fall under agreement —
//!    a common value is adopted or the entry is dropped, identically
//!    everywhere.
//!
//! This is one of the "an algorithm using a combination of the discussed
//! primitives could be compiled to work without the knowledge of `n` and
//! `f`" compositions suggested in the paper's Discussion section.

use std::collections::BTreeMap;

use uba_sim::{Context, Envelope, NodeId, Process};

use crate::parallel::{ParMsg, ParallelConsensusCore};
use crate::value::Value;

/// Messages of vector consensus: one dissemination broadcast, then the
/// embedded parallel-consensus traffic.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum VcMsg<V> {
    /// A node's contribution (round 1).
    Contribute(V),
    /// Embedded parallel-consensus message.
    Par(ParMsg<NodeId, V>),
}

/// One node's state machine for vector consensus.
///
/// # Examples
///
/// ```
/// use uba_core::vector::VectorConsensus;
/// use uba_sim::{sparse_ids, SyncEngine};
///
/// let ids = sparse_ids(4, 44);
/// let mut engine = SyncEngine::builder()
///     .correct_many(ids.iter().enumerate().map(|(i, &id)| {
///         VectorConsensus::new(id, 100 + i as u64)
///     }))
///     .build();
/// let done = engine.run_to_completion(15)?;
/// for (id, vector) in &done.outputs {
///     assert_eq!(vector.len(), 4, "all four contributions present");
///     assert_eq!(vector[id], 100 + ids.iter().position(|x| x == id).unwrap() as u64);
/// }
/// # Ok::<(), uba_sim::EngineError>(())
/// ```
#[derive(Clone, Debug)]
pub struct VectorConsensus<V> {
    me: NodeId,
    value: V,
    core: Option<ParallelConsensusCore<NodeId, V>>,
}

impl<V: Value> VectorConsensus<V> {
    /// Creates a node contributing `value` under its own identifier.
    pub fn new(me: NodeId, value: V) -> Self {
        VectorConsensus {
            me,
            value,
            core: None,
        }
    }

    /// The agreed vector entries decided so far.
    pub fn partial_vector(&self) -> BTreeMap<NodeId, V> {
        self.core
            .as_ref()
            .map(|core| {
                core.finished_instances()
                    .iter()
                    .filter_map(|(id, v)| v.clone().map(|x| (*id, x)))
                    .collect()
            })
            .unwrap_or_default()
    }
}

impl<V: Value> Process for VectorConsensus<V> {
    type Msg = VcMsg<V>;
    type Output = BTreeMap<NodeId, V>;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        if ctx.round() == 1 {
            ctx.broadcast(VcMsg::Contribute(self.value.clone()));
            return;
        }
        if ctx.round() == 2 {
            // Collect the authenticated contributions; an equivocating
            // sender is pinned to its smallest value deterministically (a
            // second value sent to other nodes is resolved by agreement).
            let mut pairs: BTreeMap<NodeId, V> = BTreeMap::new();
            for env in ctx.inbox() {
                if let VcMsg::Contribute(v) = env.msg() {
                    pairs
                        .entry(env.from)
                        .and_modify(|cur| {
                            if v < cur {
                                *cur = v.clone();
                            }
                        })
                        .or_insert_with(|| v.clone());
                }
            }
            self.core = Some(ParallelConsensusCore::new(self.me, pairs));
        }
        let core = self.core.as_mut().expect("initialized in round 2");
        let inner_inbox: Vec<Envelope<ParMsg<NodeId, V>>> = ctx
            .inbox()
            .iter()
            .filter_map(|e| match e.msg() {
                VcMsg::Par(m) => Some(Envelope::new(e.from, m.clone())),
                _ => None,
            })
            .collect();
        let mut out = Vec::new();
        core.on_round(ctx.round() - 1, &inner_inbox, &mut out);
        for msg in out {
            ctx.broadcast(VcMsg::Par(msg));
        }
    }

    fn output(&self) -> Option<BTreeMap<NodeId, V>> {
        self.core.as_ref().and_then(|c| c.output()).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use uba_sim::{sparse_ids, SyncEngine};

    #[test]
    fn all_correct_contributions_are_in_every_vector() {
        for n in [1usize, 3, 6, 10] {
            let ids = sparse_ids(n, n as u64);
            let mut engine = SyncEngine::builder()
                .correct_many(
                    ids.iter()
                        .enumerate()
                        .map(|(i, &id)| VectorConsensus::new(id, i as u64)),
                )
                .build();
            let done = engine.run_to_completion(60).expect("terminates");
            for vector in done.outputs.values() {
                assert_eq!(vector.len(), n);
                for (i, id) in ids.iter().enumerate() {
                    assert_eq!(vector.get(id), Some(&(i as u64)), "n = {n}");
                }
            }
        }
    }

    #[test]
    fn byzantine_contributor_appears_consistently_or_not_at_all() {
        use uba_sim::{AdversaryOutbox, AdversaryView, FnAdversary, NodeId};
        type M = VcMsg<u64>;
        let ids = sparse_ids(7, 3);
        let byz = NodeId::new(77);
        // The Byzantine contributor equivocates its entry per recipient and
        // also participates in initialization so it is counted everywhere.
        let adv = FnAdversary::new(
            move |view: &AdversaryView<'_, M>, out: &mut AdversaryOutbox<M>| match view.round {
                1 => {
                    for (i, &to) in view.correct.iter().enumerate() {
                        out.send(byz, to, VcMsg::Contribute(1000 + i as u64));
                    }
                }
                2 => out.broadcast(byz, VcMsg::Par(ParMsg::RotorInit)),
                _ => {}
            },
        );
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .enumerate()
                    .map(|(i, &id)| VectorConsensus::new(id, i as u64)),
            )
            .faulty(byz)
            .adversary(adv)
            .build();
        let done = engine.run_to_completion(100).expect("terminates");
        let vectors: BTreeSet<_> = done.outputs.values().cloned().collect();
        assert_eq!(vectors.len(), 1, "agreement on the vector");
        let vector = vectors.into_iter().next().unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(vector.get(id), Some(&(i as u64)), "correct entries kept");
        }
        // The Byzantine entry may be present (some agreed value) or absent —
        // both satisfy interactive consistency; agreement was asserted above.
    }

    #[test]
    fn partial_vector_grows_monotonically() {
        let ids = sparse_ids(4, 9);
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .enumerate()
                    .map(|(i, &id)| VectorConsensus::new(id, i as u64)),
            )
            .build();
        let mut last = 0;
        for _ in 0..10 {
            engine.run_round();
            if let Some(p) = engine.process(ids[0]) {
                let now = p.partial_vector().len();
                assert!(now >= last);
                last = now;
            }
        }
    }
}
