//! Byzantine renaming — the appendix extension of the paper.
//!
//! Nodes have unique but arbitrarily large identifiers; the task is to
//! consistently assign every correct node a small identifier (at most the
//! number of participating nodes). The paper's algorithm accumulates all
//! announced identifiers into a set `S` in reliable-broadcast fashion,
//! detects quiescence (two consecutive rounds with `S` unchanged), agrees on
//! termination — again with `n_v/3` / `2n_v/3` thresholds — and outputs each
//! identifier's rank in the final, common `S`. Termination takes `O(f)`
//! rounds: every faulty identifier can delay quiescence by at most two
//! rounds.

use std::collections::{BTreeMap, BTreeSet};

use uba_sim::{Context, NodeId, Process};

use crate::quorum::{meets_third, meets_two_thirds};
use crate::tracker::ParticipantTracker;

/// Messages of the renaming protocol.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum RenameMsg {
    /// A node announces its identifier (round 1).
    Init,
    /// `echo(p)` — support for adding `p` to the identifier set.
    Echo(NodeId),
    /// `terminate(k)` — the sender believes `S` was quiescent by round `k`.
    Terminate(u64),
}

/// Result of a renaming run at one node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RenamingOutcome {
    /// The final identifier set `S`, mapping every member to its 1-based
    /// rank — the new compact identifier.
    pub ranks: BTreeMap<NodeId, usize>,
    /// This node's new identifier (its rank in `S`).
    pub my_rank: usize,
    /// The round in which this node terminated.
    pub round: u64,
}

/// One node's state machine for Byzantine renaming.
///
/// # Examples
///
/// ```
/// use uba_core::renaming::Renaming;
/// use uba_sim::{sparse_ids, SyncEngine};
///
/// let ids = sparse_ids(4, 19);
/// let mut engine = SyncEngine::builder()
///     .correct_many(ids.iter().map(|&id| Renaming::new(id)))
///     .build();
/// let done = engine.run_to_completion(20)?;
/// for (&id, outcome) in &done.outputs {
///     // Sparse 64-bit ids were renamed to 1..=4, consistently.
///     assert!(outcome.my_rank >= 1 && outcome.my_rank <= 4);
///     assert_eq!(outcome.ranks[&id], outcome.my_rank);
/// }
/// # Ok::<(), uba_sim::EngineError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Renaming {
    me: NodeId,
    tracker: ParticipantTracker,
    /// The identifier set `S`.
    s: BTreeSet<NodeId>,
    /// Last round in which `S` changed.
    last_change: u64,
    /// `terminate(k)` values already relayed (sent at most once each).
    relayed: BTreeSet<u64>,
    done: Option<RenamingOutcome>,
}

impl Renaming {
    /// Creates a node's renaming instance.
    pub fn new(me: NodeId) -> Self {
        Renaming {
            me,
            tracker: ParticipantTracker::new(),
            s: BTreeSet::new(),
            last_change: 0,
            relayed: BTreeSet::new(),
            done: None,
        }
    }

    /// The identifier set accumulated so far.
    pub fn current_set(&self) -> &BTreeSet<NodeId> {
        &self.s
    }

    fn outcome(&self, round: u64) -> RenamingOutcome {
        let ranks: BTreeMap<NodeId, usize> = self
            .s
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i + 1))
            .collect();
        let my_rank = ranks.get(&self.me).copied().unwrap_or(0);
        RenamingOutcome {
            ranks,
            my_rank,
            round,
        }
    }
}

impl Process for Renaming {
    type Msg = RenameMsg;
    type Output = RenamingOutcome;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut Context<'_, RenameMsg>) {
        self.tracker.observe_inbox(ctx.inbox());
        let round = ctx.round();
        match round {
            1 => ctx.broadcast(RenameMsg::Init),
            2 => {
                let initiators: BTreeSet<NodeId> = ctx
                    .inbox()
                    .iter()
                    .filter(|e| matches!(e.msg(), RenameMsg::Init))
                    .map(|e| e.from)
                    .collect();
                for p in initiators {
                    ctx.broadcast(RenameMsg::Echo(p));
                }
            }
            _ => {
                let n_v = self.tracker.n();
                // Per-round echo support per identifier.
                let mut echo_support: BTreeMap<NodeId, usize> = BTreeMap::new();
                let mut term_support: BTreeMap<u64, usize> = BTreeMap::new();
                for e in ctx.inbox() {
                    match *e.msg() {
                        RenameMsg::Echo(p) => *echo_support.entry(p).or_insert(0) += 1,
                        RenameMsg::Terminate(k) => *term_support.entry(k).or_insert(0) += 1,
                        RenameMsg::Init => {}
                    }
                }
                let mut outgoing: Vec<RenameMsg> = Vec::new();
                for (p, count) in echo_support {
                    if self.s.contains(&p) {
                        continue;
                    }
                    if meets_third(count, n_v) {
                        outgoing.push(RenameMsg::Echo(p));
                    }
                    if meets_two_thirds(count, n_v) {
                        self.s.insert(p);
                        self.last_change = round;
                    }
                }
                // Quiescence: S unchanged in rounds r and r - 1 (only
                // meaningful once S could have been populated).
                if round >= 5 && self.last_change <= round - 2 && self.relayed.insert(round - 1) {
                    outgoing.push(RenameMsg::Terminate(round - 1));
                }
                for (k, count) in term_support {
                    if meets_third(count, n_v) && self.relayed.insert(k) {
                        outgoing.push(RenameMsg::Terminate(k));
                    }
                    if meets_two_thirds(count, n_v) && self.done.is_none() {
                        self.done = Some(self.outcome(round));
                    }
                }
                for msg in outgoing {
                    ctx.broadcast(msg);
                }
            }
        }
    }

    fn output(&self) -> Option<RenamingOutcome> {
        self.done.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_sim::{sparse_ids, SyncEngine};

    fn run(n: usize, seed: u64) -> BTreeMap<NodeId, RenamingOutcome> {
        let ids = sparse_ids(n, seed);
        let mut engine = SyncEngine::builder()
            .correct_many(ids.iter().map(|&id| Renaming::new(id)))
            .build();
        engine
            .run_to_completion(4 * n as u64 + 20)
            .expect("renaming terminates")
            .outputs
    }

    #[test]
    fn ranks_are_compact_and_consistent() {
        for n in [2, 4, 9] {
            let outputs = run(n, 77);
            let first = outputs.values().next().unwrap();
            let mut seen_ranks = BTreeSet::new();
            for (&id, outcome) in &outputs {
                assert_eq!(outcome.ranks, first.ranks, "common final S (n = {n})");
                assert_eq!(outcome.ranks[&id], outcome.my_rank);
                assert!(outcome.my_rank >= 1 && outcome.my_rank <= n);
                assert!(seen_ranks.insert(outcome.my_rank), "ranks are unique");
            }
        }
    }

    #[test]
    fn ranks_follow_identifier_order() {
        let outputs = run(5, 31);
        let mut ids: Vec<NodeId> = outputs.keys().copied().collect();
        ids.sort_unstable();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(outputs[id].my_rank, i + 1);
        }
    }

    #[test]
    fn all_nodes_terminate_within_one_round_of_each_other() {
        let outputs = run(6, 3);
        let rounds: BTreeSet<u64> = outputs.values().map(|o| o.round).collect();
        let min = rounds.iter().min().unwrap();
        let max = rounds.iter().max().unwrap();
        assert!(max - min <= 1, "termination rounds: {rounds:?}");
    }
}
