//! Projections of the paper's algorithms onto the trace vocabulary.
//!
//! The engine's observe hook ([`uba_sim::EngineBuilder::observe`]) takes a
//! function from a process to a [`NodeSnapshot`]; this module provides that
//! projection for each algorithm as an [`Observe`] impl, so harnesses can
//! write `.observe(observe::probe)` and get phase/estimate/`n_v`/decision
//! transitions in the trace without per-experiment plumbing.
//!
//! Snapshots deliberately render values through `Debug`: the trace layer
//! is below the algorithms and must not know their value types.

use uba_sim::{NodeSnapshot, Process};

use crate::approx::ApproxAgreement;
use crate::consensus::EarlyConsensus;
use crate::reliable::ReliableBroadcast;
use crate::rotor::RotorCoordinator;
use crate::value::Value;

/// An algorithm that can report its state as a [`NodeSnapshot`].
///
/// Implementations fill whatever fields make sense for the protocol; the
/// engine diffs consecutive snapshots and emits
/// [`TraceEvent::NodeState`](uba_sim::TraceEvent::NodeState) on change.
pub trait Observe: Process {
    /// The node's current observable state.
    fn snapshot(&self) -> NodeSnapshot;
}

/// Free-function form of [`Observe::snapshot`], shaped for
/// [`uba_sim::EngineBuilder::observe`]:
///
/// ```
/// use uba_core::consensus::EarlyConsensus;
/// use uba_core::observe;
/// use uba_sim::{sparse_ids, SyncEngine};
///
/// let ids = sparse_ids(4, 42);
/// let engine = SyncEngine::builder()
///     .correct_many(ids.iter().map(|&id| EarlyConsensus::new(id, 1u64)))
///     .observe(observe::probe)
///     .build();
/// # let _ = engine;
/// ```
pub fn probe<P: Observe>(process: &P) -> NodeSnapshot {
    process.snapshot()
}

impl<V: Value> Observe for EarlyConsensus<V> {
    fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            phase: Some(self.phases_executed()),
            estimate: Some(format!("{:?}", self.current_opinion())),
            n_v: self.frozen_estimate().map(|n| n as u64),
            decided: self.output().map(|o| format!("{o:?}")),
        }
    }
}

impl Observe for ApproxAgreement {
    fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            phase: Some(self.history().len() as u64),
            estimate: Some(format!("{:?}", self.current())),
            n_v: None,
            decided: self.output().map(|o| format!("{o:?}")),
        }
    }
}

impl<M: Value> Observe for ReliableBroadcast<M> {
    fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            phase: None,
            estimate: Some(format!("{:?}", self.accepted())),
            n_v: Some(self.participant_estimate() as u64),
            decided: self.output().map(|o| format!("{o:?}")),
        }
    }
}

impl<V: Value> Observe for RotorCoordinator<V> {
    fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            phase: Some(self.selections().len() as u64),
            estimate: Some(format!("{:?}", self.selections())),
            n_v: Some(self.candidates().len() as u64),
            decided: self.output().map(|o| format!("{o:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_sim::{sparse_ids, SyncEngine, TraceEvent};
    use uba_trace::{RingTracer, SharedTracer};

    #[test]
    fn consensus_snapshot_reports_phase_estimate_and_decision() {
        let ids = sparse_ids(4, 7);
        let p = EarlyConsensus::new(ids[0], 3u64);
        let snap = p.snapshot();
        assert_eq!(snap.phase, Some(0));
        assert_eq!(snap.estimate.as_deref(), Some("3"));
        assert_eq!(snap.n_v, None, "membership not frozen yet");
        assert_eq!(snap.decided, None);
    }

    #[test]
    fn traced_consensus_run_records_decision_transitions() {
        let ids = sparse_ids(4, 7);
        let handle = SharedTracer::new(RingTracer::new(65536));
        let mut engine = SyncEngine::builder()
            .correct_many(ids.iter().map(|&id| EarlyConsensus::new(id, 1u64)))
            .tracer(handle.clone())
            .observe(probe)
            .build();
        engine.run_to_completion(50).expect("completes");
        handle.with(|ring| {
            assert_eq!(ring.dropped(), 0);
            let decisions: Vec<u64> = ring
                .events()
                .filter_map(|e| match e {
                    TraceEvent::NodeState { node, state, .. } if state.decided.is_some() => {
                        Some(*node)
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(decisions.len(), ids.len(), "each node decides exactly once");
            let n_v_seen = ring
                .events()
                .any(|e| matches!(e, TraceEvent::NodeState { state, .. } if state.n_v.is_some()));
            assert!(
                n_v_seen,
                "the frozen participant estimate reaches the trace"
            );
        });
    }
}
