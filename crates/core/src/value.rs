//! The bound satisfied by values the agreement algorithms operate on.

use std::fmt::Debug;
use std::hash::Hash;

/// Values that can be carried by agreement messages.
///
/// `Ord` powers deterministic tie-breaking and candidate ordering, `Eq +
/// Hash` powers tallying and the engine's duplicate suppression, and `Clone`
/// powers broadcast fan-out. Blanket-implemented for any suitable type
/// (integers, strings, byte vectors, `OrderedF64`…).
pub trait Value: Clone + Eq + Ord + Hash + Debug + 'static {}

impl<T: Clone + Eq + Ord + Hash + Debug + 'static> Value for T {}

/// A totally ordered `f64` for real-valued agreement (approximate agreement
/// inputs, real-valued consensus opinions).
///
/// NaN is rejected at construction, which makes the total order sound.
///
/// # Examples
///
/// ```
/// use uba_core::OrderedF64;
///
/// let a = OrderedF64::new(1.5).unwrap();
/// let b = OrderedF64::new(2.5).unwrap();
/// assert!(a < b);
/// assert_eq!(a.get() + 1.0, b.get());
/// assert!(OrderedF64::new(f64::NAN).is_none());
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a non-NaN float; returns `None` for NaN.
    pub fn new(value: f64) -> Option<Self> {
        (!value.is_nan()).then_some(OrderedF64(value))
    }

    /// The wrapped float.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("NaN is rejected at construction")
    }
}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl std::fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_on_non_nan() {
        let mut v = vec![
            OrderedF64::new(3.0).unwrap(),
            OrderedF64::new(-1.0).unwrap(),
            OrderedF64::new(0.5).unwrap(),
        ];
        v.sort();
        let raw: Vec<f64> = v.into_iter().map(OrderedF64::get).collect();
        assert_eq!(raw, vec![-1.0, 0.5, 3.0]);
    }

    #[test]
    fn nan_is_rejected() {
        assert!(OrderedF64::new(f64::NAN).is_none());
    }

    #[test]
    fn hash_distinguishes_values() {
        use std::collections::HashSet;
        let set: HashSet<OrderedF64> = [0.0, 1.0, 2.0]
            .into_iter()
            .map(|x| OrderedF64::new(x).unwrap())
            .collect();
        assert_eq!(set.len(), 3);
    }
}
