//! Rotor-coordinator — Algorithm 2 of the paper.
//!
//! The rotor-coordinator makes every correct node accept the opinion of a
//! *common* coordinator in each of a sequence of rounds, such that before
//! any correct node terminates, at least one of those rounds was **good**:
//! the common coordinator was correct. With known `f` and consecutive
//! identifiers this is trivial (rotate through ids `1..=f+1`); with unknown
//! `n`, `f` and sparse identifiers it is the paper's key technical device.
//!
//! Every node reliably-broadcast-accepts candidate coordinators into an
//! ordered set `C_v`, selects `C_v[r mod |C_v|]` in loop round `r`, and
//! terminates when it would select the same node twice. Theorem `rc`: for
//! `n > 3f` every correct node terminates in `O(n)` rounds and witnesses a
//! good round first.
//!
//! [`RotorCore`] implements the candidate bookkeeping and selection rule in
//! a timing-agnostic way so that the consensus algorithms can embed one
//! rotor step per 5-round phase; [`RotorCoordinator`] is the standalone
//! process with one rotor step per engine round.

use std::collections::{BTreeMap, BTreeSet};

use uba_sim::{Context, NodeId, Process};

use crate::quorum::{meets_third, meets_two_thirds};
use crate::tracker::ParticipantTracker;
use crate::value::Value;

/// Messages of the standalone rotor-coordinator protocol.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum RotorMsg<V> {
    /// Willingness to become a coordinator (round 1).
    Init,
    /// `echo(p)` — support for adding `p` to the candidate set (reliable
    /// broadcast of the candidate id).
    Echo(NodeId),
    /// The current coordinator's opinion.
    Opinion(V),
}

/// Result of one logical rotor round ([`RotorCore::step`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RotorStep {
    /// Candidate ids whose echo reached `n_v/3` support and must be
    /// re-echoed this round (the `B_v` echoes). Empty when terminating —
    /// the paper's `break` exits before `B_v` is broadcast.
    pub re_echo: Vec<NodeId>,
    /// The coordinator selected this round, if any. On termination this is
    /// the node that was about to be *reselected*.
    pub coordinator: Option<NodeId>,
    /// Whether the rotor terminated this round (a coordinator was selected
    /// for the second time).
    pub terminated: bool,
}

/// Timing-agnostic rotor state: candidate set `C_v`, selected set `S_v`,
/// loop counter `r`, and the termination rule.
///
/// The caller feeds each logical rotor round the per-candidate echo support
/// observed since the previous one and its participant estimate `n_v`. This
/// is what lets the consensus algorithms advance the rotor one step per
/// 5-round phase.
///
/// # Examples
///
/// ```
/// use std::collections::BTreeMap;
/// use uba_core::rotor::RotorCore;
/// use uba_sim::NodeId;
///
/// let (a, b) = (NodeId::new(1), NodeId::new(2));
/// let mut rotor = RotorCore::new();
/// // Both candidates reach a 2n/3 echo quorum (n = 3) in the first step.
/// let step = rotor.step(3, &BTreeMap::from([(a, 2), (b, 2)]));
/// assert_eq!(step.coordinator, Some(a));
/// assert_eq!(rotor.step(3, &BTreeMap::new()).coordinator, Some(b));
/// // Reselecting `a` terminates the rotor.
/// assert!(rotor.step(3, &BTreeMap::new()).terminated);
/// ```
#[derive(Clone, Debug)]
pub struct RotorCore {
    candidates: BTreeSet<NodeId>,
    selected: BTreeSet<NodeId>,
    step_index: u64,
    terminated: bool,
    selection_log: Vec<NodeId>,
}

impl RotorCore {
    /// Creates an empty rotor state.
    pub fn new() -> Self {
        RotorCore {
            candidates: BTreeSet::new(),
            selected: BTreeSet::new(),
            step_index: 0,
            terminated: false,
            selection_log: Vec::new(),
        }
    }

    /// The candidate set `C_v`, ordered by id.
    pub fn candidates(&self) -> &BTreeSet<NodeId> {
        &self.candidates
    }

    /// The coordinators selected so far, in selection order.
    pub fn selection_log(&self) -> &[NodeId] {
        &self.selection_log
    }

    /// Whether the rotor has terminated (reselection happened).
    pub fn terminated(&self) -> bool {
        self.terminated
    }

    /// Executes one logical rotor round.
    ///
    /// `n` is the node's current participant estimate and `echo_support`
    /// maps each candidate id to the number of *distinct* nodes whose
    /// `echo(p)` was received since the previous step.
    pub fn step(&mut self, n: usize, echo_support: &BTreeMap<NodeId, usize>) -> RotorStep {
        if self.terminated {
            return RotorStep {
                re_echo: Vec::new(),
                coordinator: None,
                terminated: true,
            };
        }
        let mut re_echo = Vec::new();
        for (&p, &count) in echo_support {
            if self.candidates.contains(&p) {
                continue;
            }
            if meets_third(count, n) {
                re_echo.push(p);
            }
            if meets_two_thirds(count, n) {
                self.candidates.insert(p);
            }
        }

        let coordinator = if self.candidates.is_empty() {
            None
        } else {
            let idx = (self.step_index % self.candidates.len() as u64) as usize;
            self.candidates.iter().nth(idx).copied()
        };
        self.step_index += 1;

        if let Some(p) = coordinator {
            if self.selected.contains(&p) {
                // Reselection: the paper's `break` — terminate without
                // broadcasting this round's B_v.
                self.terminated = true;
                return RotorStep {
                    re_echo: Vec::new(),
                    coordinator: Some(p),
                    terminated: true,
                };
            }
            self.selected.insert(p);
            self.selection_log.push(p);
        }
        RotorStep {
            re_echo,
            coordinator,
            terminated: false,
        }
    }
}

impl Default for RotorCore {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of a standalone rotor-coordinator run at one node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RotorOutcome<V> {
    /// `(global round, coordinator)` for every selection this node made.
    pub selections: Vec<(u64, NodeId)>,
    /// `(global round, coordinator, opinion)` for every coordinator opinion
    /// this node accepted.
    pub accepted_opinions: Vec<(u64, NodeId, V)>,
    /// Round in which this node terminated.
    pub terminated_round: u64,
}

/// The standalone rotor-coordinator process (one rotor round per engine
/// round).
///
/// Each node contributes a fixed opinion (its input); whenever a node finds
/// itself selected it broadcasts that opinion, and every node accepts the
/// opinion arriving from the coordinator it selected in the previous round.
///
/// # Examples
///
/// ```
/// use uba_core::rotor::RotorCoordinator;
/// use uba_sim::{sparse_ids, SyncEngine};
///
/// let ids = sparse_ids(4, 5);
/// let mut engine = SyncEngine::builder()
///     .correct_many(ids.iter().map(|&id| RotorCoordinator::new(id, id.raw())))
///     .build();
/// let done = engine.run_to_completion(16)?;
/// // All-correct system: every node accepted the same first coordinator.
/// let firsts: Vec<_> = done
///     .outputs
///     .values()
///     .map(|o| o.accepted_opinions.first().cloned())
///     .collect();
/// assert!(firsts.windows(2).all(|w| w[0] == w[1]));
/// # Ok::<(), uba_sim::EngineError>(())
/// ```
#[derive(Clone, Debug)]
pub struct RotorCoordinator<V> {
    me: NodeId,
    opinion: V,
    tracker: ParticipantTracker,
    core: RotorCore,
    /// Coordinator selected in the previous round (opinions arriving now
    /// are matched against it).
    prev_coordinator: Option<NodeId>,
    selections: Vec<(u64, NodeId)>,
    accepted_opinions: Vec<(u64, NodeId, V)>,
    done: Option<RotorOutcome<V>>,
}

impl<V: Value> RotorCoordinator<V> {
    /// Creates a node with the given fixed opinion.
    pub fn new(me: NodeId, opinion: V) -> Self {
        RotorCoordinator {
            me,
            opinion,
            tracker: ParticipantTracker::new(),
            core: RotorCore::new(),
            prev_coordinator: None,
            selections: Vec::new(),
            accepted_opinions: Vec::new(),
            done: None,
        }
    }

    /// The candidate set accumulated so far (`C_v`).
    pub fn candidates(&self) -> &BTreeSet<NodeId> {
        self.core.candidates()
    }

    /// Selections made so far.
    pub fn selections(&self) -> &[(u64, NodeId)] {
        &self.selections
    }
}

impl<V: Value> Process for RotorCoordinator<V> {
    type Msg = RotorMsg<V>;
    type Output = RotorOutcome<V>;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut Context<'_, RotorMsg<V>>) {
        self.tracker.observe_inbox(ctx.inbox());
        let round = ctx.round();
        match round {
            1 => ctx.broadcast(RotorMsg::Init),
            2 => {
                let initiators: BTreeSet<NodeId> = ctx
                    .inbox()
                    .iter()
                    .filter(|e| matches!(e.msg(), RotorMsg::Init))
                    .map(|e| e.from)
                    .collect();
                for p in initiators {
                    ctx.broadcast(RotorMsg::Echo(p));
                }
            }
            _ => {
                // Opinion from the previous round's coordinator (checked
                // against the unforgeable envelope sender).
                if let Some(prev) = self.prev_coordinator {
                    let mut opinions: Vec<&V> = ctx
                        .inbox()
                        .iter()
                        .filter(|e| e.from == prev)
                        .filter_map(|e| match e.msg() {
                            RotorMsg::Opinion(x) => Some(x),
                            _ => None,
                        })
                        .collect();
                    // A Byzantine coordinator may send several distinct
                    // opinions in one round; pick deterministically.
                    opinions.sort();
                    if let Some(x) = opinions.first() {
                        self.accepted_opinions.push((round, prev, (*x).clone()));
                    }
                }

                // Per-round echo support per candidate (distinct senders —
                // the engine dedups exact duplicates per sender).
                let mut support: BTreeMap<NodeId, usize> = BTreeMap::new();
                for e in ctx.inbox() {
                    if let &RotorMsg::Echo(p) = e.msg() {
                        *support.entry(p).or_insert(0) += 1;
                    }
                }
                let step = self.core.step(self.tracker.n(), &support);
                if step.terminated {
                    self.done = Some(RotorOutcome {
                        selections: self.selections.clone(),
                        accepted_opinions: self.accepted_opinions.clone(),
                        terminated_round: round,
                    });
                    return;
                }
                for p in &step.re_echo {
                    ctx.broadcast(RotorMsg::Echo(*p));
                }
                if let Some(p) = step.coordinator {
                    self.selections.push((round, p));
                    if p == self.me {
                        ctx.broadcast(RotorMsg::Opinion(self.opinion.clone()));
                    }
                }
                self.prev_coordinator = step.coordinator;
            }
        }
    }

    fn output(&self) -> Option<RotorOutcome<V>> {
        self.done.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_sim::{sparse_ids, SyncEngine};

    #[test]
    fn core_adds_candidates_at_two_thirds() {
        let mut core = RotorCore::new();
        let p = NodeId::new(9);
        let support = BTreeMap::from([(p, 2)]);
        // n = 6: 2 meets n/3 (re-echo) but not 2n/3 (no add).
        let step = core.step(6, &support);
        assert_eq!(step.re_echo, vec![p]);
        assert!(core.candidates().is_empty());
        // 4 of 6 meets 2n/3.
        let support = BTreeMap::from([(p, 4)]);
        let step = core.step(6, &support);
        assert!(step.re_echo.contains(&p));
        assert!(core.candidates().contains(&p));
    }

    #[test]
    fn core_selects_round_robin_and_terminates_on_reselect() {
        let mut core = RotorCore::new();
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let support = BTreeMap::from([(a, 3), (b, 3)]);
        let s0 = core.step(3, &support);
        assert_eq!(s0.coordinator, Some(a));
        let s1 = core.step(3, &BTreeMap::new());
        assert_eq!(s1.coordinator, Some(b));
        // r = 2, |C| = 2 -> index 0 -> a again -> terminate.
        let s2 = core.step(3, &BTreeMap::new());
        assert!(s2.terminated);
        assert_eq!(s2.coordinator, Some(a));
        assert_eq!(core.selection_log(), &[a, b]);
        // Subsequent steps are inert.
        let s3 = core.step(3, &BTreeMap::new());
        assert!(s3.terminated);
        assert_eq!(s3.coordinator, None);
    }

    #[test]
    fn core_does_not_echo_known_candidates() {
        let mut core = RotorCore::new();
        let a = NodeId::new(1);
        core.step(3, &BTreeMap::from([(a, 3)]));
        let step = core.step(3, &BTreeMap::from([(a, 3)]));
        assert!(step.re_echo.is_empty(), "a is already a candidate");
    }

    #[test]
    fn all_correct_nodes_select_identically_and_terminate_linearly() {
        for n in [1, 2, 3, 5, 8] {
            let ids = sparse_ids(n, 21);
            let mut engine = SyncEngine::builder()
                .correct_many(ids.iter().map(|&id| RotorCoordinator::new(id, id.raw())))
                .build();
            let done = engine
                .run_to_completion(3 + 2 * n as u64 + 4)
                .unwrap_or_else(|e| panic!("n = {n}: {e}"));
            let mut logs: Vec<Vec<NodeId>> = done
                .outputs
                .values()
                .map(|o| o.selections.iter().map(|(_, p)| *p).collect())
                .collect();
            logs.dedup();
            assert_eq!(logs.len(), 1, "identical selection sequences (n = {n})");
            // With all nodes correct, C_v = all ids after round 3, so the
            // sequence is the ids in ascending order and termination is at
            // round 3 + n.
            assert_eq!(logs[0], ids);
            assert_eq!(done.last_decided_round(), 3 + n as u64);
        }
    }

    #[test]
    fn opinions_of_selected_coordinators_are_accepted_next_round() {
        let ids = sparse_ids(4, 13);
        let mut engine = SyncEngine::builder()
            .correct_many(ids.iter().map(|&id| RotorCoordinator::new(id, id.raw())))
            .build();
        let done = engine.run_to_completion(16).expect("completes");
        for outcome in done.outputs.values() {
            // Coordinators selected in rounds 3..3+n-1; each opinion is
            // accepted exactly one round after the selection, and the last
            // selection's opinion arrives in the termination round.
            assert_eq!(outcome.accepted_opinions.len(), 4);
            for ((sel_round, p), (acc_round, q, opinion)) in
                outcome.selections.iter().zip(&outcome.accepted_opinions)
            {
                assert_eq!(p, q);
                assert_eq!(*acc_round, sel_round + 1);
                assert_eq!(*opinion, p.raw());
            }
        }
    }
}
