//! Terminating reliable broadcast — the appendix extension of the paper.
//!
//! Plain [reliable broadcast](crate::reliable) never terminates: with a
//! faulty designated sender, correct nodes can be left waiting forever.
//! Terminating reliable broadcast additionally guarantees **termination**
//! with a *common* output — either the sender's message or the empty output
//! `⊥` — in `O(f)` rounds.
//!
//! The construction is exactly the paper's: one initial round in which the
//! designated sender broadcasts `(m, s)` and everyone else announces
//! themselves, followed by an execution of the `O(f)`-round
//! [consensus](crate::consensus::EarlyConsensus) where each node's input is
//! the message it received *directly* from the sender (or `⊥`). Correctness
//! and unforgeability follow from consensus validity, relay from consensus
//! agreement.

use uba_sim::{Context, Envelope, NodeId, Outbox, Process};

use crate::consensus::{ConsensusMsg, EarlyConsensus};
use crate::value::Value;

/// Messages of terminating reliable broadcast: the initial round's payload
/// and presence announcements, then embedded consensus messages.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TrbMsg<M> {
    /// The designated sender's message (round 1).
    Payload(M),
    /// Presence announcement of every other node (round 1).
    Init,
    /// A message of the embedded consensus execution.
    Con(ConsensusMsg<Option<M>>),
}

/// One node's state machine for terminating reliable broadcast.
///
/// The output is `Some(m)` when the nodes agree the sender broadcast `m`,
/// and `None` (the empty output `⊥`) when they agree it did not.
///
/// # Examples
///
/// ```
/// use uba_core::trb::TerminatingBroadcast;
/// use uba_sim::{sparse_ids, SyncEngine};
///
/// let ids = sparse_ids(4, 12);
/// let sender = ids[2];
/// let mut engine = SyncEngine::builder()
///     .correct_many(ids.iter().map(|&id| {
///         TerminatingBroadcast::new(id, sender, (id == sender).then_some("payload"))
///     }))
///     .build();
/// let done = engine.run_to_completion(20)?;
/// assert!(done.outputs.values().all(|o| *o == Some("payload")));
/// # Ok::<(), uba_sim::EngineError>(())
/// ```
#[derive(Clone, Debug)]
pub struct TerminatingBroadcast<M> {
    me: NodeId,
    sender: NodeId,
    /// `Some(m)` iff this node is the designated sender and broadcasts `m`.
    payload: Option<M>,
    inner: Option<EarlyConsensus<Option<M>>>,
}

impl<M: Value> TerminatingBroadcast<M> {
    /// Creates a node's instance for the broadcast of `payload` by `sender`.
    pub fn new(me: NodeId, sender: NodeId, payload: Option<M>) -> Self {
        TerminatingBroadcast {
            me,
            sender,
            payload,
            inner: None,
        }
    }

    /// Delegates one round to the embedded consensus, shifting the round
    /// number by the one-round preamble and translating messages.
    fn delegate(&mut self, ctx: &mut Context<'_, TrbMsg<M>>) {
        let inner_round = ctx.round() - 1;
        let inner_inbox: Vec<Envelope<ConsensusMsg<Option<M>>>> = ctx
            .inbox()
            .iter()
            .filter_map(|e| match e.msg() {
                TrbMsg::Con(c) => Some(Envelope::new(e.from, c.clone())),
                _ => None,
            })
            .collect();
        let mut inner_outbox = Outbox::new();
        {
            let mut inner_ctx = Context::new(inner_round, &inner_inbox, &mut inner_outbox);
            self.inner
                .as_mut()
                .expect("inner consensus initialized in round 2")
                .on_round(&mut inner_ctx);
        }
        for out in inner_outbox.drain() {
            match out.dest {
                uba_sim::Dest::Broadcast => ctx.broadcast(TrbMsg::Con(out.msg)),
                uba_sim::Dest::To(to) => ctx.send(to, TrbMsg::Con(out.msg)),
            }
        }
    }
}

impl<M: Value> Process for TerminatingBroadcast<M> {
    type Msg = TrbMsg<M>;
    type Output = Option<M>;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut Context<'_, TrbMsg<M>>) {
        if ctx.round() == 1 {
            if self.me == self.sender {
                if let Some(m) = self.payload.clone() {
                    ctx.broadcast(TrbMsg::Payload(m));
                    return;
                }
            }
            ctx.broadcast(TrbMsg::Init);
            return;
        }
        if ctx.round() == 2 {
            // The consensus input is the message received directly from the
            // sender (`⊥` otherwise); envelope sender ids are unforgeable.
            let mut direct: Vec<&M> = ctx
                .inbox()
                .iter()
                .filter(|e| e.from == self.sender)
                .filter_map(|e| match e.msg() {
                    TrbMsg::Payload(m) => Some(m),
                    _ => None,
                })
                .collect();
            direct.sort();
            let input: Option<M> = direct.first().map(|m| (*m).clone());
            self.inner = Some(EarlyConsensus::new(self.me, input));
        }
        self.delegate(ctx);
    }

    fn output(&self) -> Option<Option<M>> {
        self.inner.as_ref().and_then(|c| c.output())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use uba_sim::{sparse_ids, SyncEngine};

    fn run(n: usize, sender_sends: bool, seed: u64) -> Vec<Option<&'static str>> {
        let ids = sparse_ids(n, seed);
        let sender = ids[0];
        let mut engine = SyncEngine::builder()
            .correct_many(ids.iter().map(|&id| {
                TerminatingBroadcast::new(id, sender, (id == sender && sender_sends).then_some("m"))
            }))
            .build();
        engine
            .run_to_completion(60)
            .expect("terminates")
            .outputs
            .into_values()
            .collect()
    }

    #[test]
    fn correct_sender_message_is_delivered_to_all() {
        for n in [1, 3, 5] {
            let outputs = run(n, true, 9);
            assert!(outputs.iter().all(|o| *o == Some("m")), "n = {n}");
        }
    }

    #[test]
    fn silent_sender_yields_common_empty_output() {
        let outputs = run(4, false, 11);
        assert!(outputs.iter().all(|o| o.is_none()));
    }

    #[test]
    fn equivocating_byzantine_sender_yields_common_output() {
        use uba_sim::{AdversaryOutbox, AdversaryView, FnAdversary};
        type M = TrbMsg<&'static str>;
        let ids = sparse_ids(6, 21);
        let byz_sender = NodeId::new(500);
        // The Byzantine sender tells half the nodes "a" and the rest "b".
        let split: BTreeSet<NodeId> = ids[..3].iter().copied().collect();
        let adv = FnAdversary::new(
            move |view: &AdversaryView<'_, M>, out: &mut AdversaryOutbox<M>| {
                if view.round == 1 {
                    for &to in view.correct.iter() {
                        let m = if split.contains(&to) { "a" } else { "b" };
                        out.send(byz_sender, to, TrbMsg::Payload(m));
                    }
                }
            },
        );
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .map(|&id| TerminatingBroadcast::<&str>::new(id, byz_sender, None)),
            )
            .faulty(byz_sender)
            .adversary(adv)
            .build();
        let done = engine.run_to_completion(80).expect("terminates");
        let distinct: BTreeSet<Option<&str>> = done.outputs.into_values().collect();
        assert_eq!(distinct.len(), 1, "all correct nodes output the same thing");
    }
}
