//! Tracking the participant estimate `n_v`.
//!
//! In the *id-only* model the only way to learn that another node exists is
//! to receive a message from it. Every algorithm in the paper therefore
//! maintains `n_v`: the number of distinct nodes from which node `v` has
//! received at least one message so far. A Byzantine node can make itself
//! known to only a subset of the correct nodes, so `n_v` legitimately
//! differs across correct nodes — the algorithms are exactly the ones that
//! tolerate this inconsistency.

use std::collections::BTreeSet;

use uba_sim::{Envelope, NodeId};

/// Tracks the set of nodes a process has heard from (`n_v`).
///
/// # Examples
///
/// ```
/// use uba_core::ParticipantTracker;
/// use uba_sim::{Envelope, NodeId};
///
/// let mut t = ParticipantTracker::new();
/// t.observe_inbox(&[Envelope::new(NodeId::new(3), "hi"), Envelope::new(NodeId::new(5), "yo")]);
/// t.observe_inbox(&[Envelope::new(NodeId::new(3), "again")]);
/// assert_eq!(t.n(), 2);
/// assert!(t.contains(NodeId::new(5)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParticipantTracker {
    seen: BTreeSet<NodeId>,
}

impl ParticipantTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the senders of a delivered inbox.
    pub fn observe_inbox<M>(&mut self, inbox: &[Envelope<M>]) {
        for env in inbox {
            self.seen.insert(env.from);
        }
    }

    /// Records a single sender.
    pub fn observe(&mut self, id: NodeId) {
        self.seen.insert(id);
    }

    /// The current participant estimate `n_v`.
    pub fn n(&self) -> usize {
        self.seen.len()
    }

    /// Whether `id` has been heard from.
    pub fn contains(&self, id: NodeId) -> bool {
        self.seen.contains(&id)
    }

    /// The tracked identifiers in ascending order.
    pub fn ids(&self) -> &BTreeSet<NodeId> {
        &self.seen
    }

    /// Freezes the current membership into an immutable snapshot, as the
    /// consensus algorithms do after their two initialization rounds
    /// ("later, a node only accepts messages from a node if it counted
    /// towards `n_v` during the initialization").
    pub fn freeze(&self) -> FrozenMembership {
        FrozenMembership {
            members: self.seen.clone(),
        }
    }
}

/// An immutable membership snapshot with its fixed `n_v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenMembership {
    members: BTreeSet<NodeId>,
}

impl FrozenMembership {
    /// Builds a snapshot from an explicit member set (used by protocols that
    /// receive the set from elsewhere, e.g. a total-ordering wave's `S`).
    pub fn from_members(members: BTreeSet<NodeId>) -> Self {
        FrozenMembership { members }
    }

    /// The frozen `n_v`.
    pub fn n(&self) -> usize {
        self.members.len()
    }

    /// Whether `id` was part of the snapshot.
    pub fn contains(&self, id: NodeId) -> bool {
        self.members.contains(&id)
    }

    /// Members in ascending order.
    pub fn members(&self) -> &BTreeSet<NodeId> {
        &self.members
    }

    /// Keeps only the envelopes whose senders are members — the "discard
    /// messages from other nodes" rule of the consensus algorithms.
    pub fn filter_inbox<'a, M>(
        &'a self,
        inbox: &'a [Envelope<M>],
    ) -> impl Iterator<Item = &'a Envelope<M>> {
        inbox.iter().filter(|e| self.members.contains(&e.from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(from: u64, msg: &str) -> Envelope<&str> {
        Envelope::new(NodeId::new(from), msg)
    }

    #[test]
    fn tracker_counts_distinct_senders() {
        let mut t = ParticipantTracker::new();
        t.observe_inbox(&[env(1, "a"), env(2, "b"), env(1, "c")]);
        assert_eq!(t.n(), 2);
        t.observe(NodeId::new(9));
        assert_eq!(t.n(), 3);
    }

    #[test]
    fn freeze_is_immutable_snapshot() {
        let mut t = ParticipantTracker::new();
        t.observe(NodeId::new(1));
        let frozen = t.freeze();
        t.observe(NodeId::new(2));
        assert_eq!(frozen.n(), 1);
        assert_eq!(t.n(), 2);
        assert!(frozen.contains(NodeId::new(1)));
        assert!(!frozen.contains(NodeId::new(2)));
    }

    #[test]
    fn filter_inbox_discards_non_members() {
        let mut t = ParticipantTracker::new();
        t.observe(NodeId::new(1));
        let frozen = t.freeze();
        let inbox = vec![env(1, "in"), env(2, "out")];
        let kept: Vec<_> = frozen.filter_inbox(&inbox).collect();
        assert_eq!(kept.len(), 1);
        assert_eq!(*kept[0].msg(), "in");
    }

    #[test]
    fn from_members_builds_snapshot() {
        let members: BTreeSet<NodeId> = [NodeId::new(4)].into();
        let frozen = FrozenMembership::from_members(members);
        assert_eq!(frozen.n(), 1);
    }
}
