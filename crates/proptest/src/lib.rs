//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! package implements the subset of the proptest 1.x API that the
//! workspace's property tests use:
//!
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! - range strategies over integers and floats (`0u8..16`, `-1.0f64..1.0`,
//!   `a..=b`),
//! - [`collection::vec`] for fixed- and ranged-length vectors,
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Inputs are sampled deterministically: the stream for a test case is a
//! pure function of the test's module path, name and case index, so a
//! failure report ("case k of test t") is reproducible by rerunning the
//! test. Unlike real proptest there is **no shrinking** — the fault-plan
//! shrinker in `uba-bench` covers minimization where it matters for this
//! repository.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner configuration and failure plumbing.
pub mod test_runner {
    use std::fmt;

    /// How many cases each property runs, mirroring upstream's config.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property assertion (from `prop_assert!` and friends).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and primitive strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating test inputs.
    ///
    /// Upstream proptest strategies carry shrinking machinery; this
    /// stand-in only samples.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;
        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// A strategy that always yields clones of one value (upstream `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Strategies for collections.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Admissible lengths for a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange(len..len + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange(range)
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// comes from `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.0.len() <= 1 {
                self.size.0.start
            } else {
                rng.gen_range(self.size.0.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob import the property tests use, mirroring upstream.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
pub fn rng_for_case(test_path: &str, case: u32) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    // FNV-1a over the test path, mixed with the case index, so every test
    // and every case gets an independent deterministic stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::rngs::StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5bd1_e995))
}

/// Defines property tests: each `fn name(arg in strategy, ...)` item becomes
/// a `#[test]` that samples its arguments `cases` times and runs the body.
///
/// # Examples
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for __case in 0..config.cases {
                let mut __rng = $crate::rng_for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)+
                let __inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(&::std::format!(
                            concat!(stringify!($arg), " = {:?}; "),
                            &$arg
                        ));
                    )+
                    s
                };
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    ::std::panic!(
                        "property {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), __case, config.cases, e, __inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Like `assert!` but reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*))
            );
        }
    };
}

/// Like `assert_eq!` but reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, ::std::format!($($fmt)*)
        );
    }};
}

/// Like `assert_ne!` but reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, ::std::format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u8..3, y in 10u64..=20, z in -1.0f64..1.0) {
            prop_assert!(x < 3);
            prop_assert!((10..=20).contains(&y), "y = {}", y);
            prop_assert!((-1.0..1.0).contains(&z));
        }

        #[test]
        fn vectors_have_requested_length(v in crate::collection::vec(0u8..5, 7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let a = (0u64..1_000_000).sample(&mut crate::rng_for_case("t", 3));
        let b = (0u64..1_000_000).sample(&mut crate::rng_for_case("t", 3));
        let c = (0u64..1_000_000).sample(&mut crate::rng_for_case("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn prop_assert_failure_is_reported() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u8..1) {
                prop_assert!(x > 10, "x was {}", x);
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("failed at case 0"), "got: {msg}");
        assert!(msg.contains("x = 0"), "got: {msg}");
    }
}
