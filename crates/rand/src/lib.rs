//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this workspace-local package provides the (small) subset of the rand 0.8
//! API that the workspace actually uses: [`rngs::StdRng`], [`SeedableRng`],
//! and the [`Rng`] extension methods `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is xoshiro256** seeded through a SplitMix64 expansion —
//! statistically solid for simulation workloads and, crucially for this
//! repository, **deterministic**: the same seed always produces the same
//! stream on every platform. The streams do *not* match upstream rand's
//! ChaCha-based `StdRng`; nothing in the workspace depends on specific
//! stream values, only on determinism per seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a `u64`.
///
/// Mirrors the single constructor the workspace uses from upstream
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types over which [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[lo, hi)`; `hi` is exclusive.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws a value in `[lo, hi]`; `hi` is inclusive.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`] (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The raw source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring upstream `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, R2: SampleRange<T>>(&mut self, range: R2) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a `f64` uniform in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample from empty range {lo}..={hi}");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample from empty range {lo}..={hi}");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::SeedableRng;

    /// Deterministic xoshiro256** generator, the stand-in for upstream's
    /// `StdRng`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{Rng, SeedableRng};
    ///
    /// let mut a = StdRng::seed_from_u64(7);
    /// let mut b = StdRng::seed_from_u64(7);
    /// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    /// ```
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state,
            // as recommended by the xoshiro authors.
            let mut z = state;
            let mut next = move || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    /// Alias kept so code written against `rand`'s `small_rng` feature
    /// compiles unchanged.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u8 = rng.gen_range(0u8..3);
            assert!(x < 3);
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let z = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&z));
            let w = rng.gen_range(0..7usize);
            assert!(w < 7);
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn degenerate_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.gen_range(4u64..=4), 4);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(3u32..3);
    }
}
