//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! package provides the API subset the `uba-bench` benchmarks use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis, each benchmark closure is
//! warmed up once and then timed over `sample_size` iterations; the mean is
//! printed as `group/id ... ns/iter`. That is enough to compare the
//! workloads in EXPERIMENTS.md by orders of magnitude, which is all the
//! reproduction targets require (shapes, not absolute timings).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

/// Times one benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Runs `routine` once for warm-up, then `iterations` timed times, and
    /// records the mean duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.mean_ns = Some(start.elapsed().as_nanos() as f64 / self.iterations as f64);
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs (upstream: how
    /// many samples criterion collects).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: self.sample_size,
            mean_ns: None,
        };
        routine(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            mean_ns: None,
        };
        routine(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        match bencher.mean_ns {
            Some(ns) => println!(
                "{}/{}: {:.0} ns/iter ({} iters)",
                self.name, id.label, ns, bencher.iterations
            ),
            None => println!(
                "{}/{}: no measurement (iter was never called)",
                self.name, id.label
            ),
        }
    }

    /// Ends the group (upstream finalizes reports here; a no-op for the
    /// stand-in).
    pub fn finish(self) {}
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: u64,
}

impl Criterion {
    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, routine);
        self
    }
}

/// Bundles benchmark functions into one callable group, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits a `main` that runs the given groups, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs_closures() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(4);
            group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
                b.iter(|| runs += x);
            });
            group.finish();
        }
        // 1 warm-up + 4 timed iterations, each adding 3.
        assert_eq!(runs, 15);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("algo", 7).label, "algo/7");
        assert_eq!(BenchmarkId::from_parameter(9).label, "9");
    }
}
