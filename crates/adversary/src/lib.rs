//! # uba-adversary — Byzantine strategies for the *id-only* model
//!
//! A library of adversary strategies used to exercise the resiliency claims
//! of the algorithms in [`uba_core`]. Two families:
//!
//! - **generic** strategies that work against any protocol message type:
//!   [`ScriptedAdversary`] (announce then go silent — the minimal attack
//!   that still skews every `n_v`), [`MirrorAdversary`] (faulty nodes
//!   impersonate a correct node's behaviour), [`SplitMirrorAdversary`]
//!   (protocol-valid *equivocation*: different halves of the network see
//!   the behaviour of different correct nodes), [`CrashAdversary`] (run the
//!   real protocol, then fail-stop mid-run), and [`NoiseAdversary`]
//!   (randomized garbage at a configurable rate);
//! - **protocol-aware** attacks in [`attacks`]: candidate-set splitting and
//!   fake-candidate injection against the rotor-coordinator, value
//!   equivocation against consensus, extreme-value injection against
//!   approximate agreement.
//!
//! All strategies are deterministic per seed. Every strategy implements
//! [`uba_sim::Adversary`] and can be boxed for runtime selection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uba_sim::{
    Adversary, AdversaryOutbox, AdversaryView, Context, Dest, NodeId, Outbox, Payload, Process,
};

/// Broadcasts a fixed per-round script from every faulty node, and nothing
/// else.
///
/// The most important instance is *announce-then-vanish*: faulty nodes
/// participate in the initialization rounds (so that every correct node
/// counts them towards `n_v`) and then stay silent forever. This is the
/// minimal Byzantine behaviour that already invalidates `n_v` as a
/// consistent system size — precisely the situation the paper's `n_v/3`
/// thresholds must survive.
///
/// # Examples
///
/// ```
/// use uba_adversary::ScriptedAdversary;
/// use uba_core::consensus::ConsensusMsg;
///
/// // Announce during initialization, then vanish.
/// let adv: ScriptedAdversary<ConsensusMsg<u64>> =
///     ScriptedAdversary::new([(1, vec![ConsensusMsg::RotorInit])]);
/// # let _ = adv;
/// ```
#[derive(Debug, Clone)]
pub struct ScriptedAdversary<M> {
    script: BTreeMap<u64, Vec<M>>,
}

impl<M: Payload> ScriptedAdversary<M> {
    /// Creates the strategy from `(round, messages)` pairs.
    pub fn new<I: IntoIterator<Item = (u64, Vec<M>)>>(script: I) -> Self {
        ScriptedAdversary {
            script: script.into_iter().collect(),
        }
    }

    /// Announce with `msg` in round 1, then go silent forever.
    pub fn announce_then_vanish(msg: M) -> Self {
        Self::new([(1, vec![msg])])
    }
}

impl<M: Payload> Adversary<M> for ScriptedAdversary<M> {
    fn act(&mut self, view: &AdversaryView<'_, M>, out: &mut AdversaryOutbox<M>) {
        if let Some(msgs) = self.script.get(&view.round) {
            for &b in view.faulty.iter() {
                for m in msgs {
                    out.broadcast(b, m.clone());
                }
            }
        }
    }
}

/// Every faulty node replays, as its own, the messages the correct node
/// with the smallest id is sending this round (a rushing adversary sees
/// them first).
///
/// Mirrored nodes are indistinguishable from correct ones on the wire; the
/// attack tests that "well-behaved" Byzantine nodes cannot skew agreement
/// toward double-counted values.
#[derive(Debug, Clone, Copy, Default)]
pub struct MirrorAdversary;

impl MirrorAdversary {
    /// Creates the strategy.
    pub fn new() -> Self {
        MirrorAdversary
    }
}

impl<M: Payload> Adversary<M> for MirrorAdversary {
    fn act(&mut self, view: &AdversaryView<'_, M>, out: &mut AdversaryOutbox<M>) {
        let Some(target) = view.correct_traffic.iter().map(|(from, _)| *from).min() else {
            return;
        };
        for &b in view.faulty.iter() {
            for (from, outgoing) in view.correct_traffic {
                if *from != target {
                    continue;
                }
                match outgoing.dest {
                    Dest::Broadcast => out.broadcast(b, outgoing.msg.clone()),
                    Dest::To(t) => out.send(b, t, outgoing.msg.clone()),
                }
            }
        }
    }
}

/// Protocol-valid equivocation: to the lower half of the correct nodes (by
/// id) every faulty node replays the broadcasts of the smallest-id correct
/// node; to the upper half, those of the largest-id correct node.
///
/// Because the replayed traffic is real protocol traffic, this attack
/// produces exactly the "conflicting but plausible" views that the
/// reliable-broadcast echo thresholds and the consensus quorum-intersection
/// lemmas exist to defuse.
#[derive(Debug, Clone, Copy, Default)]
pub struct SplitMirrorAdversary;

impl SplitMirrorAdversary {
    /// Creates the strategy.
    pub fn new() -> Self {
        SplitMirrorAdversary
    }
}

impl<M: Payload> Adversary<M> for SplitMirrorAdversary {
    fn act(&mut self, view: &AdversaryView<'_, M>, out: &mut AdversaryOutbox<M>) {
        let lo_src = view.correct_traffic.iter().map(|(f, _)| *f).min();
        let hi_src = view.correct_traffic.iter().map(|(f, _)| *f).max();
        let (Some(lo_src), Some(hi_src)) = (lo_src, hi_src) else {
            return;
        };
        let correct: Vec<NodeId> = view.correct.iter().copied().collect();
        let half = correct.len() / 2;
        for &b in view.faulty.iter() {
            for (i, &recipient) in correct.iter().enumerate() {
                let src = if i < half { lo_src } else { hi_src };
                for (from, outgoing) in view.correct_traffic {
                    if *from != src {
                        continue;
                    }
                    if let Dest::Broadcast = outgoing.dest {
                        out.send(b, recipient, outgoing.msg.clone());
                    }
                }
            }
        }
    }
}

/// Faulty nodes run the *real* protocol (indistinguishable from correct
/// nodes) and fail-stop at a configured round.
///
/// This is the classic crash-fault injection: the paper's model subsumes
/// crashes, and the agreement properties must hold regardless of when the
/// crashes happen.
pub struct CrashAdversary<P: Process> {
    processes: BTreeMap<NodeId, P>,
    crash_round: u64,
}

impl<P: Process> CrashAdversary<P> {
    /// Creates the strategy from the faulty nodes' protocol instances and
    /// the round in which they all stop.
    pub fn new<I: IntoIterator<Item = P>>(processes: I, crash_round: u64) -> Self {
        CrashAdversary {
            processes: processes.into_iter().map(|p| (p.id(), p)).collect(),
            crash_round,
        }
    }
}

impl<P: Process> std::fmt::Debug for CrashAdversary<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrashAdversary")
            .field("crash_round", &self.crash_round)
            .field("nodes", &self.processes.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl<P: Process> Adversary<P::Msg> for CrashAdversary<P> {
    fn act(&mut self, view: &AdversaryView<'_, P::Msg>, out: &mut AdversaryOutbox<P::Msg>) {
        if view.round >= self.crash_round {
            return;
        }
        for (&id, process) in self.processes.iter_mut() {
            if !view.faulty.contains(&id) {
                continue;
            }
            let inbox = view.inbox_of(id).to_vec();
            let mut outbox = Outbox::new();
            {
                let mut ctx = Context::new(view.round, &inbox, &mut outbox);
                process.on_round(&mut ctx);
            }
            for outgoing in outbox.drain() {
                match outgoing.dest {
                    Dest::Broadcast => out.broadcast(id, outgoing.msg),
                    Dest::To(t) => out.send(id, t, outgoing.msg),
                }
            }
        }
    }
}

/// Replays stale traffic: every faulty node records everything the correct
/// nodes broadcast and re-broadcasts it `lag` rounds later, as its own.
///
/// The model explicitly allows Byzantine nodes to "send duplicate messages
/// across rounds"; replay attacks old quorum evidence at the wrong time —
/// e.g. phase-1 `input` messages during phase 3 of consensus, or stale
/// rotor echoes — and the per-round counting of the algorithms must ignore
/// it.
#[derive(Debug, Clone)]
pub struct ReplayAdversary<M> {
    lag: u64,
    /// Recorded broadcasts by round.
    history: BTreeMap<u64, Vec<M>>,
}

impl<M: Payload> ReplayAdversary<M> {
    /// Creates the strategy replaying traffic `lag ≥ 1` rounds late.
    ///
    /// # Panics
    ///
    /// Panics if `lag` is 0 (that would be mirroring, not replaying).
    pub fn new(lag: u64) -> Self {
        assert!(lag >= 1, "replay lag must be at least 1 round");
        ReplayAdversary {
            lag,
            history: BTreeMap::new(),
        }
    }
}

impl<M: Payload> Adversary<M> for ReplayAdversary<M> {
    fn act(&mut self, view: &AdversaryView<'_, M>, out: &mut AdversaryOutbox<M>) {
        let recorded: Vec<M> = view
            .correct_traffic
            .iter()
            .filter(|(_, o)| matches!(o.dest, Dest::Broadcast))
            .map(|(_, o)| o.msg.clone())
            .collect();
        self.history.insert(view.round, recorded);
        if let Some(stale) = view
            .round
            .checked_sub(self.lag)
            .and_then(|r| self.history.remove(&r))
        {
            for &b in view.faulty.iter() {
                for msg in &stale {
                    out.broadcast(b, msg.clone());
                }
            }
        }
    }
}

/// Randomized garbage: each faulty node broadcasts `per_round` messages
/// drawn from a generator closure every round. Deterministic per seed.
pub struct NoiseAdversary<M, F> {
    generate: F,
    per_round: usize,
    rng: StdRng,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M: Payload, F: FnMut(&mut StdRng, u64) -> M> NoiseAdversary<M, F> {
    /// Creates the strategy with a message generator, a per-node-per-round
    /// message budget, and a seed.
    pub fn new(generate: F, per_round: usize, seed: u64) -> Self {
        NoiseAdversary {
            generate,
            per_round,
            rng: StdRng::seed_from_u64(seed),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M: Payload, F> std::fmt::Debug for NoiseAdversary<M, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NoiseAdversary")
            .field("per_round", &self.per_round)
            .finish_non_exhaustive()
    }
}

impl<M: Payload, F: FnMut(&mut StdRng, u64) -> M> Adversary<M> for NoiseAdversary<M, F> {
    fn act(&mut self, view: &AdversaryView<'_, M>, out: &mut AdversaryOutbox<M>) {
        let faulty: Vec<NodeId> = view.faulty.iter().copied().collect();
        let correct: Vec<NodeId> = view.correct.iter().copied().collect();
        if correct.is_empty() {
            return;
        }
        for &b in &faulty {
            for _ in 0..self.per_round {
                let msg = (self.generate)(&mut self.rng, view.round);
                if self.rng.gen_bool(0.5) {
                    out.broadcast(b, msg);
                } else {
                    let to = correct[self.rng.gen_range(0..correct.len())];
                    out.send(b, to, msg);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_core::consensus::{ConsensusMsg, EarlyConsensus};
    use uba_core::harness::{assert_agreement, Setup};
    use uba_sim::SyncEngine;

    fn consensus_under<A: Adversary<ConsensusMsg<u64>>>(
        setup: &Setup,
        adversary: A,
        max_rounds: u64,
    ) -> u64 {
        let mut engine = SyncEngine::builder()
            .correct_many(
                setup
                    .correct
                    .iter()
                    .enumerate()
                    .map(|(i, &id)| EarlyConsensus::new(id, (i % 2) as u64)),
            )
            .faulty_many(setup.faulty.iter().copied())
            .adversary(adversary)
            .build();
        let done = engine
            .run_to_completion(max_rounds)
            .expect("consensus terminates under attack");
        assert_agreement(&done.outputs)
    }

    #[test]
    fn consensus_survives_announce_then_vanish() {
        let setup = Setup::new(7, 2, 1);
        let v = consensus_under(
            &setup,
            ScriptedAdversary::announce_then_vanish(ConsensusMsg::RotorInit),
            200,
        );
        assert!(v < 2);
    }

    #[test]
    fn consensus_survives_mirror() {
        let setup = Setup::new(7, 2, 2);
        let v = consensus_under(&setup, MirrorAdversary::new(), 200);
        assert!(v < 2);
    }

    #[test]
    fn consensus_survives_split_mirror() {
        for seed in 0..4 {
            let setup = Setup::new(7, 2, seed);
            let v = consensus_under(&setup, SplitMirrorAdversary::new(), 400);
            assert!(v < 2, "seed {seed}");
        }
    }

    #[test]
    fn consensus_survives_crashes() {
        let setup = Setup::new(7, 2, 3);
        let crash = CrashAdversary::new(
            setup.faulty.iter().map(|&id| EarlyConsensus::new(id, 1u64)),
            9,
        );
        let v = consensus_under(&setup, crash, 200);
        assert!(v < 2);
    }

    #[test]
    fn consensus_survives_noise() {
        let setup = Setup::new(7, 2, 4);
        let noise = NoiseAdversary::new(
            |rng: &mut StdRng, _round| {
                if rng.gen_bool(0.5) {
                    ConsensusMsg::Input(rng.gen_range(0..2))
                } else {
                    ConsensusMsg::StrongPrefer(rng.gen_range(0..2))
                }
            },
            3,
            99,
        );
        let v = consensus_under(&setup, noise, 200);
        assert!(v < 2);
    }

    #[test]
    fn consensus_survives_replay() {
        for lag in [1u64, 3, 5] {
            let setup = Setup::new(7, 2, 6 + lag);
            let v = consensus_under(&setup, ReplayAdversary::new(lag), 200);
            assert!(v < 2, "lag {lag}");
        }
    }

    #[test]
    #[should_panic(expected = "replay lag must be at least 1")]
    fn replay_rejects_zero_lag() {
        let _: ReplayAdversary<u8> = ReplayAdversary::new(0);
    }

    #[test]
    fn boxed_strategies_can_be_selected_at_runtime() {
        let setup = Setup::new(4, 1, 5);
        let strategies: Vec<Box<dyn Adversary<ConsensusMsg<u64>>>> = vec![
            Box::new(MirrorAdversary::new()),
            Box::new(SplitMirrorAdversary::new()),
        ];
        for adv in strategies {
            let v = consensus_under(&setup, adv, 300);
            assert!(v < 2);
        }
    }
}
