//! Protocol-aware attacks targeting specific algorithms of the paper.
//!
//! Each attack aims at the exact mechanism whose robustness the paper
//! proves: candidate-set relay in the rotor-coordinator, quorum
//! intersection in consensus, the `⌊n_v/3⌋` trimming in approximate
//! agreement. The integration tests and the resiliency experiment (T6) run
//! every algorithm against its matching attack, both below and above the
//! `n > 3f` threshold.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::SeedableRng;
use uba_sim::{Adversary, AdversaryOutbox, AdversaryView, NodeId, Payload};

use uba_core::consensus::{phase_of_round, ConsensusMsg, INIT_ROUNDS};
use uba_core::rotor::RotorMsg;
use uba_core::value::{OrderedF64, Value};

/// Attacks the rotor-coordinator's candidate-set consistency: each faulty
/// node announces itself (`init`) to only the lower half of the correct
/// nodes, so its echo support hovers around the `n_v/3` threshold and
/// candidate sets momentarily diverge — the situation Lemma `rc-relay` must
/// repair within one round.
#[derive(Debug, Clone, Copy, Default)]
pub struct RotorSplitAdversary;

impl RotorSplitAdversary {
    /// Creates the attack.
    pub fn new() -> Self {
        RotorSplitAdversary
    }
}

impl<V: Value> Adversary<RotorMsg<V>> for RotorSplitAdversary {
    fn act(
        &mut self,
        view: &AdversaryView<'_, RotorMsg<V>>,
        out: &mut AdversaryOutbox<RotorMsg<V>>,
    ) {
        let correct: Vec<NodeId> = view.correct.iter().copied().collect();
        let half = correct.len() / 2 + 1;
        match view.round {
            1 => {
                for &b in view.faulty.iter() {
                    for &to in correct.iter().take(half) {
                        out.send(b, to, RotorMsg::Init);
                    }
                }
            }
            _ => {
                // Keep echoing our own candidacies to the same half so that
                // the half keeps them near the threshold.
                for &b in view.faulty.iter() {
                    for &other in view.faulty.iter() {
                        for &to in correct.iter().take(half) {
                            out.send(b, to, RotorMsg::Echo(other));
                        }
                    }
                }
            }
        }
    }
}

/// Injects echoes for identifiers that do not exist: the paper's model
/// explicitly allows a Byzantine node to "claim to have received messages
/// from other, possibly non-existent, nodes". Ghost candidates that make it
/// into `C_v` are selected as coordinators and stay silent, wasting phases —
/// but never breaking agreement.
#[derive(Debug, Clone)]
pub struct GhostCandidateAdversary {
    ghosts: Vec<NodeId>,
    /// Echo the ghosts during rounds `2..=until_round`.
    until_round: u64,
}

impl GhostCandidateAdversary {
    /// Creates the attack with `count` ghost identifiers echoed up to
    /// `until_round`, deterministically derived from `seed`.
    pub fn new(count: usize, until_round: u64, seed: u64) -> Self {
        // Ghost ids must not collide with real ones; sample from a
        // dedicated seed stream.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6A09_E667_F3BC_C908);
        let ghosts = (0..count)
            .map(|_| NodeId::new(rand::Rng::gen(&mut rng)))
            .collect();
        GhostCandidateAdversary {
            ghosts,
            until_round,
        }
    }

    /// The ghost identifiers used by the attack.
    pub fn ghosts(&self) -> &[NodeId] {
        &self.ghosts
    }

    fn echo<M: Payload>(
        &self,
        view: &AdversaryView<'_, M>,
        out: &mut AdversaryOutbox<M>,
        wrap: impl Fn(NodeId) -> M,
    ) {
        if view.round < 2 || view.round > self.until_round {
            return;
        }
        for &b in view.faulty.iter() {
            for &g in &self.ghosts {
                out.broadcast(b, wrap(g));
            }
        }
    }
}

impl<V: Value> Adversary<RotorMsg<V>> for GhostCandidateAdversary {
    fn act(
        &mut self,
        view: &AdversaryView<'_, RotorMsg<V>>,
        out: &mut AdversaryOutbox<RotorMsg<V>>,
    ) {
        if view.round == 1 {
            for &b in view.faulty.iter() {
                out.broadcast(b, RotorMsg::Init);
            }
        }
        self.echo(view, out, RotorMsg::Echo);
    }
}

impl<V: Value> Adversary<ConsensusMsg<V>> for GhostCandidateAdversary {
    fn act(
        &mut self,
        view: &AdversaryView<'_, ConsensusMsg<V>>,
        out: &mut AdversaryOutbox<ConsensusMsg<V>>,
    ) {
        if view.round == 1 {
            for &b in view.faulty.iter() {
                out.broadcast(b, ConsensusMsg::RotorInit);
            }
        }
        self.echo(view, out, ConsensusMsg::RotorEcho);
    }
}

/// Full-strength equivocation against the `O(f)` consensus: the faulty
/// nodes participate in initialization, then in every phase tell the lower
/// half of the correct nodes they hold value `a` (input/prefer/strongprefer
/// and, if selected coordinator, opinion) and the upper half value `b`.
///
/// This drives the quorum-intersection lemmas (`rn-g1`, `rn-g2`, `quorum`)
/// to their tight cases; with `n > 3f` agreement must still hold.
#[derive(Debug, Clone)]
pub struct ConsensusEquivocator<V> {
    a: V,
    b: V,
}

impl<V: Value> ConsensusEquivocator<V> {
    /// Creates the attack pushing `a` to the lower half and `b` to the
    /// upper half of the correct nodes.
    pub fn new(a: V, b: V) -> Self {
        ConsensusEquivocator { a, b }
    }

    fn split_send(
        &self,
        view: &AdversaryView<'_, ConsensusMsg<V>>,
        out: &mut AdversaryOutbox<ConsensusMsg<V>>,
        make: impl Fn(V) -> ConsensusMsg<V>,
    ) {
        let correct: Vec<NodeId> = view.correct.iter().copied().collect();
        let half = correct.len() / 2;
        for &byz in view.faulty.iter() {
            for (i, &to) in correct.iter().enumerate() {
                let v = if i < half {
                    self.a.clone()
                } else {
                    self.b.clone()
                };
                out.send(byz, to, make(v));
            }
        }
    }
}

impl<V: Value> Adversary<ConsensusMsg<V>> for ConsensusEquivocator<V> {
    fn act(
        &mut self,
        view: &AdversaryView<'_, ConsensusMsg<V>>,
        out: &mut AdversaryOutbox<ConsensusMsg<V>>,
    ) {
        if view.round <= INIT_ROUNDS {
            if view.round == 1 {
                for &b in view.faulty.iter() {
                    out.broadcast(b, ConsensusMsg::RotorInit);
                }
            }
            return;
        }
        let (_phase, phase_round) = phase_of_round(view.round);
        match phase_round {
            1 => self.split_send(view, out, ConsensusMsg::Input),
            2 => self.split_send(view, out, ConsensusMsg::Prefer),
            3 => self.split_send(view, out, ConsensusMsg::StrongPrefer),
            4 => {
                // If a faulty node has been selected coordinator by anyone,
                // its opinion equivocates too.
                self.split_send(view, out, ConsensusMsg::Opinion);
            }
            _ => {}
        }
    }
}

/// Attacks approximate agreement with coordinated extremes: every faulty
/// node sends a huge value to the lower half of the correct nodes and a
/// tiny value to the upper half, trying to drag the two halves apart. The
/// `⌊n_v/3⌋` trimming must discard all of it when `n > 3f`.
#[derive(Debug, Clone, Copy)]
pub struct ApproxExtremist {
    magnitude: f64,
}

impl ApproxExtremist {
    /// Creates the attack with the given magnitude (e.g. `1e12`).
    ///
    /// # Panics
    ///
    /// Panics if `magnitude` is NaN.
    pub fn new(magnitude: f64) -> Self {
        assert!(!magnitude.is_nan(), "magnitude must not be NaN");
        ApproxExtremist { magnitude }
    }
}

impl Adversary<OrderedF64> for ApproxExtremist {
    fn act(&mut self, view: &AdversaryView<'_, OrderedF64>, out: &mut AdversaryOutbox<OrderedF64>) {
        let correct: Vec<NodeId> = view.correct.iter().copied().collect();
        let half = correct.len() / 2;
        let hi = OrderedF64::new(self.magnitude).expect("not NaN");
        let lo = OrderedF64::new(-self.magnitude).expect("not NaN");
        for &b in view.faulty.iter() {
            for (i, &to) in correct.iter().enumerate() {
                out.send(b, to, if i < half { hi } else { lo });
            }
        }
    }
}

/// The set of correct nodes observed by an attack helper; exposed for tests
/// that want to assert which half saw which value.
pub fn lower_half(correct: &BTreeSet<NodeId>) -> Vec<NodeId> {
    let v: Vec<NodeId> = correct.iter().copied().collect();
    let half = v.len() / 2;
    v.into_iter().take(half).collect()
}

/// Attacks the standalone rotor-coordinator as a *malicious coordinator*:
/// faulty nodes join the candidate set like correct ones (`init`), and in
/// every round each sends `opinion(a)` to the lower half of the correct
/// nodes and `opinion(b)` to the upper half — so whenever a faulty node's
/// turn comes, the correct nodes accept contradictory opinions.
///
/// This is exactly why one good round is needed and why `f + 1` distinct
/// coordinators guarantee it: rounds with a Byzantine coordinator are
/// allowed to be arbitrarily inconsistent.
#[derive(Debug, Clone)]
pub struct ByzantineCoordinator<V> {
    a: V,
    b: V,
}

impl<V: Value> ByzantineCoordinator<V> {
    /// Creates the attack with the two opinions to split between halves.
    pub fn new(a: V, b: V) -> Self {
        ByzantineCoordinator { a, b }
    }
}

impl<V: Value> Adversary<RotorMsg<V>> for ByzantineCoordinator<V> {
    fn act(
        &mut self,
        view: &AdversaryView<'_, RotorMsg<V>>,
        out: &mut AdversaryOutbox<RotorMsg<V>>,
    ) {
        if view.round == 1 {
            for &b in view.faulty.iter() {
                out.broadcast(b, RotorMsg::Init);
            }
            return;
        }
        let correct: Vec<NodeId> = view.correct.iter().copied().collect();
        let half = correct.len() / 2;
        for &byz in view.faulty.iter() {
            for (i, &to) in correct.iter().enumerate() {
                let opinion = if i < half {
                    self.a.clone()
                } else {
                    self.b.clone()
                };
                out.send(byz, to, RotorMsg::Opinion(opinion));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_core::approx::ApproxAgreement;
    use uba_core::consensus::EarlyConsensus;
    use uba_core::harness::{assert_agreement, output_range, Setup};
    use uba_core::rotor::RotorCoordinator;
    use uba_sim::SyncEngine;

    #[test]
    fn rotor_survives_split_attack() {
        let setup = Setup::new(7, 2, 11);
        let mut engine = SyncEngine::builder()
            .correct_many(
                setup
                    .correct
                    .iter()
                    .map(|&id| RotorCoordinator::new(id, id.raw())),
            )
            .faulty_many(setup.faulty.iter().copied())
            .adversary(RotorSplitAdversary::new())
            .build();
        let done = engine
            .run_to_completion(3 + 2 * setup.n() as u64 + 8)
            .expect("rotor terminates in O(n) rounds under attack");
        // Every correct node must have witnessed a good round: a round in
        // which all correct nodes selected the same correct coordinator.
        let selections: Vec<&Vec<(u64, NodeId)>> =
            done.outputs.values().map(|o| &o.selections).collect();
        let correct_set: BTreeSet<NodeId> = setup.correct.iter().copied().collect();
        let min_len = selections.iter().map(|s| s.len()).min().unwrap();
        let good_round_exists = (0..min_len).any(|i| {
            let (round0, p0) = selections[0][i];
            correct_set.contains(&p0)
                && selections
                    .iter()
                    .all(|s| s.iter().any(|&(r, p)| r == round0 && p == p0))
        });
        assert!(good_round_exists, "no good round under split attack");
    }

    #[test]
    fn rotor_survives_ghost_candidates() {
        let setup = Setup::new(7, 2, 13);
        let adv = GhostCandidateAdversary::new(3, 10, 5);
        let mut engine = SyncEngine::builder()
            .correct_many(
                setup
                    .correct
                    .iter()
                    .map(|&id| RotorCoordinator::new(id, id.raw())),
            )
            .faulty_many(setup.faulty.iter().copied())
            .adversary(adv)
            .build();
        // Ghosts inflate C_v (up to n + ghosts candidates) but termination
        // stays linear and every node still witnesses a good round.
        let budget = 3 + 2 * (setup.n() as u64 + 3) + 8;
        engine.run_to_completion(budget).expect("terminates");
    }

    #[test]
    fn consensus_survives_equivocation() {
        for seed in 0..4 {
            let setup = Setup::new(7, 2, seed);
            let mut engine = SyncEngine::builder()
                .correct_many(
                    setup
                        .correct
                        .iter()
                        .enumerate()
                        .map(|(i, &id)| EarlyConsensus::new(id, (i % 2) as u64)),
                )
                .faulty_many(setup.faulty.iter().copied())
                .adversary(ConsensusEquivocator::new(0u64, 1u64))
                .build();
            let done = engine
                .run_to_completion(400)
                .expect("terminates under equivocation");
            let v = assert_agreement(&done.outputs);
            assert!(v < 2, "output is a correct input (seed {seed})");
        }
    }

    #[test]
    fn approx_survives_extremists() {
        let setup = Setup::new(7, 2, 21);
        let inputs: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let mut engine = SyncEngine::builder()
            .correct_many(
                setup
                    .correct
                    .iter()
                    .zip(&inputs)
                    .map(|(&id, &x)| ApproxAgreement::new(id, x).with_iterations(4)),
            )
            .faulty_many(setup.faulty.iter().copied())
            .adversary(ApproxExtremist::new(1e12))
            .build();
        let done = engine.run_to_completion(8).expect("terminates");
        let (lo, hi) = output_range(&done.outputs);
        assert!(lo >= 0.0 && hi <= 6.0, "outputs inside the correct range");
        assert!(
            hi - lo <= 6.0 / 16.0 + 1e-9,
            "still contracts per iteration"
        );
    }

    #[test]
    fn byzantine_coordinator_rounds_are_inconsistent_but_good_rounds_exist() {
        let setup = Setup::new(7, 2, 19);
        let mut engine = SyncEngine::builder()
            .correct_many(
                setup
                    .correct
                    .iter()
                    .map(|&id| RotorCoordinator::new(id, id.raw())),
            )
            .faulty_many(setup.faulty.iter().copied())
            .adversary(ByzantineCoordinator::new(0u64, 1u64))
            .build();
        let done = engine
            .run_to_completion(3 + 2 * setup.n() as u64 + 8)
            .expect("terminates");
        let correct: BTreeSet<NodeId> = setup.correct.iter().copied().collect();
        let all: Vec<_> = done.outputs.values().collect();
        // A good round (common correct coordinator) must exist…
        let good = all[0].selections.iter().any(|&(round, p)| {
            correct.contains(&p)
                && all
                    .iter()
                    .all(|o| o.selections.iter().any(|&(r, q)| r == round && q == p))
        });
        assert!(good, "good round survives malicious coordinators");
        // …and in good rounds the accepted opinion is consistent: for the
        // round after a common correct coordinator's selection, everyone
        // accepted that coordinator's (single) opinion.
        for &(round, p) in &all[0].selections {
            if !correct.contains(&p) {
                continue;
            }
            let opinions: BTreeSet<u64> = all
                .iter()
                .flat_map(|o| {
                    o.accepted_opinions
                        .iter()
                        .filter(move |&&(r, q, _)| r == round + 1 && q == p)
                        .map(|&(_, _, v)| v)
                })
                .collect();
            assert!(opinions.len() <= 1, "correct coordinator {p} equivocated?!");
        }
    }

    #[test]
    fn ghost_ids_are_deterministic_per_seed() {
        let a = GhostCandidateAdversary::new(4, 5, 1);
        let b = GhostCandidateAdversary::new(4, 5, 1);
        let c = GhostCandidateAdversary::new(4, 5, 2);
        assert_eq!(a.ghosts(), b.ghosts());
        assert_ne!(a.ghosts(), c.ghosts());
    }
}
