//! [`NetNode`]: one cluster member — a [`Process`] plus the machinery that
//! drives it over TCP in lock-step rounds.
//!
//! The run loop mirrors the simulator's `SyncEngine` exactly, one node at a
//! time: deliver the previous round's inbox, step the process, flush its
//! outbox to every peer, publish the `Done` barrier marker, wait at the
//! barrier, advance. A peer that misses the barrier deadline is charged
//! with an **omission** for the round (its traffic, if any, arrives too
//! late and is dropped) — precisely a fault the paper's model already
//! accounts for, which is why correctness does not depend on tuning the
//! timeout and why `uba-core`'s monitors attach unchanged.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::thread;
use std::time::{Duration, Instant};

use uba_sim::{
    Context, Dest, Envelope, MonitorView, MsgRef, NodeId, Outbox, Process, RoundMonitor,
    ViolationReport,
};
use uba_trace::{
    metric_name, JournalEntry, JournalRecovery, NetEventKind, NoopTracer, RoundJournal,
    SharedRuntimeMetrics, TraceEvent, Tracer,
};

use crate::conn::{dial_peer, spawn_acceptor, LinkEvent, Links, RetryPolicy};
use crate::sync::{DataOutcome, DoneOutcome, RoundSynchronizer};
use crate::wire::{Frame, Wire};

/// Tuning knobs of a networked node.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// How long to wait at the round barrier before charging the missing
    /// peers with an omission for the round.
    pub round_timeout: Duration,
    /// Backoff schedule for dialing peers (initial mesh setup and
    /// mid-run redials).
    pub retry: RetryPolicy,
    /// Additional budget for the initial full-mesh setup: peers of a
    /// just-launched cluster come up in arbitrary order.
    pub setup_timeout: Duration,
    /// Abort with [`NetError::RoundLimit`] if no decision was reached after
    /// this many rounds (safety net against livelock, like the engine's
    /// `run_to_completion` bound).
    pub max_rounds: u64,
    /// After this many *consecutive* missed barriers a peer is declared
    /// gone and dropped from the barrier, so one dead peer costs bounded
    /// waiting instead of a timeout every round forever.
    pub give_up_after: u64,
    /// How many completed rounds of own traffic the node retains for
    /// answering [`Frame::SyncRequest`] backfills. A rejoiner that was down
    /// longer than this (at one barrier timeout per round) simply misses
    /// the pruned rounds — an omission, which the model tolerates. Larger
    /// windows buy longer tolerated downtimes at the price of memory
    /// proportional to the retained traffic.
    pub history_rounds: usize,
    /// Minimum wall-clock duration of one round. Zero (the default) keeps
    /// rounds as fast as the barrier allows — the right choice for one-shot
    /// agreement runs. A long-lived ordering service (`logd`) paces its
    /// rounds instead, so client submissions arriving between barriers have
    /// a window to land in the next batch; throughput then scales as
    /// shards × batch size × round rate rather than being a race against
    /// the barrier.
    pub round_pace: Duration,
    /// Per-peer ingress quota: frames accepted from one peer within one
    /// round before further frames are dropped and a flood strike is
    /// charged. Sized far above any honest burst (a full backfill catch-up
    /// is `history_rounds` frames plus live traffic), so only a flooder
    /// ever trips it — DESIGN.md §13.
    pub max_frames_per_round: u64,
    /// Per-peer ingress quota: bytes accepted from one peer within one
    /// round (same strike semantics as `max_frames_per_round`).
    pub max_bytes_per_round: u64,
    /// Misbehavior strikes (quota floods, malformed/oversized frames,
    /// out-of-window rounds, post-`Done` injections, barrier equivocation,
    /// backfill abuse) a peer may accumulate before it is evicted:
    /// disconnected, removed from the barrier, and ignored for the rest of
    /// the run. Omission timeouts are *not* strikes — silence stays
    /// governed by `give_up_after`.
    pub strike_limit: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            round_timeout: Duration::from_secs(2),
            retry: RetryPolicy::default(),
            setup_timeout: Duration::from_secs(10),
            max_rounds: 10_000,
            give_up_after: 5,
            history_rounds: 64,
            round_pace: Duration::ZERO,
            max_frames_per_round: 1024,
            max_bytes_per_round: 32 * 1024 * 1024,
            strike_limit: 3,
        }
    }
}

/// Why a networked run ended without producing a report.
#[derive(Debug)]
pub enum NetError {
    /// Transport-level failure (listener died, no peer ever reachable).
    Io(io::Error),
    /// The round limit elapsed without the cluster reaching a decision.
    RoundLimit(u64),
    /// An attached [`RoundMonitor`] flagged an invariant violation.
    InvariantViolated(ViolationReport),
    /// The node was killed by fault injection ([`NetNode::kill_at_round`])
    /// at the start of the given round: sockets are shut down, peers see
    /// EOF, and the process can later be rebuilt from its journal via
    /// [`NetNode::resume`].
    Killed(u64),
    /// A cluster member's thread panicked. Reported by the
    /// [`run_local_cluster`](crate::run_local_cluster) harness family,
    /// which converts the panic into this typed error, keeps draining the
    /// surviving members, and flips their abort flag so they shut down
    /// promptly instead of grinding out their give-up budgets.
    MemberPanicked {
        /// The member whose thread panicked.
        id: NodeId,
    },
    /// The run was aborted through [`NetNode::with_abort_flag`] — the
    /// harness pulled the plug (e.g. because another member panicked), so
    /// this node shut its sockets down and stopped mid-run.
    Aborted,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(err) => write!(f, "transport error: {err}"),
            NetError::RoundLimit(limit) => {
                write!(f, "no decision within the {limit}-round limit")
            }
            NetError::InvariantViolated(report) => write!(f, "{report}"),
            NetError::Killed(round) => {
                write!(f, "killed by fault injection at the start of round {round}")
            }
            NetError::MemberPanicked { id } => {
                write!(f, "cluster member {id}'s thread panicked")
            }
            NetError::Aborted => write!(f, "run aborted by the harness"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(err: io::Error) -> Self {
        NetError::Io(err)
    }
}

/// What one node's networked run produced.
#[derive(Debug)]
pub struct NetReport<O, T> {
    /// The process's output, if it decided.
    pub output: Option<O>,
    /// The round the process decided in, if it did.
    pub decided_round: Option<u64>,
    /// Rounds executed (including the shutdown round).
    pub rounds: u64,
    /// Barrier timeouts charged over the whole run.
    pub timeouts: u64,
    /// Wall-clock duration of each round, in microseconds — the raw data
    /// behind the T11 latency table.
    pub round_micros: Vec<u64>,
    /// The tracer handed in via [`NetNode::with_tracer`], returned so the
    /// caller can inspect or dump the collected events.
    pub tracer: T,
    /// Peers this node evicted for wire misbehavior (raw ids, in eviction
    /// order) — charged distinctly from the omission timeouts above, so a
    /// verdict table can separate malice from silence.
    pub evicted: Vec<u64>,
}

/// Who a retained outgoing payload was addressed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SentTo {
    /// Broadcast: every present node.
    All,
    /// Point-to-point to one peer.
    One(NodeId),
}

/// One round of this node's *own* outgoing traffic, kept for backfill.
/// Only own traffic: a backfill must be as unforgeable as live traffic, so
/// a node never relays third-party payloads (the reader attributes every
/// frame — live or backfilled — to the connection's handshaken sender).
#[derive(Debug, Default)]
struct RoundHistory {
    /// Encoded payloads in send order, with their destination.
    sends: Vec<(SentTo, Vec<u8>)>,
    /// The `decided` flag of the `Done` marker, once published.
    done: Option<bool>,
}

/// Per-peer ingress accounting and the strike ledger (DESIGN.md §13).
/// Frame/byte counters reset at every round advance; strikes never reset —
/// a peer that keeps misbehaving runs out of budget and is evicted.
#[derive(Debug, Default)]
struct PeerDiscipline {
    /// Frames received from the peer within the current round.
    frames_this_round: u64,
    /// Approximate wire bytes received from the peer within the current
    /// round (payload sizes plus small per-frame overhead).
    bytes_this_round: u64,
    /// Lifetime misbehavior strikes.
    strikes: u32,
}

/// Cheap upper-bound estimate of a frame's wire size, for quota accounting
/// on the hot receive path (no throwaway encode — payload length plus a
/// small constant covers tags, rounds and flags for every variant).
fn frame_quota_len(frame: &Frame) -> u64 {
    let payload = match frame {
        Frame::Data { payload, .. } => payload.len(),
        Frame::Backfill { payloads, .. } => payloads.iter().map(|p| p.len() + 4).sum(),
        Frame::Submit { key, payload } => key.len() + payload.len(),
        Frame::PrefixChunk { records, .. } => records.iter().map(|r| r.len() + 4).sum(),
        _ => 0,
    };
    32 + payload as u64
}

/// One member of a networked cluster: a [`Process`] driven over TCP.
///
/// Generic over the process and the attached [`Tracer`] (default: none).
/// The process's payload type must implement [`Wire`] — the impls for all
/// `uba-core` payloads ship in [`crate::codec`].
///
/// See [`run_local_cluster`](crate::run_local_cluster) for the one-call
/// way to run a whole localhost cluster; `NetNode` is the building block
/// when each member runs in its own OS process.
pub struct NetNode<P: Process, T: Tracer = NoopTracer> {
    process: P,
    config: NetConfig,
    tracer: T,
    runtime: Option<SharedRuntimeMetrics>,
    monitor: Option<Box<dyn RoundMonitor<P> + Send>>,
    journal: Option<RoundJournal>,
    kill_at: Option<u64>,
    abort: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    history: BTreeMap<u64, RoundHistory>,
    /// Per-peer ingress quotas and strike ledger.
    discipline: BTreeMap<NodeId, PeerDiscipline>,
    /// Peers evicted for misbehavior: links torn down, frames ignored,
    /// reconnects refused.
    banned: BTreeSet<NodeId>,
    /// Peers we sent a `SyncRequest` to (resume path): the only senders a
    /// `Backfill` frame is accepted from — anyone else pushing unsolicited
    /// backfill is abusing the rejoin path.
    backfill_ok: BTreeSet<NodeId>,
    /// Round at which each peer was last served a backfill, to refuse
    /// repeat `SyncRequest`s within one round.
    sync_served: BTreeMap<NodeId, u64>,
    /// Raw ids of evicted peers, in eviction order (for the report).
    evicted: Vec<u64>,
}

impl<P: Process> NetNode<P, NoopTracer> {
    /// Wraps `process` with the given transport configuration.
    pub fn new(process: P, config: NetConfig) -> Self {
        NetNode {
            process,
            config,
            tracer: NoopTracer,
            runtime: None,
            monitor: None,
            journal: None,
            kill_at: None,
            abort: None,
            history: BTreeMap::new(),
            discipline: BTreeMap::new(),
            banned: BTreeSet::new(),
            backfill_ok: BTreeSet::new(),
            sync_served: BTreeMap::new(),
            evicted: Vec::new(),
        }
    }
}

impl<P: Process, T: Tracer> NetNode<P, T> {
    /// Attaches a tracer; it receives both the engine-style events
    /// (round boundaries, sends, deliveries, duplicate drops) and the
    /// transport-level [`TraceEvent::Net`] events.
    pub fn with_tracer<T2: Tracer>(self, tracer: T2) -> NetNode<P, T2> {
        NetNode {
            process: self.process,
            config: self.config,
            tracer,
            runtime: self.runtime,
            monitor: self.monitor,
            journal: self.journal,
            kill_at: self.kill_at,
            abort: self.abort,
            history: self.history,
            discipline: self.discipline,
            banned: self.banned,
            backfill_ok: self.backfill_ok,
            sync_served: self.sync_served,
            evicted: self.evicted,
        }
    }

    /// Attaches a wall-clock runtime metrics registry: per-round phase
    /// timings, per-peer byte/frame counters, reconnect/backfill/omission
    /// counters, and the retained-history gauge. Strictly separate from the
    /// deterministic tracer — runtime metrics read the monotonic clock and
    /// never feed the trace event stream, so attaching one cannot perturb
    /// byte-identical traces or decisions (DESIGN.md §10). Share one clone
    /// with a [`crate::serve_metrics`] endpoint to expose it live.
    pub fn with_runtime_metrics(mut self, runtime: SharedRuntimeMetrics) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// Attaches an online invariant monitor, checked after every round
    /// against this node's local state (a single-process
    /// [`MonitorView`]; global properties such as agreement need a view of
    /// the whole cluster and are checked by the harness after the run).
    pub fn with_monitor(mut self, monitor: impl RoundMonitor<P> + Send + 'static) -> Self {
        self.monitor = Some(Box::new(monitor));
        self
    }

    /// Attaches a durable round journal: every committed round appends its
    /// barrier-released inbox (fsync'd) before the node proceeds, so a
    /// crashed node can be rebuilt deterministically via [`resume`].
    ///
    /// [`resume`]: Self::resume
    pub fn with_journal(mut self, journal: RoundJournal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Arms fault injection: at the start of the given round the node shuts
    /// down every socket and returns [`NetError::Killed`] — indistinguishable,
    /// from the peers' side, from the OS process dying.
    pub fn kill_at_round(mut self, round: u64) -> Self {
        self.kill_at = Some(round);
        self
    }

    /// Attaches a harness-controlled abort flag: once it reads `true`, the
    /// node shuts its sockets down and returns [`NetError::Aborted`] at the
    /// next round boundary or barrier poll (the barrier wait degrades to
    /// short poll slices while a flag is attached, so the reaction time is
    /// bounded by tens of milliseconds, not by `round_timeout`). The
    /// cluster harness uses this to tear down survivors after one member's
    /// thread panicked.
    pub fn with_abort_flag(mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) -> Self {
        self.abort = Some(flag);
        self
    }

    /// Whether the attached abort flag (if any) has been raised.
    fn aborted(&self) -> bool {
        self.abort
            .as_ref()
            .is_some_and(|flag| flag.load(std::sync::atomic::Ordering::Relaxed))
    }
}

/// How often a node with an abort flag re-checks it while parked at the
/// round barrier. Coarse enough to cost nothing, fine enough that a
/// harness teardown never waits a full `round_timeout`.
const ABORT_POLL: Duration = Duration::from_millis(25);

impl<P, T> NetNode<P, T>
where
    P: Process,
    P::Msg: Wire,
    T: Tracer,
{
    /// Runs the node to completion: sets up the mesh, executes rounds until
    /// the whole cluster has decided (or until `max_rounds`), and reports.
    ///
    /// `listener` must already be bound to this node's address in `roster`;
    /// binding before spawning is what makes cluster startup race-free.
    /// `roster` maps every member (including this node) to its address.
    ///
    /// # Errors
    ///
    /// [`NetError::RoundLimit`] if the cluster never decides,
    /// [`NetError::InvariantViolated`] from an attached monitor, or
    /// [`NetError::Io`] if the transport fails outright.
    pub fn run(
        mut self,
        listener: TcpListener,
        roster: &BTreeMap<NodeId, SocketAddr>,
    ) -> Result<NetReport<P::Output, T>, NetError> {
        let me = self.process.id();
        let peers: Vec<NodeId> = roster.keys().copied().filter(|&p| p != me).collect();
        let links = Links::new();
        let (events_tx, events) = mpsc::channel::<LinkEvent>();
        spawn_acceptor(listener, me, links.clone(), events_tx.clone());

        let mut sync = RoundSynchronizer::<P::Msg>::new(me, peers.iter().copied())
            .with_round_window(self.config.history_rounds as u64);

        // Dial every peer with a larger id; smaller ids dial us. Each pair
        // gets its own jitter stream so simultaneous (re)starts spread out.
        let runtime = self.runtime.clone();
        for &peer in peers.iter().filter(|&&p| p > me) {
            let addr = roster[&peer];
            let retry = pair_retry(self.config.retry, me, peer);
            dial_peer(addr, me, peer, retry, &links, &events_tx, |attempt| {
                if let Some(rt) = &runtime {
                    rt.inc("net_dial_retries_total");
                }
                trace(&mut self.tracer, || TraceEvent::Net {
                    round: 0,
                    kind: NetEventKind::Retry,
                    node: me.raw(),
                    peer: Some(peer.raw()),
                    info: format!("dial attempt {attempt} failed"),
                });
            })?;
        }

        // Wait for the full mesh. Fast peers may already be sending round-1
        // traffic while we wait, so frames are processed, not discarded.
        let mut connected: BTreeSet<NodeId> = BTreeSet::new();
        let setup_deadline = Instant::now() + self.config.setup_timeout;
        while !peers.iter().all(|p| connected.contains(p)) {
            let remaining = setup_deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match events.recv_timeout(remaining) {
                Ok(event) => {
                    self.handle_link_event(event, &mut sync, &mut connected, me, &links);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(NetError::Io(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "event channel closed during setup",
                    )))
                }
            }
        }
        for &peer in peers.iter().filter(|p| !connected.contains(p)) {
            // Never came up: run without it, as if it crashed before round 1.
            sync.peer_gone(peer);
            trace(&mut self.tracer, || TraceEvent::Net {
                round: 0,
                kind: NetEventKind::PeerGone,
                node: me.raw(),
                peer: Some(peer.raw()),
                info: "unreachable during setup".to_string(),
            });
        }

        self.run_rounds(sync, links, events, connected, Vec::new(), None)
    }

    /// Rebuilds a crashed node from its recovered journal and re-enters the
    /// cluster: replays the journaled inboxes through the fresh process (no
    /// sends — the originals already happened before the crash), dials
    /// every peer, announces itself with [`Frame::SyncRequest`], collects
    /// the missed rounds from the peers' backfills, and falls back into the
    /// lock-step barrier at the first round after the journal.
    ///
    /// The process handed to [`NetNode::new`] must be in its *initial*
    /// state, built with the same arguments as the crashed incarnation —
    /// determinism of `on_round` does the rest. Attach a fresh journal
    /// (from [`RoundJournal::resume`]) to keep the run crash-safe.
    ///
    /// Unlike [`run`](Self::run), a resuming node does not listen: nobody
    /// dials a rejoiner — re-entry is announced by dialing the peers.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] with [`io::ErrorKind::InvalidData`] if the journal
    /// belongs to a different node, plus everything [`run`](Self::run) can
    /// return.
    pub fn resume(
        mut self,
        recovery: &JournalRecovery,
        roster: &BTreeMap<NodeId, SocketAddr>,
    ) -> Result<NetReport<P::Output, T>, NetError> {
        let me = self.process.id();
        if recovery.node != me.raw() {
            return Err(NetError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("journal belongs to node {}, not {me}", recovery.node),
            )));
        }

        // Deterministic replay: feed each journaled round its recorded
        // inbox and discard the outboxes.
        let mut inbox: Vec<Envelope<P::Msg>> = Vec::new();
        let mut decided_round: Option<u64> = None;
        for entry in &recovery.entries {
            if !self.process.terminated() {
                let mut outbox = Outbox::new();
                let mut ctx = Context::new(entry.round, &inbox, &mut outbox);
                self.process.on_round(&mut ctx);
                if decided_round.is_none() && self.process.terminated() {
                    decided_round = Some(entry.round);
                }
            }
            inbox = entry
                .inbox
                .iter()
                .filter_map(|(from, bytes)| {
                    P::Msg::from_bytes(bytes).map(|msg| Envelope::new(NodeId::new(*from), msg))
                })
                .collect();
        }
        let next_round = recovery.last_round().map_or(1, |r| r + 1);

        let peers: Vec<NodeId> = roster.keys().copied().filter(|&p| p != me).collect();
        let links = Links::new();
        let (events_tx, events) = mpsc::channel::<LinkEvent>();
        let mut sync =
            RoundSynchronizer::<P::Msg>::resume_at(me, peers.iter().copied(), next_round)
                .with_round_window(self.config.history_rounds as u64);
        let connected: BTreeSet<NodeId> = BTreeSet::new();
        let runtime = self.runtime.clone();
        for &peer in &peers {
            let retry = pair_retry(self.config.retry, me, peer);
            let dialed = dial_peer(
                roster[&peer],
                me,
                peer,
                retry,
                &links,
                &events_tx,
                |attempt| {
                    if let Some(rt) = &runtime {
                        rt.inc("net_dial_retries_total");
                    }
                    trace(&mut self.tracer, || TraceEvent::Net {
                        round: next_round,
                        kind: NetEventKind::Retry,
                        node: me.raw(),
                        peer: Some(peer.raw()),
                        info: format!("rejoin dial attempt {attempt} failed"),
                    });
                },
            );
            if dialed.is_err() {
                // Unreachable while we were down (it may have crashed too):
                // rejoin without it; its silence budget governs from here.
                sync.peer_gone(peer);
                trace(&mut self.tracer, || TraceEvent::Net {
                    round: next_round,
                    kind: NetEventKind::PeerGone,
                    node: me.raw(),
                    peer: Some(peer.raw()),
                    info: "unreachable during rejoin".to_string(),
                });
            }
        }

        // Announce the rejoin: ask every reachable peer for the rounds we
        // slept through (their own sends only — see `RoundHistory`).
        let request = Frame::SyncRequest { since: next_round };
        for peer in sync.expected().collect::<Vec<_>>() {
            links.send(peer, &request);
            count_sent(&self.runtime, peer, &request);
            // Only the peers we asked may answer with Backfill frames;
            // unsolicited backfill from anyone else is rejoin-path abuse.
            self.backfill_ok.insert(peer);
        }
        trace(&mut self.tracer, || TraceEvent::Net {
            round: next_round,
            kind: NetEventKind::Resume,
            node: me.raw(),
            peer: None,
            info: format!(
                "replayed {} journaled rounds{}, rejoining at round {next_round}",
                recovery.entries.len(),
                if recovery.torn {
                    " (torn tail truncated)"
                } else {
                    ""
                },
            ),
        });

        self.run_rounds(sync, links, events, connected, inbox, decided_round)
    }

    /// The shared lock-step loop behind [`run`](Self::run) and
    /// [`resume`](Self::resume): step, flush, barrier, advance — until the
    /// whole cluster decided or a limit trips.
    fn run_rounds(
        mut self,
        mut sync: RoundSynchronizer<P::Msg>,
        links: Links,
        events: mpsc::Receiver<LinkEvent>,
        mut connected: BTreeSet<NodeId>,
        mut inbox: Vec<Envelope<P::Msg>>,
        mut decided_round: Option<u64>,
    ) -> Result<NetReport<P::Output, T>, NetError> {
        let me = self.process.id();
        let mut timeouts: u64 = 0;
        let mut round_micros: Vec<u64> = Vec::new();
        if let Some(rt) = &self.runtime {
            rt.set_gauge(
                "net_history_rounds_limit",
                self.config.history_rounds as u64,
            );
        }

        loop {
            let round = sync.current_round();
            if self.aborted() {
                // Harness teardown (a sibling member panicked): close the
                // sockets so peers see EOF, and report the abort.
                links.shutdown_all();
                return Err(NetError::Aborted);
            }
            if self.kill_at == Some(round) {
                // Injected crash: die like an OS process would — sockets
                // closed (peers read EOF), nothing flushed, no goodbye.
                links.shutdown_all();
                return Err(NetError::Killed(round));
            }
            if round > self.config.max_rounds {
                return Err(NetError::RoundLimit(self.config.max_rounds));
            }
            let started = Instant::now();
            trace(&mut self.tracer, || TraceEvent::RoundBegin { round });

            // Step the process (terminated processes leave the computation
            // and send nothing, exactly as in the engine).
            let mut step_micros = 0u64;
            let mut send_micros = 0u64;
            if !self.process.terminated() {
                let phase = Instant::now();
                let mut outbox = Outbox::new();
                let mut ctx = Context::new(round, &inbox, &mut outbox);
                self.process.on_round(&mut ctx);
                if decided_round.is_none() && self.process.terminated() {
                    decided_round = Some(round);
                }
                step_micros = micros_since(phase);
                let phase = Instant::now();
                for outgoing in outbox.drain() {
                    self.dispatch(outgoing.dest, outgoing.msg, round, &mut sync, &links, me);
                }
                send_micros = micros_since(phase);
            }

            // Publish the barrier marker: all our round-`round` data is out.
            let phase = Instant::now();
            let decided = self.process.terminated();
            let done = Frame::Done { round, decided };
            for &peer in sync.expected().collect::<Vec<_>>().iter() {
                links.send(peer, &done);
                count_sent(&self.runtime, peer, &done);
            }
            self.history.entry(round).or_default().done = Some(decided);
            send_micros += micros_since(phase);

            // Wait at the barrier. Time spent handing received frames to the
            // synchronizer is additionally accounted as the deliver phase.
            let phase = Instant::now();
            let mut deliver_micros = 0u64;
            let deadline = started + self.config.round_timeout;
            while !sync.barrier_complete() {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                // With an abort flag attached, wait in short slices so a
                // harness teardown is noticed mid-barrier; without one the
                // single full-length wait is preserved unchanged.
                let slice = if self.abort.is_some() {
                    remaining.min(ABORT_POLL)
                } else {
                    remaining
                };
                match events.recv_timeout(slice) {
                    Ok(event) => {
                        let handling = Instant::now();
                        self.handle_link_event(event, &mut sync, &mut connected, me, &links);
                        deliver_micros += micros_since(handling);
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if self.aborted() {
                            links.shutdown_all();
                            return Err(NetError::Aborted);
                        }
                        // Not necessarily the deadline: the loop head
                        // recomputes the remaining budget and exits when
                        // it truly is.
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(NetError::Io(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            "event channel closed mid-round",
                        )))
                    }
                }
            }
            let barrier_micros = micros_since(phase);

            // Charge whoever missed the deadline with an omission.
            let missed = sync.timed_out();
            if !missed.is_empty() {
                timeouts += missed.len() as u64;
                // Report the time actually spent at the barrier, not the
                // configured budget: under WAN delays (or a sliced abort
                // wait) the two diverge, and postmortems need the truth.
                let waited = started.elapsed().as_millis();
                if let Some(rt) = &self.runtime {
                    rt.observe_micros(
                        "net_omission_wait_micros",
                        started.elapsed().as_micros() as u64,
                    );
                }
                for &peer in &missed {
                    if let Some(rt) = &self.runtime {
                        rt.inc(&metric_name(
                            "net_omission_timeouts_total",
                            &[("peer", &peer.raw().to_string())],
                        ));
                    }
                    trace(&mut self.tracer, || TraceEvent::Net {
                        round,
                        kind: NetEventKind::Timeout,
                        node: me.raw(),
                        peer: Some(peer.raw()),
                        info: format!("silent at barrier after {waited}ms"),
                    });
                    if sync.silent_rounds(peer) >= self.config.give_up_after {
                        sync.peer_gone(peer);
                        trace(&mut self.tracer, || TraceEvent::Net {
                            round,
                            kind: NetEventKind::PeerGone,
                            node: me.raw(),
                            peer: Some(peer.raw()),
                            info: format!(
                                "missed {} consecutive barriers",
                                self.config.give_up_after
                            ),
                        });
                    }
                }
            }

            let finished = sync.all_decided(decided);
            let delivered = sync.advance();

            // The ingress quota window is one round: reset the per-peer
            // frame/byte counters (strikes are lifetime and stay).
            for discipline in self.discipline.values_mut() {
                discipline.frames_this_round = 0;
                discipline.bytes_this_round = 0;
            }

            // Commit the round durably before acting on it: the journal
            // entry holds the inbox the *next* round will consume, so a
            // crash at any later point replays to exactly this state.
            let phase = Instant::now();
            if let Some(journal) = self.journal.as_mut() {
                let entry = JournalEntry {
                    round,
                    decided,
                    inbox: delivered
                        .iter()
                        .map(|(from, msg)| (from.raw(), msg.get().to_bytes()))
                        .collect(),
                };
                journal.append(&entry)?;
            }
            let journal_micros = micros_since(phase);
            // Backfill history is bounded; rounds older than the window are
            // unrecoverable for rejoiners (an omission, which the model
            // already tolerates).
            while self.history.len() > self.config.history_rounds {
                self.history.pop_first();
            }

            trace(&mut self.tracer, || TraceEvent::RoundEnd {
                round,
                deliveries: delivered.len() as u64,
            });
            trace(&mut self.tracer, || TraceEvent::Net {
                round,
                kind: NetEventKind::RoundAdvance,
                node: me.raw(),
                peer: None,
                info: String::new(),
            });
            round_micros.push(started.elapsed().as_micros() as u64);
            if let Some(rt) = &self.runtime {
                let total = micros_since(started);
                let retained = self.history.len() as u64;
                rt.with(|m| {
                    m.inc("net_rounds_total");
                    m.observe_micros("net_round_micros", total);
                    m.observe_micros(PHASE_STEP, step_micros);
                    m.observe_micros(PHASE_SEND, send_micros);
                    m.observe_micros(PHASE_DELIVER, deliver_micros);
                    m.observe_micros(PHASE_BARRIER, barrier_micros);
                    m.observe_micros(PHASE_JOURNAL, journal_micros);
                    m.set_gauge("net_history_rounds_retained", retained);
                });
            }

            if let Some(monitor) = &mut self.monitor {
                let view = single_node_view(round, me, &self.process, decided_round);
                if let Err(report) = monitor.check(&view) {
                    trace(&mut self.tracer, || TraceEvent::MonitorVerdict {
                        round,
                        monitor: report.spec.clone(),
                        ok: false,
                        nodes: report.nodes.iter().map(|n| n.raw()).collect(),
                        details: report.violations.clone(),
                    });
                    return Err(NetError::InvariantViolated(report));
                }
            }

            if finished {
                return Ok(NetReport {
                    output: self.process.output(),
                    decided_round,
                    rounds: round,
                    timeouts,
                    round_micros,
                    tracer: self.tracer,
                    evicted: self.evicted,
                });
            }

            inbox = delivered
                .into_iter()
                .map(|(from, msg)| Envelope::from_shared(from, msg))
                .collect();

            // Pace the round if configured: sleep out the remainder of the
            // minimum round duration before starting the next round. Frames
            // arriving meanwhile queue on the event channel and are drained
            // at the next barrier wait (they belong to the next round, since
            // every peer paces identically). Sliced so an abort is noticed.
            if !self.config.round_pace.is_zero() {
                let mut remaining = self.config.round_pace.saturating_sub(started.elapsed());
                while !remaining.is_zero() {
                    if self.aborted() {
                        links.shutdown_all();
                        return Err(NetError::Aborted);
                    }
                    let slice = remaining.min(ABORT_POLL);
                    thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
        }
    }

    /// Sends one outgoing message: encodes the payload once, fans it out to
    /// the addressed peers, and self-delivers where the model requires.
    fn dispatch(
        &mut self,
        dest: Dest,
        msg: P::Msg,
        round: u64,
        sync: &mut RoundSynchronizer<P::Msg>,
        links: &Links,
        me: NodeId,
    ) {
        let shared = MsgRef::new(msg);
        trace(&mut self.tracer, || TraceEvent::Send {
            round,
            from: me.raw(),
            to: match dest {
                Dest::Broadcast => None,
                Dest::To(to) => Some(to.raw()),
            },
            payload: format!("{:?}", shared.get()),
            adversary: false,
        });
        let bytes = shared.get().to_bytes();
        match dest {
            Dest::Broadcast => {
                // A broadcast reaches every present node including the
                // sender (the engine's self-delivery rule).
                self.history
                    .entry(round)
                    .or_default()
                    .sends
                    .push((SentTo::All, bytes.clone()));
                let frame = Frame::Data {
                    round,
                    payload: bytes,
                };
                for peer in sync.expected().collect::<Vec<_>>() {
                    links.send(peer, &frame);
                    count_sent(&self.runtime, peer, &frame);
                }
                sync.self_deliver(shared);
            }
            Dest::To(to) if to == me => {
                // Purely local: nothing for a rejoiner to backfill.
                sync.self_deliver(shared);
            }
            Dest::To(to) => {
                self.history
                    .entry(round)
                    .or_default()
                    .sends
                    .push((SentTo::One(to), bytes.clone()));
                let frame = Frame::Data {
                    round,
                    payload: bytes,
                };
                links.send(to, &frame);
                count_sent(&self.runtime, to, &frame);
            }
        }
    }

    /// Charges one misbehavior strike against `from`: bumps the
    /// `net_misbehavior_total{kind,peer}` counter, traces a
    /// `net_byz_misbehavior` event, and evicts the peer once its strike
    /// budget is spent. Idempotent for already-banned peers.
    fn misbehave(
        &mut self,
        from: NodeId,
        kind: &'static str,
        info: String,
        sync: &mut RoundSynchronizer<P::Msg>,
        links: &Links,
    ) {
        if self.banned.contains(&from) {
            return;
        }
        let strikes = {
            let discipline = self.discipline.entry(from).or_default();
            discipline.strikes = discipline.strikes.saturating_add(1);
            discipline.strikes
        };
        if let Some(rt) = &self.runtime {
            rt.inc(&metric_name(
                "net_misbehavior_total",
                &[("kind", kind), ("peer", &from.raw().to_string())],
            ));
        }
        let me = sync.id();
        let round = sync.current_round();
        let limit = self.config.strike_limit;
        trace(&mut self.tracer, || TraceEvent::Net {
            round,
            kind: NetEventKind::Misbehavior,
            node: me.raw(),
            peer: Some(from.raw()),
            info: format!("{kind} (strike {strikes}/{limit}): {info}"),
        });
        if strikes >= limit {
            self.evict(from, sync, links);
        }
    }

    /// Evicts `from` for misbehavior: tears its link down, stops expecting
    /// it at barriers, and ignores all of its traffic (including redials)
    /// for the rest of the run. Charged as a `fault/byzantine_evict` —
    /// attributable malice — in contrast to the omission accounting of a
    /// barrier timeout ([`NetEventKind::Timeout`] / `PeerGone`).
    fn evict(&mut self, from: NodeId, sync: &mut RoundSynchronizer<P::Msg>, links: &Links) {
        if !self.banned.insert(from) {
            return;
        }
        links.shutdown_peer(from);
        sync.peer_gone(from);
        self.evicted.push(from.raw());
        if let Some(rt) = &self.runtime {
            rt.inc(&metric_name(
                "net_byz_evictions_total",
                &[("peer", &from.raw().to_string())],
            ));
        }
        let me = sync.id();
        let round = sync.current_round();
        trace(&mut self.tracer, || TraceEvent::Net {
            round,
            kind: NetEventKind::ByzEvict,
            node: me.raw(),
            peer: Some(from.raw()),
            info: "strike budget exhausted; link torn down".to_string(),
        });
        trace(&mut self.tracer, || TraceEvent::Fault {
            round,
            kind: "byzantine_evict",
            node: me.raw(),
            peer: Some(from.raw()),
        });
    }

    /// Feeds one link event into the synchronizer, tracing what happened.
    /// `links` is needed to answer rejoin handshakes ([`Frame::SyncRequest`])
    /// with tips and backfills.
    fn handle_link_event(
        &mut self,
        event: LinkEvent,
        sync: &mut RoundSynchronizer<P::Msg>,
        connected: &mut BTreeSet<NodeId>,
        me: NodeId,
        links: &Links,
    ) {
        match event {
            LinkEvent::Connected { peer, .. } => {
                if self.banned.contains(&peer) {
                    // An evicted peer redialed: refuse it — the ban is for
                    // the rest of the run, not for one socket's lifetime.
                    links.shutdown_peer(peer);
                    return;
                }
                let first_time = connected.insert(peer);
                if let Some(rt) = &self.runtime {
                    let name = if first_time {
                        "net_connects_total"
                    } else {
                        "net_reconnects_total"
                    };
                    rt.inc(&metric_name(name, &[("peer", &peer.raw().to_string())]));
                }
                trace(&mut self.tracer, || TraceEvent::Net {
                    round: sync.current_round(),
                    kind: NetEventKind::Connect,
                    node: me.raw(),
                    peer: Some(peer.raw()),
                    info: String::new(),
                });
            }
            LinkEvent::Closed { .. } => {
                // The writer table already dropped the link (generation
                // guarded). The peer may redial; if it stays silent the
                // barrier timeout and the give-up budget take over.
            }
            LinkEvent::Corrupt { peer, info, .. } => {
                // The reader refused bytes no honest peer can produce: an
                // oversized length prefix or an undecodable frame body.
                let kind = if info.contains("exceeds MAX_FRAME") {
                    "oversize_frame"
                } else {
                    "malformed_frame"
                };
                self.misbehave(peer, kind, info, sync, links);
            }
            LinkEvent::Frame { from, frame } => {
                if self.banned.contains(&from) {
                    // Frames already in flight when the eviction landed (or
                    // pushed through a fresh socket): ignored wholesale.
                    if let Some(rt) = &self.runtime {
                        rt.inc(&metric_name(
                            "net_banned_frames_dropped_total",
                            &[("peer", &from.raw().to_string())],
                        ));
                    }
                    return;
                }
                count_received(&self.runtime, from, &frame);
                // Per-peer ingress quota: one round's worth of frames and
                // bytes. Every frame past the quota is dropped and charged
                // as a flood strike, so a flooder burns through its strike
                // budget within the same round it floods.
                let over_quota = {
                    let discipline = self.discipline.entry(from).or_default();
                    discipline.frames_this_round += 1;
                    discipline.bytes_this_round += frame_quota_len(&frame);
                    discipline.frames_this_round > self.config.max_frames_per_round
                        || discipline.bytes_this_round > self.config.max_bytes_per_round
                };
                if over_quota {
                    let info = format!(
                        "ingress quota exceeded ({} frames max, {} bytes max per round)",
                        self.config.max_frames_per_round, self.config.max_bytes_per_round
                    );
                    self.misbehave(from, "flood", info, sync, links);
                    return;
                }
                match frame {
                    Frame::Hello { .. } => {} // handshake already consumed ours
                    Frame::Data { round, payload } => {
                        let Some(msg) = P::Msg::from_bytes(&payload) else {
                            // A payload the protocol codec refuses: no honest
                            // peer encodes one, so it is attributable malice,
                            // not line noise (TCP checksums the stream).
                            self.misbehave(
                                from,
                                "malformed_payload",
                                format!("undecodable Data payload for round {round}"),
                                sync,
                                links,
                            );
                            return;
                        };
                        let shared = MsgRef::new(msg);
                        let current = sync.current_round();
                        match sync.accept_data(from, round, MsgRef::clone(&shared)) {
                            DataOutcome::Delivered => {
                                trace(&mut self.tracer, || TraceEvent::Deliver {
                                    round,
                                    from: from.raw(),
                                    to: me.raw(),
                                    payload: format!("{:?}", shared.get()),
                                    adversary: false,
                                });
                            }
                            DataOutcome::Duplicate => {
                                trace(&mut self.tracer, || TraceEvent::DuplicateDrop {
                                    round,
                                    from: from.raw(),
                                    to: me.raw(),
                                    payload: format!("{:?}", shared.get()),
                                });
                            }
                            DataOutcome::Late => {
                                trace(&mut self.tracer, || TraceEvent::Net {
                                    round: current,
                                    kind: NetEventKind::LateDrop,
                                    node: me.raw(),
                                    peer: Some(from.raw()),
                                    info: format!("frame for past round {round}"),
                                });
                            }
                            DataOutcome::Stale => {
                                self.misbehave(
                                    from,
                                    "stale_replay",
                                    format!("round {round} replayed at round {current}"),
                                    sync,
                                    links,
                                );
                            }
                            DataOutcome::FarFuture => {
                                self.misbehave(
                                    from,
                                    "far_future",
                                    format!("round {round} pushed at round {current}"),
                                    sync,
                                    links,
                                );
                            }
                            DataOutcome::PostDone => {
                                self.misbehave(
                                    from,
                                    "post_done_data",
                                    format!("data for round {round} after its Done"),
                                    sync,
                                    links,
                                );
                            }
                        }
                    }
                    Frame::Done { round, decided } => {
                        let current = sync.current_round();
                        match sync.accept_done(from, round, decided) {
                            DoneOutcome::Accepted | DoneOutcome::Late => {}
                            DoneOutcome::OutOfWindow => {
                                self.misbehave(
                                    from,
                                    "done_out_of_window",
                                    format!("Done for round {round} at round {current}"),
                                    sync,
                                    links,
                                );
                            }
                            DoneOutcome::Conflict => {
                                self.misbehave(
                                    from,
                                    "done_conflict",
                                    format!(
                                        "conflicting decided flag for round {round} \
                                         (first marker stands)"
                                    ),
                                    sync,
                                    links,
                                );
                            }
                        }
                    }
                    Frame::SyncRequest { since } => {
                        let current = sync.current_round();
                        // One rejoin per peer per round: a crashed node asks
                        // once, so repeats within the same round are spam
                        // against the (relatively expensive) backfill path.
                        if self.sync_served.get(&from) == Some(&current) {
                            self.misbehave(
                                from,
                                "sync_spam",
                                format!("repeat SyncRequest within round {current}"),
                                sync,
                                links,
                            );
                            return;
                        }
                        self.sync_served.insert(from, current);
                        trace(&mut self.tracer, || TraceEvent::Net {
                            round: current,
                            kind: NetEventKind::SyncRequest,
                            node: me.raw(),
                            peer: Some(from.raw()),
                            info: format!("backfill requested since round {since}"),
                        });
                        // The requester crashed and came back: expect it at
                        // barriers again (even if the silence budget had given
                        // it up), with a clean slate.
                        sync.peer_rejoined(from);
                        trace(&mut self.tracer, || TraceEvent::Net {
                            round: current,
                            kind: NetEventKind::Rejoin,
                            node: me.raw(),
                            peer: Some(from.raw()),
                            info: "expected at barriers again".to_string(),
                        });
                        let oldest = self.history.keys().next().copied().unwrap_or(current);
                        let tips = Frame::SyncTips {
                            current_round: current,
                            oldest_retained: oldest,
                            decided: self.process.terminated(),
                        };
                        links.send(from, &tips);
                        count_sent(&self.runtime, from, &tips);
                        // Replay our own retained traffic addressed to the
                        // requester, round by round in send order — never
                        // third-party payloads, so backfilled frames stay as
                        // unforgeable as live ones. The response is hard-
                        // capped at `history_rounds` rounds regardless of
                        // what `since` claims.
                        for (&r, hist) in
                            self.history.range(since..).take(self.config.history_rounds)
                        {
                            let payloads: Vec<Vec<u8>> = hist
                                .sends
                                .iter()
                                .filter(|(dest, _)| {
                                    *dest == SentTo::All || *dest == SentTo::One(from)
                                })
                                .map(|(_, bytes)| bytes.clone())
                                .collect();
                            let (done, decided) = match hist.done {
                                Some(flag) => (true, flag),
                                None => (false, false),
                            };
                            let backfill = Frame::Backfill {
                                round: r,
                                done,
                                decided,
                                payloads,
                            };
                            links.send(from, &backfill);
                            count_sent(&self.runtime, from, &backfill);
                            if let Some(rt) = &self.runtime {
                                rt.inc("net_backfill_frames_served_total");
                            }
                            trace(&mut self.tracer, || TraceEvent::Net {
                                round: current,
                                kind: NetEventKind::Backfill,
                                node: me.raw(),
                                peer: Some(from.raw()),
                                info: format!("sent round {r}"),
                            });
                        }
                    }
                    Frame::SyncTips {
                        current_round,
                        oldest_retained,
                        decided,
                    } => {
                        // Informational: the peer's view of where the cluster
                        // is. Rounds below `oldest_retained` cannot be
                        // backfilled; they surface as omissions at our barrier.
                        trace(&mut self.tracer, || {
                            TraceEvent::Net {
                        round: sync.current_round(),
                        kind: NetEventKind::SyncTips,
                        node: me.raw(),
                        peer: Some(from.raw()),
                        info: format!(
                            "peer at round {current_round}, retains from {oldest_retained}, decided {decided}"
                        ),
                    }
                        });
                    }
                    Frame::Backfill {
                        round,
                        done,
                        decided,
                        payloads,
                    } => {
                        // Backfill is pull-only: it answers our SyncRequest.
                        // A peer pushing it unsolicited is abusing the
                        // rejoin path to inject traffic outside the live
                        // Data checks.
                        if !self.backfill_ok.contains(&from) {
                            self.misbehave(
                                from,
                                "unsolicited_backfill",
                                format!("backfill for round {round} never requested"),
                                sync,
                                links,
                            );
                            return;
                        }
                        if let Some(rt) = &self.runtime {
                            rt.inc("net_backfill_frames_received_total");
                        }
                        let current = sync.current_round();
                        let total = payloads.len();
                        let mut fresh = 0usize;
                        let mut malformed = false;
                        for payload in &payloads {
                            let Some(msg) = P::Msg::from_bytes(payload) else {
                                malformed = true; // charged once, below
                                continue;
                            };
                            if sync.accept_data(from, round, MsgRef::new(msg))
                                == DataOutcome::Delivered
                            {
                                fresh += 1;
                            }
                        }
                        if done {
                            sync.accept_done(from, round, decided);
                        }
                        if malformed {
                            self.misbehave(
                                from,
                                "malformed_payload",
                                format!("undecodable payload in backfill round {round}"),
                                sync,
                                links,
                            );
                        }
                        trace(&mut self.tracer, || TraceEvent::Net {
                            round: current,
                            kind: NetEventKind::Backfill,
                            node: me.raw(),
                            peer: Some(from.raw()),
                            info: format!("received round {round}: {fresh} of {total} delivered"),
                        });
                    }
                    // Client-protocol frames belong on the service's client
                    // listener ([`crate::service`]), not on an inter-node
                    // link. A peer that sends one here is confused or
                    // Byzantine either way; ignoring the frame is the same
                    // omission-shaped response as dropping a malformed
                    // payload.
                    Frame::Submit { .. }
                    | Frame::SubmitAck { .. }
                    | Frame::ReadPrefix { .. }
                    | Frame::PrefixChunk { .. } => {}
                }
            }
        }
    }
}

/// Builds the single-process [`MonitorView`] a networked node can offer.
fn single_node_view<'a, P: Process>(
    round: u64,
    me: NodeId,
    process: &'a P,
    decided_round: Option<u64>,
) -> MonitorView<'a, P> {
    static EMPTY: std::sync::OnceLock<BTreeSet<NodeId>> = std::sync::OnceLock::new();
    let empty = EMPTY.get_or_init(BTreeSet::new);
    let mut processes = BTreeMap::new();
    processes.insert(me, process);
    let mut decided_rounds = BTreeMap::new();
    if let Some(r) = decided_round {
        decided_rounds.insert(me, r);
    }
    MonitorView {
        round,
        processes,
        decided_rounds,
        faulty: empty,
        crashed: empty,
    }
}

/// Derives the per-(dialer, peer) retry policy: same base schedule, but a
/// jitter stream seeded from the pair, so a mass restart spreads its
/// redials instead of hammering every listener in lockstep.
fn pair_retry(base: RetryPolicy, me: NodeId, peer: NodeId) -> RetryPolicy {
    base.with_jitter_seed(base.jitter_seed ^ me.raw().rotate_left(32) ^ peer.raw())
}

/// Records an event only if the tracer is enabled, so a [`NoopTracer`]
/// costs neither the allocation nor the `Debug` formatting.
fn trace<T: Tracer>(tracer: &mut T, event: impl FnOnce() -> TraceEvent) {
    if tracer.enabled() {
        tracer.record(event());
    }
}

/// Runtime-metric names of the per-round phase timing histograms. Static
/// strings so the hot loop never formats a metric name.
const PHASE_STEP: &str = "net_round_phase_micros{phase=\"step\"}";
const PHASE_SEND: &str = "net_round_phase_micros{phase=\"send\"}";
const PHASE_DELIVER: &str = "net_round_phase_micros{phase=\"deliver\"}";
const PHASE_BARRIER: &str = "net_round_phase_micros{phase=\"barrier\"}";
const PHASE_JOURNAL: &str = "net_round_phase_micros{phase=\"journal\"}";

/// Counts one outgoing frame (frames and wire bytes, per peer) against the
/// runtime registry, if one is attached. The encode-for-length cost is paid
/// only in that case.
fn count_sent(runtime: &Option<SharedRuntimeMetrics>, peer: NodeId, frame: &Frame) {
    if let Some(rt) = runtime {
        let peer = peer.raw().to_string();
        let bytes = frame.encoded_len() as u64;
        rt.with(|m| {
            m.inc(&metric_name("net_frames_sent_total", &[("peer", &peer)]));
            m.add(
                &metric_name("net_bytes_sent_total", &[("peer", &peer)]),
                bytes,
            );
        });
    }
}

/// Counts one incoming frame against the runtime registry, if attached.
fn count_received(runtime: &Option<SharedRuntimeMetrics>, peer: NodeId, frame: &Frame) {
    if let Some(rt) = runtime {
        let peer = peer.raw().to_string();
        let bytes = frame.encoded_len() as u64;
        rt.with(|m| {
            m.inc(&metric_name(
                "net_frames_received_total",
                &[("peer", &peer)],
            ));
            m.add(
                &metric_name("net_bytes_received_total", &[("peer", &peer)]),
                bytes,
            );
        });
    }
}

/// Elapsed microseconds since `from`, saturated into `u64`.
fn micros_since(from: Instant) -> u64 {
    u64::try_from(from.elapsed().as_micros()).unwrap_or(u64::MAX)
}
