//! [`NetNode`]: one cluster member — a [`Process`] plus the machinery that
//! drives it over TCP in lock-step rounds.
//!
//! The run loop mirrors the simulator's `SyncEngine` exactly, one node at a
//! time: deliver the previous round's inbox, step the process, flush its
//! outbox to every peer, publish the `Done` barrier marker, wait at the
//! barrier, advance. A peer that misses the barrier deadline is charged
//! with an **omission** for the round (its traffic, if any, arrives too
//! late and is dropped) — precisely a fault the paper's model already
//! accounts for, which is why correctness does not depend on tuning the
//! timeout and why `uba-core`'s monitors attach unchanged.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::time::{Duration, Instant};

use uba_sim::{
    Context, Dest, Envelope, MonitorView, MsgRef, NodeId, Outbox, Process, RoundMonitor,
    ViolationReport,
};
use uba_trace::{NetEventKind, NoopTracer, TraceEvent, Tracer};

use crate::conn::{dial_peer, spawn_acceptor, LinkEvent, Links, RetryPolicy};
use crate::sync::{DataOutcome, RoundSynchronizer};
use crate::wire::{Frame, Wire};

/// Tuning knobs of a networked node.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// How long to wait at the round barrier before charging the missing
    /// peers with an omission for the round.
    pub round_timeout: Duration,
    /// Backoff schedule for dialing peers (initial mesh setup and
    /// mid-run redials).
    pub retry: RetryPolicy,
    /// Additional budget for the initial full-mesh setup: peers of a
    /// just-launched cluster come up in arbitrary order.
    pub setup_timeout: Duration,
    /// Abort with [`NetError::RoundLimit`] if no decision was reached after
    /// this many rounds (safety net against livelock, like the engine's
    /// `run_to_completion` bound).
    pub max_rounds: u64,
    /// After this many *consecutive* missed barriers a peer is declared
    /// gone and dropped from the barrier, so one dead peer costs bounded
    /// waiting instead of a timeout every round forever.
    pub give_up_after: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            round_timeout: Duration::from_secs(2),
            retry: RetryPolicy::default(),
            setup_timeout: Duration::from_secs(10),
            max_rounds: 10_000,
            give_up_after: 5,
        }
    }
}

/// Why a networked run ended without producing a report.
#[derive(Debug)]
pub enum NetError {
    /// Transport-level failure (listener died, no peer ever reachable).
    Io(io::Error),
    /// The round limit elapsed without the cluster reaching a decision.
    RoundLimit(u64),
    /// An attached [`RoundMonitor`] flagged an invariant violation.
    InvariantViolated(ViolationReport),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(err) => write!(f, "transport error: {err}"),
            NetError::RoundLimit(limit) => {
                write!(f, "no decision within the {limit}-round limit")
            }
            NetError::InvariantViolated(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(err: io::Error) -> Self {
        NetError::Io(err)
    }
}

/// What one node's networked run produced.
#[derive(Debug)]
pub struct NetReport<O, T> {
    /// The process's output, if it decided.
    pub output: Option<O>,
    /// The round the process decided in, if it did.
    pub decided_round: Option<u64>,
    /// Rounds executed (including the shutdown round).
    pub rounds: u64,
    /// Barrier timeouts charged over the whole run.
    pub timeouts: u64,
    /// Wall-clock duration of each round, in microseconds — the raw data
    /// behind the T11 latency table.
    pub round_micros: Vec<u64>,
    /// The tracer handed in via [`NetNode::with_tracer`], returned so the
    /// caller can inspect or dump the collected events.
    pub tracer: T,
}

/// One member of a networked cluster: a [`Process`] driven over TCP.
///
/// Generic over the process and the attached [`Tracer`] (default: none).
/// The process's payload type must implement [`Wire`] — the impls for all
/// `uba-core` payloads ship in [`crate::codec`].
///
/// See [`run_local_cluster`](crate::run_local_cluster) for the one-call
/// way to run a whole localhost cluster; `NetNode` is the building block
/// when each member runs in its own OS process.
pub struct NetNode<P: Process, T: Tracer = NoopTracer> {
    process: P,
    config: NetConfig,
    tracer: T,
    monitor: Option<Box<dyn RoundMonitor<P> + Send>>,
}

impl<P: Process> NetNode<P, NoopTracer> {
    /// Wraps `process` with the given transport configuration.
    pub fn new(process: P, config: NetConfig) -> Self {
        NetNode {
            process,
            config,
            tracer: NoopTracer,
            monitor: None,
        }
    }
}

impl<P: Process, T: Tracer> NetNode<P, T> {
    /// Attaches a tracer; it receives both the engine-style events
    /// (round boundaries, sends, deliveries, duplicate drops) and the
    /// transport-level [`TraceEvent::Net`] events.
    pub fn with_tracer<T2: Tracer>(self, tracer: T2) -> NetNode<P, T2> {
        NetNode {
            process: self.process,
            config: self.config,
            tracer,
            monitor: self.monitor,
        }
    }

    /// Attaches an online invariant monitor, checked after every round
    /// against this node's local state (a single-process
    /// [`MonitorView`]; global properties such as agreement need a view of
    /// the whole cluster and are checked by the harness after the run).
    pub fn with_monitor(mut self, monitor: impl RoundMonitor<P> + Send + 'static) -> Self {
        self.monitor = Some(Box::new(monitor));
        self
    }
}

impl<P, T> NetNode<P, T>
where
    P: Process,
    P::Msg: Wire,
    T: Tracer,
{
    /// Runs the node to completion: sets up the mesh, executes rounds until
    /// the whole cluster has decided (or until `max_rounds`), and reports.
    ///
    /// `listener` must already be bound to this node's address in `roster`;
    /// binding before spawning is what makes cluster startup race-free.
    /// `roster` maps every member (including this node) to its address.
    ///
    /// # Errors
    ///
    /// [`NetError::RoundLimit`] if the cluster never decides,
    /// [`NetError::InvariantViolated`] from an attached monitor, or
    /// [`NetError::Io`] if the transport fails outright.
    pub fn run(
        mut self,
        listener: TcpListener,
        roster: &BTreeMap<NodeId, SocketAddr>,
    ) -> Result<NetReport<P::Output, T>, NetError> {
        let me = self.process.id();
        let peers: Vec<NodeId> = roster.keys().copied().filter(|&p| p != me).collect();
        let links = Links::new();
        let (events_tx, events) = mpsc::channel::<LinkEvent>();
        spawn_acceptor(listener, me, links.clone(), events_tx.clone());

        let mut sync = RoundSynchronizer::<P::Msg>::new(me, peers.iter().copied());

        // Dial every peer with a larger id; smaller ids dial us.
        for &peer in peers.iter().filter(|&&p| p > me) {
            let addr = roster[&peer];
            dial_peer(
                addr,
                me,
                peer,
                self.config.retry,
                &links,
                &events_tx,
                |attempt| {
                    trace(&mut self.tracer, || TraceEvent::Net {
                        round: 0,
                        kind: NetEventKind::Retry,
                        node: me.raw(),
                        peer: Some(peer.raw()),
                        info: format!("dial attempt {attempt} failed"),
                    });
                },
            )?;
        }

        // Wait for the full mesh. Fast peers may already be sending round-1
        // traffic while we wait, so frames are processed, not discarded.
        let mut connected: BTreeSet<NodeId> = BTreeSet::new();
        let setup_deadline = Instant::now() + self.config.setup_timeout;
        while !peers.iter().all(|p| connected.contains(p)) {
            let remaining = setup_deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match events.recv_timeout(remaining) {
                Ok(event) => {
                    self.handle_link_event(event, &mut sync, &mut connected, me);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(NetError::Io(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "event channel closed during setup",
                    )))
                }
            }
        }
        for &peer in peers.iter().filter(|p| !connected.contains(p)) {
            // Never came up: run without it, as if it crashed before round 1.
            sync.peer_gone(peer);
            trace(&mut self.tracer, || TraceEvent::Net {
                round: 0,
                kind: NetEventKind::PeerGone,
                node: me.raw(),
                peer: Some(peer.raw()),
                info: "unreachable during setup".to_string(),
            });
        }

        let mut inbox: Vec<Envelope<P::Msg>> = Vec::new();
        let mut decided_round: Option<u64> = None;
        let mut timeouts: u64 = 0;
        let mut round_micros: Vec<u64> = Vec::new();

        loop {
            let round = sync.current_round();
            if round > self.config.max_rounds {
                return Err(NetError::RoundLimit(self.config.max_rounds));
            }
            let started = Instant::now();
            trace(&mut self.tracer, || TraceEvent::RoundBegin { round });

            // Step the process (terminated processes leave the computation
            // and send nothing, exactly as in the engine).
            if !self.process.terminated() {
                let mut outbox = Outbox::new();
                let mut ctx = Context::new(round, &inbox, &mut outbox);
                self.process.on_round(&mut ctx);
                if decided_round.is_none() && self.process.terminated() {
                    decided_round = Some(round);
                }
                for outgoing in outbox.drain() {
                    self.dispatch(outgoing.dest, outgoing.msg, round, &mut sync, &links, me);
                }
            }

            // Publish the barrier marker: all our round-`round` data is out.
            let decided = self.process.terminated();
            for &peer in sync.expected().collect::<Vec<_>>().iter() {
                links.send(peer, &Frame::Done { round, decided });
            }

            // Wait at the barrier.
            let deadline = started + self.config.round_timeout;
            while !sync.barrier_complete() {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match events.recv_timeout(remaining) {
                    Ok(event) => {
                        self.handle_link_event(event, &mut sync, &mut connected, me);
                    }
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(NetError::Io(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            "event channel closed mid-round",
                        )))
                    }
                }
            }

            // Charge whoever missed the deadline with an omission.
            let missed = sync.timed_out();
            if !missed.is_empty() {
                timeouts += missed.len() as u64;
                let waited = self.config.round_timeout.as_millis();
                for &peer in &missed {
                    trace(&mut self.tracer, || TraceEvent::Net {
                        round,
                        kind: NetEventKind::Timeout,
                        node: me.raw(),
                        peer: Some(peer.raw()),
                        info: format!("silent at barrier after {waited}ms"),
                    });
                    if sync.silent_rounds(peer) >= self.config.give_up_after {
                        sync.peer_gone(peer);
                        trace(&mut self.tracer, || TraceEvent::Net {
                            round,
                            kind: NetEventKind::PeerGone,
                            node: me.raw(),
                            peer: Some(peer.raw()),
                            info: format!(
                                "missed {} consecutive barriers",
                                self.config.give_up_after
                            ),
                        });
                    }
                }
            }

            let finished = sync.all_decided(decided);
            let delivered = sync.advance();
            trace(&mut self.tracer, || TraceEvent::RoundEnd {
                round,
                deliveries: delivered.len() as u64,
            });
            trace(&mut self.tracer, || TraceEvent::Net {
                round,
                kind: NetEventKind::RoundAdvance,
                node: me.raw(),
                peer: None,
                info: String::new(),
            });
            round_micros.push(started.elapsed().as_micros() as u64);

            if let Some(monitor) = &mut self.monitor {
                let view = single_node_view(round, me, &self.process, decided_round);
                if let Err(report) = monitor.check(&view) {
                    trace(&mut self.tracer, || TraceEvent::MonitorVerdict {
                        round,
                        monitor: report.spec.clone(),
                        ok: false,
                        nodes: report.nodes.iter().map(|n| n.raw()).collect(),
                        details: report.violations.clone(),
                    });
                    return Err(NetError::InvariantViolated(report));
                }
            }

            if finished {
                return Ok(NetReport {
                    output: self.process.output(),
                    decided_round,
                    rounds: round,
                    timeouts,
                    round_micros,
                    tracer: self.tracer,
                });
            }

            inbox = delivered
                .into_iter()
                .map(|(from, msg)| Envelope::from_shared(from, msg))
                .collect();
        }
    }

    /// Sends one outgoing message: encodes the payload once, fans it out to
    /// the addressed peers, and self-delivers where the model requires.
    fn dispatch(
        &mut self,
        dest: Dest,
        msg: P::Msg,
        round: u64,
        sync: &mut RoundSynchronizer<P::Msg>,
        links: &Links,
        me: NodeId,
    ) {
        let shared = MsgRef::new(msg);
        trace(&mut self.tracer, || TraceEvent::Send {
            round,
            from: me.raw(),
            to: match dest {
                Dest::Broadcast => None,
                Dest::To(to) => Some(to.raw()),
            },
            payload: format!("{:?}", shared.get()),
            adversary: false,
        });
        let frame = Frame::Data {
            round,
            payload: shared.get().to_bytes(),
        };
        match dest {
            Dest::Broadcast => {
                // A broadcast reaches every present node including the
                // sender (the engine's self-delivery rule).
                for peer in sync.expected().collect::<Vec<_>>() {
                    links.send(peer, &frame);
                }
                sync.self_deliver(shared);
            }
            Dest::To(to) if to == me => {
                sync.self_deliver(shared);
            }
            Dest::To(to) => {
                links.send(to, &frame);
            }
        }
    }

    /// Feeds one link event into the synchronizer, tracing what happened.
    fn handle_link_event(
        &mut self,
        event: LinkEvent,
        sync: &mut RoundSynchronizer<P::Msg>,
        connected: &mut BTreeSet<NodeId>,
        me: NodeId,
    ) {
        match event {
            LinkEvent::Connected { peer, .. } => {
                connected.insert(peer);
                trace(&mut self.tracer, || TraceEvent::Net {
                    round: sync.current_round(),
                    kind: NetEventKind::Connect,
                    node: me.raw(),
                    peer: Some(peer.raw()),
                    info: String::new(),
                });
            }
            LinkEvent::Closed { .. } => {
                // The writer table already dropped the link (generation
                // guarded). The peer may redial; if it stays silent the
                // barrier timeout and the give-up budget take over.
            }
            LinkEvent::Frame { from, frame } => match frame {
                Frame::Hello { .. } => {} // handshake already consumed ours
                Frame::Data { round, payload } => {
                    let Some(msg) = P::Msg::from_bytes(&payload) else {
                        return; // malformed payload from this peer: drop it
                    };
                    let shared = MsgRef::new(msg);
                    let current = sync.current_round();
                    match sync.accept_data(from, round, MsgRef::clone(&shared)) {
                        DataOutcome::Delivered => {
                            trace(&mut self.tracer, || TraceEvent::Deliver {
                                round,
                                from: from.raw(),
                                to: me.raw(),
                                payload: format!("{:?}", shared.get()),
                                adversary: false,
                            });
                        }
                        DataOutcome::Duplicate => {
                            trace(&mut self.tracer, || TraceEvent::DuplicateDrop {
                                round,
                                from: from.raw(),
                                to: me.raw(),
                                payload: format!("{:?}", shared.get()),
                            });
                        }
                        DataOutcome::Late => {
                            trace(&mut self.tracer, || TraceEvent::Net {
                                round: current,
                                kind: NetEventKind::LateDrop,
                                node: me.raw(),
                                peer: Some(from.raw()),
                                info: format!("frame for past round {round}"),
                            });
                        }
                    }
                }
                Frame::Done { round, decided } => {
                    sync.accept_done(from, round, decided);
                }
            },
        }
    }
}

/// Builds the single-process [`MonitorView`] a networked node can offer.
fn single_node_view<'a, P: Process>(
    round: u64,
    me: NodeId,
    process: &'a P,
    decided_round: Option<u64>,
) -> MonitorView<'a, P> {
    static EMPTY: std::sync::OnceLock<BTreeSet<NodeId>> = std::sync::OnceLock::new();
    let empty = EMPTY.get_or_init(BTreeSet::new);
    let mut processes = BTreeMap::new();
    processes.insert(me, process);
    let mut decided_rounds = BTreeMap::new();
    if let Some(r) = decided_round {
        decided_rounds.insert(me, r);
    }
    MonitorView {
        round,
        processes,
        decided_rounds,
        faulty: empty,
        crashed: empty,
    }
}

/// Records an event only if the tracer is enabled, so a [`NoopTracer`]
/// costs neither the allocation nor the `Debug` formatting.
fn trace<T: Tracer>(tracer: &mut T, event: impl FnOnce() -> TraceEvent) {
    if tracer.enabled() {
        tracer.record(event());
    }
}
