//! A tiny blocking Prometheus exposition endpoint.
//!
//! [`serve_metrics`] binds a listener and answers every `GET /metrics`
//! (and `GET /`) with the current [`SharedRuntimeMetrics`] rendering in
//! the Prometheus text format 0.0.4. One thread, one connection at a
//! time, `Connection: close` — a scrape endpoint for a cluster node, not
//! a web server. `std`-only like the rest of the crate.
//!
//! The endpoint holds a *clone* of the registry handle, so it observes
//! every update the node (or engine) makes, live, without any
//! coordination beyond the registry's internal mutex.
//!
//! # Examples
//!
//! ```
//! use uba_net::serve_metrics;
//! use uba_trace::SharedRuntimeMetrics;
//!
//! let registry = SharedRuntimeMetrics::new();
//! registry.inc("demo_total");
//! let server = serve_metrics("127.0.0.1:0", registry)?;
//! let text = uba_net::scrape_metrics(server.addr())?;
//! assert!(text.contains("demo_total 1"));
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use uba_trace::SharedRuntimeMetrics;

/// How long one scrape connection may take to send its request line and
/// headers before the server gives up on it.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(2);

/// A running metrics endpoint; dropping it without
/// [`shutdown`](Self::shutdown) leaves the acceptor thread serving until
/// the process exits (harmless for a long-lived node, deliberate for
/// short-lived tests that outlive their cluster).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the acceptor thread and joins it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr` and serves the registry's Prometheus rendering on it from
/// a background thread.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_metrics(
    addr: impl ToSocketAddrs,
    registry: SharedRuntimeMetrics,
) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = thread::Builder::new()
        .name(format!("metrics-http-{addr}"))
        .spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Serve inline: scrapes are rare and tiny, so a second
                // thread per connection would buy nothing.
                let _ = serve_one(stream, &registry);
            }
        })
        .expect("spawning the metrics endpoint thread");
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// Answers a single HTTP exchange on `stream`.
fn serve_one(mut stream: TcpStream, registry: &SharedRuntimeMetrics) -> io::Result<()> {
    stream.set_read_timeout(Some(REQUEST_TIMEOUT))?;
    stream.set_write_timeout(Some(REQUEST_TIMEOUT))?;
    let request = read_request_head(&mut stream)?;
    let path = request_path(&request);
    let (status, body) = match path {
        Some("/") | Some("/metrics") => ("200 OK", registry.render_prometheus()),
        Some(_) => ("404 Not Found", "only /metrics lives here\n".to_string()),
        None => ("400 Bad Request", "malformed request\n".to_string()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.shutdown(Shutdown::Both)
}

/// Reads until the end of the request headers (`\r\n\r\n`) or a size cap.
fn read_request_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 256];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > 8 * 1024 {
            break; // oversized header block: parse what we have
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(err) => return Err(err),
        }
    }
    Ok(String::from_utf8_lossy(&head).into_owned())
}

/// Extracts the path of a `GET <path> HTTP/1.x` request line.
fn request_path(request: &str) -> Option<&str> {
    let line = request.lines().next()?;
    let mut parts = line.split_ascii_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let target = parts.next()?;
    // Strip any query string: scrape tools may append one.
    Some(target.split('?').next().unwrap_or(target))
}

/// Scrapes `addr` once over plain HTTP and returns the exposition body.
///
/// The client half of [`serve_metrics`], shared by the cluster binary's
/// scrape helper, the CI smoke job, and the end-to-end tests.
///
/// # Errors
///
/// Connection or read failures, plus [`io::ErrorKind::InvalidData`] when
/// the response is not a 200 with a body.
pub fn scrape_metrics(addr: SocketAddr) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(REQUEST_TIMEOUT))?;
    stream.set_write_timeout(Some(REQUEST_TIMEOUT))?;
    let request = format!(
        "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nAccept: text/plain\r\nConnection: close\r\n\r\n"
    );
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "response without header block")
    })?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("scrape failed: {status}"),
        ));
    }
    Ok(body.to_string())
}

/// Reads the value of one series (exact full name, labels included) out of
/// an exposition body. Helper for scrape consumers; returns the **last**
/// occurrence, which in well-formed output is the only one.
pub fn series_value(body: &str, name: &str) -> Option<u64> {
    let mut found = None;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix(name) {
            if let Some(value) = rest.strip_prefix(' ') {
                if let Ok(parsed) = value.trim().parse() {
                    found = Some(parsed);
                }
            }
        }
    }
    found
}

/// Sums every series of a family (lines starting with `name{` or exactly
/// `name `) in an exposition body — e.g. total frames sent across peers.
pub fn family_sum(body: &str, name: &str) -> u64 {
    let mut sum = 0u64;
    for line in body.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let family = series.split('{').next().unwrap_or(series);
        if family == name {
            if let Ok(parsed) = value.trim().parse::<u64>() {
                sum += parsed;
            }
        }
    }
    sum
}

/// The metrics port of cluster member `index` when member endpoints are
/// laid out consecutively from `base` (the `--metrics-addr HOST:PORT`
/// convention of the `cluster` binary). Returns `None` when `base + index`
/// does not fit in a `u16` — callers must reject such a layout up front
/// instead of letting the port arithmetic silently wrap onto unrelated
/// (possibly privileged) ports.
pub fn member_port(base: u16, index: u64) -> Option<u16> {
    u16::try_from(index)
        .ok()
        .and_then(|offset| base.checked_add(offset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_ports_are_consecutive_and_overflow_checked() {
        assert_eq!(member_port(9100, 0), Some(9100));
        assert_eq!(member_port(9100, 3), Some(9103));
        assert_eq!(member_port(u16::MAX, 0), Some(u16::MAX));
        assert_eq!(member_port(u16::MAX, 1), None, "would wrap past 65535");
        assert_eq!(member_port(65530, 6), None);
        assert_eq!(member_port(1, u64::from(u16::MAX)), None);
        assert_eq!(member_port(0, 1 << 32), None, "index alone overflows");
    }

    #[test]
    fn serves_the_registry_and_404s_elsewhere() {
        let registry = SharedRuntimeMetrics::new();
        registry.inc("hits_total");
        registry.observe_micros("t_micros", 42);
        let server = serve_metrics("127.0.0.1:0", registry.clone()).expect("bind");
        let addr = server.addr();

        let body = scrape_metrics(addr).expect("scrape");
        assert!(body.contains("hits_total 1"));
        assert!(body.contains("t_micros_bucket{le=\"+Inf\"} 1"));

        // A second scrape sees live updates.
        registry.inc("hits_total");
        let body = scrape_metrics(addr).expect("second scrape");
        assert_eq!(series_value(&body, "hits_total"), Some(2));

        // Non-metrics paths 404 but the connection still answers cleanly.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 404"));

        server.shutdown();
    }

    #[test]
    fn family_sum_adds_labelled_series() {
        let body = "# TYPE f counter\nf{peer=\"1\"} 2\nf{peer=\"2\"} 3\ng 9\n";
        assert_eq!(family_sum(body, "f"), 5);
        assert_eq!(family_sum(body, "g"), 9);
        assert_eq!(family_sum(body, "missing"), 0);
        assert_eq!(series_value(body, "f{peer=\"2\"}"), Some(3));
    }
}
