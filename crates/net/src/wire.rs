//! The wire format: a [`Wire`] codec for protocol payloads and a
//! length-prefixed [`Frame`] codec for the transport itself.
//!
//! # Format
//!
//! Everything on the wire is little-endian and length-prefixed:
//!
//! ```text
//! frame   := u32 body_len | body            (body_len caps at MAX_FRAME)
//! body    := 0x00 u64 node                  Hello       (handshake)
//!          | 0x01 u64 round | payload       Data        (one protocol message)
//!          | 0x02 u64 round | u8 decided    Done        (round barrier marker)
//!          | 0x03 u64 since                 SyncRequest (rejoin: backfill ask)
//!          | 0x04 u64 current | u64 oldest
//!            | u8 decided                   SyncTips    (rejoin: responder state)
//!          | 0x05 u64 round | u8 done
//!            | u8 decided | vec payloads    Backfill    (rejoin: replayed round)
//!          | 0x06 string key | vec u8 bytes Submit      (client: append request)
//!          | 0x07 u32 shard | u64 seq       SubmitAck   (client: slot assigned)
//!          | 0x08 u32 shard | u64 from      ReadPrefix  (client: prefix ask)
//!          | 0x09 u32 shard | u64 from
//!            | u8 sealed | vec records      PrefixChunk (client: prefix answer)
//! payload := whatever the payload type's [`Wire`] impl wrote
//! ```
//!
//! The sender identifier travels **only** in the `Hello` handshake: every
//! later frame is attributed to the id pinned at handshake time, never to a
//! per-message claim. That is the transport-level realization of the
//! model's axiom that the sender id of a direct message cannot be forged
//! (on localhost the handshake is trusted; a production deployment would
//! back it with transport authentication such as mTLS — see DESIGN.md §8).
//!
//! [`Wire`] is deliberately minimal — hand-rolled, canonical, and
//! dependency-free, matching the workspace's vendored-deps policy (no
//! serde). A canonical encoding matters beyond convenience: the round
//! synchronizer deduplicates `(sender, payload)` pairs per round on the
//! *decoded* value, so encode/decode must round-trip exactly.

use std::io::{self, Read, Write};

use uba_sim::NodeId;

/// Hard cap on the body length of a single frame (16 MiB). A corrupt or
/// malicious length prefix must not make the receiver allocate unbounded
/// memory before reading a single payload byte.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Types that can be carried as a protocol payload on the wire.
///
/// Implementations must be **canonical**: `decode(encode(x)) == x`, and
/// equal values encode to identical bytes. The round synchronizer relies on
/// this to apply the model's per-round `(sender, payload)` duplicate rule
/// to decoded values.
///
/// # Examples
///
/// ```
/// use uba_net::Wire;
///
/// let mut buf = Vec::new();
/// (7u64, String::from("hi")).encode(&mut buf);
/// let back = <(u64, String)>::from_bytes(&buf).unwrap();
/// assert_eq!(back, (7, "hi".to_string()));
/// ```
pub trait Wire: Sized {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `input`, advancing it past the
    /// consumed bytes. `None` on malformed input.
    fn decode(input: &mut &[u8]) -> Option<Self>;

    /// The canonical encoding as a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a value that must consume `bytes` exactly (trailing garbage
    /// is malformed input, not padding).
    fn from_bytes(mut bytes: &[u8]) -> Option<Self> {
        let value = Self::decode(&mut bytes)?;
        bytes.is_empty().then_some(value)
    }
}

/// Splits `n` bytes off the front of `input`.
fn take<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Some(head)
}

macro_rules! impl_wire_le_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(bytes.try_into().expect("sized")))
            }
        }
    )*};
}

impl_wire_le_int!(u8, u16, u32, u64, i64);

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        // Only 0 and 1 are canonical: a bool must have exactly one encoding.
        match u8::decode(input)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

/// `f64` travels as its IEEE-754 bit pattern, so every value (including
/// negative zero) round-trips exactly.
impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(f64::from_bits(u64::decode(input)?))
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        // Guard the pre-allocation: `len` is attacker-controlled until the
        // items actually decode.
        let mut items = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            items.push(T::decode(input)?);
        }
        Some(items)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(None),
            1 => Some(Some(T::decode(input)?)),
            _ => None,
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?))
    }
}

impl Wire for NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.raw().encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(NodeId::new(u64::decode(input)?))
    }
}

/// One transport frame, as read off (or written onto) a TCP stream.
///
/// The protocol payload inside [`Frame::Data`] stays opaque bytes here;
/// the round synchronizer decodes it with the process's payload type so
/// the transport itself is payload-agnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Handshake: the sending endpoint announces its node id. First frame
    /// on every connection, in both directions; pins the sender id for the
    /// connection's lifetime.
    Hello {
        /// The announcing node.
        node: NodeId,
    },
    /// One protocol message, sent during `round` and due for delivery at
    /// the start of `round + 1`.
    Data {
        /// The round the message was sent in.
        round: u64,
        /// The [`Wire`]-encoded payload.
        payload: Vec<u8>,
    },
    /// Round barrier marker: the sender finished sending for `round`.
    /// Because TCP preserves order, receiving `Done { round }` guarantees
    /// every `Data { round }` frame from that peer has already arrived.
    Done {
        /// The completed round.
        round: u64,
        /// Whether the sender's process has terminated with an output. Once
        /// every member reports `true` at the same barrier, the cluster
        /// shuts down in unison.
        decided: bool,
    },
    /// A recovering node asks a peer to resend what it missed: every frame
    /// the *peer itself* sent (broadcasts and point-to-point messages
    /// addressed to the requester) in rounds `>= since`. Receiving this also
    /// re-admits the requester to the responder's barrier expectations if it
    /// had been declared gone. Sender attribution is unforgeable, so a
    /// responder only ever replays its **own** traffic — never third-party
    /// messages it happens to have received.
    SyncRequest {
        /// First round the requester is missing.
        since: u64,
    },
    /// A responder's answer header to a [`Frame::SyncRequest`]: where it
    /// stands, so the requester can tell how much of the gap the following
    /// [`Frame::Backfill`] frames will cover.
    SyncTips {
        /// The responder's current (not yet barrier-released) round.
        current_round: u64,
        /// The oldest round still in the responder's send history; rounds
        /// before it have been pruned and cannot be backfilled.
        oldest_retained: u64,
        /// Whether the responder's process has terminated with an output.
        decided: bool,
    },
    /// One round's worth of the responder's own past sends, replayed to a
    /// recovering peer. Ordinary per-round `(sender, payload)` dedup makes
    /// re-delivery of anything the requester already has harmless.
    Backfill {
        /// The round the replayed messages were originally sent in.
        round: u64,
        /// Whether the responder had published `Done` for this round (it
        /// has, for any round its barrier already released).
        done: bool,
        /// The `decided` flag the responder's `Done { round }` carried.
        decided: bool,
        /// The replayed [`Wire`]-encoded payloads, in original send order.
        payloads: Vec<Vec<u8>>,
    },
    /// A client asks the `logd` service to append `payload` under `key`.
    /// The server hashes the key to a shard, assigns the submission the
    /// shard's next sequence number, and answers [`Frame::SubmitAck`].
    /// Resubmitting an identical `(key, payload)` pair is idempotent: the
    /// original slot is re-acknowledged, not a new one.
    Submit {
        /// The client-chosen key; it decides the shard and nothing else.
        key: String,
        /// The opaque client payload to order.
        payload: Vec<u8>,
    },
    /// The service's answer to a [`Frame::Submit`]: the submission now owns
    /// slot `seq` of shard `shard`'s ingress queue and is guaranteed to
    /// appear exactly once in that shard's finalized prefix (the service
    /// stops acking before its ordering cutoff, so an ack is a durability
    /// promise, not best-effort).
    SubmitAck {
        /// The shard the key hashed to.
        shard: u32,
        /// The per-shard ingress sequence number assigned to the submission.
        seq: u64,
    },
    /// A client asks for one shard's finalized prefix, starting at record
    /// index `from` (so a tailing reader only transfers what it is missing).
    ReadPrefix {
        /// The shard to read.
        shard: u32,
        /// First record index the client wants (0 for the whole prefix).
        from: u64,
    },
    /// The service's answer to a [`Frame::ReadPrefix`]: the finalized
    /// records of `shard` from index `from` onward, in log order. The
    /// records stay opaque bytes at the transport layer, exactly like
    /// [`Frame::Data`] payloads; the service layer decodes them.
    PrefixChunk {
        /// The shard being read.
        shard: u32,
        /// Index of the first record in `records`.
        from: u64,
        /// Whether the shard's log is sealed: the service has shut down its
        /// ordering instance and the prefix will never grow again.
        sealed: bool,
        /// The [`Wire`]-encoded finalized records, in log order.
        records: Vec<Vec<u8>>,
    },
}

const TAG_HELLO: u8 = 0x00;
const TAG_DATA: u8 = 0x01;
const TAG_DONE: u8 = 0x02;
const TAG_SYNC_REQUEST: u8 = 0x03;
const TAG_SYNC_TIPS: u8 = 0x04;
const TAG_BACKFILL: u8 = 0x05;
const TAG_SUBMIT: u8 = 0x06;
const TAG_SUBMIT_ACK: u8 = 0x07;
const TAG_READ_PREFIX: u8 = 0x08;
const TAG_PREFIX_CHUNK: u8 = 0x09;

impl Frame {
    /// Total bytes this frame occupies on the wire: the 4-byte length
    /// prefix plus the encoded body. Costs one throwaway encoding, so the
    /// runtime-metrics byte counters call it only when a registry is
    /// attached.
    pub fn encoded_len(&self) -> usize {
        let mut body = Vec::with_capacity(32);
        self.encode_body(&mut body);
        4 + body.len()
    }

    /// Encodes the frame body (everything after the length prefix).
    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { node } => {
                out.push(TAG_HELLO);
                node.encode(out);
            }
            Frame::Data { round, payload } => {
                out.push(TAG_DATA);
                round.encode(out);
                out.extend_from_slice(payload);
            }
            Frame::Done { round, decided } => {
                out.push(TAG_DONE);
                round.encode(out);
                decided.encode(out);
            }
            Frame::SyncRequest { since } => {
                out.push(TAG_SYNC_REQUEST);
                since.encode(out);
            }
            Frame::SyncTips {
                current_round,
                oldest_retained,
                decided,
            } => {
                out.push(TAG_SYNC_TIPS);
                current_round.encode(out);
                oldest_retained.encode(out);
                decided.encode(out);
            }
            Frame::Backfill {
                round,
                done,
                decided,
                payloads,
            } => {
                out.push(TAG_BACKFILL);
                round.encode(out);
                done.encode(out);
                decided.encode(out);
                payloads.encode(out);
            }
            Frame::Submit { key, payload } => {
                out.push(TAG_SUBMIT);
                key.encode(out);
                payload.encode(out);
            }
            Frame::SubmitAck { shard, seq } => {
                out.push(TAG_SUBMIT_ACK);
                shard.encode(out);
                seq.encode(out);
            }
            Frame::ReadPrefix { shard, from } => {
                out.push(TAG_READ_PREFIX);
                shard.encode(out);
                from.encode(out);
            }
            Frame::PrefixChunk {
                shard,
                from,
                sealed,
                records,
            } => {
                out.push(TAG_PREFIX_CHUNK);
                shard.encode(out);
                from.encode(out);
                sealed.encode(out);
                records.encode(out);
            }
        }
    }

    /// Decodes a frame body. Every variant except [`Frame::Data`] (whose
    /// payload is the rest of the body by construction) must consume the
    /// body exactly: trailing bytes are malformed input, not padding.
    fn decode_body(mut body: &[u8]) -> Option<Frame> {
        let input = &mut body;
        let frame = match u8::decode(input)? {
            TAG_HELLO => Frame::Hello {
                node: NodeId::decode(input)?,
            },
            TAG_DATA => {
                return Some(Frame::Data {
                    round: u64::decode(input)?,
                    payload: input.to_vec(),
                });
            }
            TAG_DONE => Frame::Done {
                round: u64::decode(input)?,
                decided: bool::decode(input)?,
            },
            TAG_SYNC_REQUEST => Frame::SyncRequest {
                since: u64::decode(input)?,
            },
            TAG_SYNC_TIPS => Frame::SyncTips {
                current_round: u64::decode(input)?,
                oldest_retained: u64::decode(input)?,
                decided: bool::decode(input)?,
            },
            TAG_BACKFILL => Frame::Backfill {
                round: u64::decode(input)?,
                done: bool::decode(input)?,
                decided: bool::decode(input)?,
                payloads: Vec::decode(input)?,
            },
            TAG_SUBMIT => Frame::Submit {
                key: String::decode(input)?,
                payload: Vec::decode(input)?,
            },
            TAG_SUBMIT_ACK => Frame::SubmitAck {
                shard: u32::decode(input)?,
                seq: u64::decode(input)?,
            },
            TAG_READ_PREFIX => Frame::ReadPrefix {
                shard: u32::decode(input)?,
                from: u64::decode(input)?,
            },
            TAG_PREFIX_CHUNK => Frame::PrefixChunk {
                shard: u32::decode(input)?,
                from: u64::decode(input)?,
                sealed: bool::decode(input)?,
                records: Vec::decode(input)?,
            },
            _ => return None,
        };
        input.is_empty().then_some(frame)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects bodies longer than [`MAX_FRAME`] with
/// [`io::ErrorKind::InvalidData`].
pub fn write_frame(writer: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let mut body = Vec::with_capacity(32);
    frame.encode_body(&mut body);
    if body.len() as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {} bytes exceeds MAX_FRAME", body.len()),
        ));
    }
    writer.write_all(&(body.len() as u32).to_le_bytes())?;
    writer.write_all(&body)?;
    writer.flush()
}

/// Reads one length-prefixed frame.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed between
/// frames); a connection cut mid-frame is an [`io::ErrorKind::UnexpectedEof`]
/// error, and a malformed body or oversized length prefix is
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut len_bytes = [0u8; 4];
    // A clean EOF before any length byte means the peer hung up politely.
    match reader.read(&mut len_bytes)? {
        0 => return Ok(None),
        n => reader.read_exact(&mut len_bytes[n..])?,
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length prefix {len} exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    reader.read_exact(&mut body)?;
    Frame::decode_body(&body)
        .map(Some)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed frame body"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(&bytes).as_ref(), Some(&value));
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u16::MAX);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(true);
        round_trip(-0.0f64);
        round_trip(f64::INFINITY);
        round_trip(String::from("héllo\n"));
        round_trip(String::new());
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(9u64));
        round_trip(Option::<u64>::None);
        round_trip((NodeId::new(17), String::from("x")));
    }

    #[test]
    fn non_canonical_bool_and_option_tags_are_rejected() {
        assert_eq!(bool::from_bytes(&[2]), None);
        assert_eq!(Option::<u8>::from_bytes(&[7, 0]), None);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = 5u64.to_bytes();
        bytes.push(0);
        assert_eq!(u64::from_bytes(&bytes), None);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = String::from("hello").to_bytes();
        assert_eq!(String::from_bytes(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn frames_round_trip_through_a_stream() {
        let frames = vec![
            Frame::Hello {
                node: NodeId::new(9),
            },
            Frame::Data {
                round: 3,
                payload: vec![1, 2, 3],
            },
            Frame::Data {
                round: 4,
                payload: Vec::new(),
            },
            Frame::Done {
                round: 4,
                decided: true,
            },
            Frame::SyncRequest { since: 5 },
            Frame::SyncTips {
                current_round: 9,
                oldest_retained: 2,
                decided: false,
            },
            Frame::Backfill {
                round: 5,
                done: true,
                decided: false,
                payloads: vec![vec![1, 2], Vec::new(), vec![3]],
            },
            Frame::Submit {
                key: String::from("user/42"),
                payload: vec![0xca, 0xfe],
            },
            Frame::Submit {
                key: String::new(),
                payload: Vec::new(),
            },
            Frame::SubmitAck { shard: 3, seq: 17 },
            Frame::ReadPrefix { shard: 0, from: 9 },
            Frame::PrefixChunk {
                shard: 2,
                from: 4,
                sealed: true,
                records: vec![vec![1], Vec::new(), vec![2, 3]],
            },
        ];
        let mut stream = Vec::new();
        for frame in &frames {
            write_frame(&mut stream, frame).unwrap();
        }
        let mut reader = &stream[..];
        for frame in &frames {
            assert_eq!(read_frame(&mut reader).unwrap().as_ref(), Some(frame));
        }
        assert_eq!(read_frame(&mut reader).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_is_invalid_data() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let err = read_frame(&mut &stream[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// A reader that hands out the 4-byte length prefix and then panics if
    /// anyone asks for body bytes: proof the oversize rejection happens
    /// *before* any body allocation or read.
    struct PrefixOnly {
        prefix: [u8; 4],
        served: usize,
    }

    impl Read for PrefixOnly {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            assert!(
                self.served < 4,
                "read past the length prefix: an oversized frame must be \
                 rejected before its body is touched"
            );
            let n = buf.len().min(4 - self.served);
            buf[..n].copy_from_slice(&self.prefix[self.served..self.served + n]);
            self.served += n;
            Ok(n)
        }
    }

    #[test]
    fn four_gib_length_prefix_is_rejected_before_allocation() {
        // A hostile peer announces a 4 GiB frame (the maximum a u32 prefix
        // can claim). An honest node must refuse it from the prefix alone:
        // no 4 GiB buffer is allocated, no body byte is read — the guard
        // runs before `vec![0u8; len]`, and the `PrefixOnly` reader panics
        // the test if the decoder ever asks for more.
        let mut reader = PrefixOnly {
            prefix: 0xFFFF_FFFFu32.to_le_bytes(),
            served: 0,
        };
        let err = read_frame(&mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("exceeds MAX_FRAME"),
            "the refusal names the violated bound: {err}"
        );
    }

    #[test]
    fn mid_frame_eof_is_unexpected_eof() {
        let mut stream = Vec::new();
        write_frame(
            &mut stream,
            &Frame::Done {
                round: 1,
                decided: false,
            },
        )
        .unwrap();
        let err = read_frame(&mut &stream[..stream.len() - 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn fixed_size_bodies_reject_trailing_bytes() {
        for frame in [
            Frame::Hello {
                node: NodeId::new(9),
            },
            Frame::Done {
                round: 4,
                decided: true,
            },
            Frame::SyncRequest { since: 5 },
            Frame::SyncTips {
                current_round: 9,
                oldest_retained: 2,
                decided: false,
            },
            Frame::Backfill {
                round: 5,
                done: true,
                decided: true,
                payloads: vec![vec![7]],
            },
            Frame::Submit {
                key: String::from("k"),
                payload: vec![9],
            },
            Frame::SubmitAck { shard: 1, seq: 2 },
            Frame::ReadPrefix { shard: 1, from: 0 },
            Frame::PrefixChunk {
                shard: 1,
                from: 0,
                sealed: false,
                records: vec![vec![5, 6]],
            },
        ] {
            let mut body = Vec::new();
            frame.encode_body(&mut body);
            assert_eq!(Frame::decode_body(&body), Some(frame));
            body.push(0);
            assert_eq!(Frame::decode_body(&body), None, "trailing byte accepted");
        }
    }

    #[test]
    fn malformed_body_is_invalid_data() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&1u32.to_le_bytes());
        stream.push(0xff); // unknown tag
        let err = read_frame(&mut &stream[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
