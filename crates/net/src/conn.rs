//! Connection management: dialing with retry/backoff, the `Hello`
//! handshake, per-connection reader threads, and the shared writer table.
//!
//! Topology is a full mesh with a deterministic dialing convention: each
//! node **dials** every peer with a *larger* id and **accepts** from every
//! peer with a *smaller* id, so each unordered pair gets exactly one
//! connection and no tie-breaking is needed.
//!
//! Each established connection gets a **generation number**. Reader threads
//! stamp their close notifications with the generation they served, so a
//! stale `Closed` event from a connection that was already replaced by a
//! reconnect cannot tear down the fresh link.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use uba_sim::NodeId;

use crate::wire::{read_frame, write_frame, Frame};

/// Backoff schedule for dialing a peer that is not accepting yet.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Delay before the second attempt; doubles each failure.
    pub initial_backoff: Duration,
    /// Ceiling for the per-attempt delay (before jitter; the slept delay is
    /// at most 1.5× this).
    pub max_backoff: Duration,
    /// Total time budget across all attempts before giving up.
    pub budget: Duration,
    /// Seed for the deterministic per-attempt jitter. Dialers derive it
    /// from the (dialer, peer) pair so that many nodes restarting at once —
    /// the crash-recovery rejoin scenario — spread their reconnect attempts
    /// instead of thundering-herding the listener in lockstep.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            budget: Duration::from_secs(10),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Returns the policy with its jitter stream seeded from `seed` (pure
    /// derivation: the same seed always yields the same backoff schedule,
    /// keeping retry timing reproducible in tests).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }
}

/// One step of the splitmix64 output function: a cheap, well-mixed pure
/// hash, good enough to decorrelate backoff schedules across (seed,
/// attempt) pairs. The crate's whole RNG vocabulary — dial jitter here,
/// the WAN fault proxy's loss and jitter draws in [`crate::proxy`] — is
/// built from this one function, so every randomized decision is a pure
/// function of a seed and a counter.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The delay actually slept for an attempt: the exponential `backoff` plus
/// a deterministic jitter in `[0, backoff/2]` drawn from `(seed, attempt)`.
fn jittered(backoff: Duration, seed: u64, attempt: u32) -> Duration {
    let nanos = backoff.as_nanos() as u64;
    if nanos == 0 {
        return backoff;
    }
    let draw = splitmix64(seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    backoff + Duration::from_nanos(draw % (nanos / 2 + 1))
}

/// Dials `addr` until it accepts or the policy's budget runs out, calling
/// `on_retry(attempt)` before each backoff sleep.
///
/// # Errors
///
/// The last connection error once the budget is exhausted.
pub fn connect_with_retry(
    addr: SocketAddr,
    policy: RetryPolicy,
    mut on_retry: impl FnMut(u32),
) -> io::Result<TcpStream> {
    let deadline = Instant::now() + policy.budget;
    let mut backoff = policy.initial_backoff;
    let mut attempt: u32 = 0;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                // Frames are small and latency-critical: round progress waits
                // on `Done` markers, so Nagle batching would put a ~40ms
                // floor under every barrier.
                stream.set_nodelay(true)?;
                return Ok(stream);
            }
            Err(err) => {
                attempt += 1;
                let delay = jittered(backoff, policy.jitter_seed, attempt);
                if Instant::now() + delay > deadline {
                    return Err(err);
                }
                on_retry(attempt);
                thread::sleep(delay);
                backoff = (backoff * 2).min(policy.max_backoff);
            }
        }
    }
}

/// Events a connection's reader thread reports to the node's main loop.
#[derive(Debug)]
pub enum LinkEvent {
    /// A decoded frame from an established, handshaken connection.
    Frame {
        /// The peer the connection is pinned to (from its `Hello`).
        from: NodeId,
        /// The frame.
        frame: Frame,
    },
    /// A fresh connection to `peer` completed its handshake.
    Connected {
        /// The peer.
        peer: NodeId,
        /// The link generation installed in the [`Links`] table.
        generation: u64,
    },
    /// The connection serving `generation` ended (clean EOF or error).
    /// Stale generations must be ignored — a reconnect may already have
    /// replaced the link.
    Closed {
        /// The peer.
        peer: NodeId,
        /// The generation that closed.
        generation: u64,
    },
    /// The connection's reader hit a frame no honest peer can produce — an
    /// oversized length prefix or an undecodable body. TCP checksums make
    /// accidental corruption on a live stream vanishingly unlikely, so this
    /// is attributable misbehavior, reported *before* the trailing
    /// [`Closed`](Self::Closed) for the same generation.
    Corrupt {
        /// The peer the connection is pinned to.
        peer: NodeId,
        /// The generation that read the bad bytes.
        generation: u64,
        /// The decoder's error message (names the violated bound).
        info: String,
    },
}

struct Link {
    writer: BufWriter<TcpStream>,
    generation: u64,
}

/// The shared table of outbound halves of the mesh, one writer per peer.
///
/// Send failures mark the link dead (the reader thread on the same socket
/// reports `Closed` with the cause); the round loop then decides between
/// waiting for a reconnect and declaring the peer gone.
#[derive(Clone)]
pub struct Links {
    inner: Arc<Mutex<HashMap<NodeId, Link>>>,
    next_generation: Arc<Mutex<u64>>,
}

impl Default for Links {
    fn default() -> Self {
        Self::new()
    }
}

impl Links {
    /// An empty table.
    pub fn new() -> Self {
        Links {
            inner: Arc::new(Mutex::new(HashMap::new())),
            next_generation: Arc::new(Mutex::new(0)),
        }
    }

    /// Installs (or replaces) the writer for `peer`, returning the new
    /// link's generation.
    pub fn install(&self, peer: NodeId, stream: TcpStream) -> u64 {
        let generation = {
            let mut next = self.next_generation.lock().expect("links lock");
            *next += 1;
            *next
        };
        self.inner.lock().expect("links lock").insert(
            peer,
            Link {
                writer: BufWriter::new(stream),
                generation,
            },
        );
        generation
    }

    /// Drops the writer for `peer` if (and only if) it still serves
    /// `generation`.
    pub fn remove(&self, peer: NodeId, generation: u64) {
        let mut table = self.inner.lock().expect("links lock");
        if table.get(&peer).is_some_and(|l| l.generation == generation) {
            table.remove(&peer);
        }
    }

    /// Writes one frame to `peer`. Returns `false` if no live link exists
    /// or the write failed (the link is dropped; the reader thread reports
    /// the close).
    pub fn send(&self, peer: NodeId, frame: &Frame) -> bool {
        let mut table = self.inner.lock().expect("links lock");
        let Some(link) = table.get_mut(&peer) else {
            return false;
        };
        if write_frame(&mut link.writer, frame).is_ok() {
            true
        } else {
            table.remove(&peer);
            false
        }
    }

    /// Shuts down every live connection (both directions) and clears the
    /// table. This is the crash-injection path: the process "dies", so its
    /// sockets must actually close — because `TcpStream::shutdown` acts on
    /// the underlying descriptor, it also unblocks the reader threads
    /// parked on the cloned read halves, and peers observe EOF exactly as
    /// they would for a killed OS process.
    pub fn shutdown_all(&self) {
        let mut table = self.inner.lock().expect("links lock");
        for (_, link) in table.drain() {
            let _ = link.writer.get_ref().shutdown(std::net::Shutdown::Both);
        }
    }

    /// Shuts down `peer`'s connection (both directions, any generation) and
    /// drops its writer: the eviction path for a misbehaving peer. Like
    /// [`shutdown_all`](Self::shutdown_all), the socket-level shutdown
    /// unblocks the reader thread parked on the cloned read half, so the
    /// offender observes a hard close immediately.
    pub fn shutdown_peer(&self, peer: NodeId) {
        let mut table = self.inner.lock().expect("links lock");
        if let Some(link) = table.remove(&peer) {
            let _ = link.writer.get_ref().shutdown(std::net::Shutdown::Both);
        }
    }

    /// The peers with a live link, in no particular order.
    pub fn connected(&self) -> Vec<NodeId> {
        self.inner
            .lock()
            .expect("links lock")
            .keys()
            .copied()
            .collect()
    }
}

/// Performs the symmetric handshake on a fresh connection: writes our
/// `Hello`, reads the peer's, and returns the peer's announced id.
///
/// # Errors
///
/// I/O errors, a non-`Hello` first frame, or a clean close before the
/// peer's `Hello` (all reported as [`io::ErrorKind::InvalidData`] /
/// [`io::ErrorKind::UnexpectedEof`]).
pub fn handshake(stream: &mut TcpStream, me: NodeId) -> io::Result<NodeId> {
    write_frame(stream, &Frame::Hello { node: me })?;
    match read_frame(stream)? {
        Some(Frame::Hello { node }) => Ok(node),
        Some(_) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected Hello as the first frame",
        )),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "peer closed before Hello",
        )),
    }
}

/// Spawns the reader thread for an established connection: decodes frames
/// into [`LinkEvent::Frame`]s until EOF or error, then reports
/// [`LinkEvent::Closed`] and removes the link (generation-guarded).
pub fn spawn_reader(
    stream: TcpStream,
    peer: NodeId,
    generation: u64,
    links: Links,
    events: Sender<LinkEvent>,
) {
    thread::spawn(move || {
        let mut reader = BufReader::new(stream);
        loop {
            match read_frame(&mut reader) {
                Ok(Some(frame)) => {
                    if events.send(LinkEvent::Frame { from: peer, frame }).is_err() {
                        break; // node loop is gone; stop pumping
                    }
                }
                Ok(None) => break, // clean EOF
                Err(err) => {
                    // An InvalidData error is the codec refusing bytes no
                    // honest peer can send; attribute it before closing.
                    if err.kind() == io::ErrorKind::InvalidData {
                        let _ = events.send(LinkEvent::Corrupt {
                            peer,
                            generation,
                            info: err.to_string(),
                        });
                    }
                    break;
                }
            }
        }
        links.remove(peer, generation);
        let _ = events.send(LinkEvent::Closed { peer, generation });
    });
}

/// Spawns the accept loop for node `me`: for every inbound connection,
/// handshakes, installs the writer, reports [`LinkEvent::Connected`], and
/// spawns a reader. Runs until the listener errors or the event channel
/// closes (both mean the node is shutting down).
///
/// Accepting is also how reconnects work: a peer that lost its socket
/// simply dials again, and the fresh link replaces the dead one in the
/// table (the old reader's `Closed` event carries a stale generation and is
/// ignored).
pub fn spawn_acceptor(listener: TcpListener, me: NodeId, links: Links, events: Sender<LinkEvent>) {
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            if stream.set_nodelay(true).is_err() {
                continue;
            }
            let Ok(peer) = handshake(&mut stream, me) else {
                continue; // not a protocol peer; ignore the connection
            };
            let Ok(reader_half) = stream.try_clone() else {
                continue;
            };
            let generation = links.install(peer, stream);
            if events
                .send(LinkEvent::Connected { peer, generation })
                .is_err()
            {
                return; // node loop is gone
            }
            spawn_reader(reader_half, peer, generation, links.clone(), events.clone());
        }
    });
}

/// Dials `peer` at `addr` (with retry), handshakes, verifies the announced
/// id, installs the writer, reports [`LinkEvent::Connected`], and spawns
/// the reader thread.
///
/// # Errors
///
/// Connect/handshake I/O errors, or [`io::ErrorKind::InvalidData`] if the
/// endpoint announces an id other than `peer` (a mis-wired address book —
/// the transport refuses to attribute its frames).
pub fn dial_peer(
    addr: SocketAddr,
    me: NodeId,
    peer: NodeId,
    policy: RetryPolicy,
    links: &Links,
    events: &Sender<LinkEvent>,
    on_retry: impl FnMut(u32),
) -> io::Result<u64> {
    let mut stream = connect_with_retry(addr, policy, on_retry)?;
    let announced = handshake(&mut stream, me)?;
    if announced != peer {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("dialed {peer} but endpoint announced {announced}"),
        ));
    }
    let reader_half = stream.try_clone()?;
    let generation = links.install(peer, stream);
    let _ = events.send(LinkEvent::Connected { peer, generation });
    spawn_reader(reader_half, peer, generation, links.clone(), events.clone());
    Ok(generation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn retry_backs_off_then_succeeds() {
        // Reserve a port, then keep it closed for the first attempts.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let opener = thread::spawn(move || {
            thread::sleep(Duration::from_millis(40));
            TcpListener::bind(addr).unwrap().accept().unwrap();
        });
        let mut retries = 0;
        let policy = RetryPolicy {
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
            budget: Duration::from_secs(5),
            jitter_seed: 42,
        };
        let stream = connect_with_retry(addr, policy, |_| retries += 1);
        assert!(stream.is_ok());
        assert!(retries >= 1, "the port was closed at first");
        opener.join().unwrap();
    }

    #[test]
    fn retry_budget_exhaustion_reports_the_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener); // nobody will ever listen here
        let policy = RetryPolicy {
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(10),
            budget: Duration::from_millis(30),
            jitter_seed: 7,
        };
        assert!(connect_with_retry(addr, policy, |_| {}).is_err());
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_attempt() {
        let base = Duration::from_millis(100);
        for attempt in 1..8 {
            assert_eq!(jittered(base, 1, attempt), jittered(base, 1, attempt));
        }
        // Different seeds decorrelate: at least one attempt in a short
        // window must differ (the draw space is ~50ms in nanoseconds, so a
        // full collision across 8 attempts would be astronomically odd —
        // and this check is deterministic, not flaky, either way).
        assert!((1..8).any(|a| jittered(base, 1, a) != jittered(base, 2, a)));
    }

    #[test]
    fn jitter_is_bounded_by_half_the_backoff() {
        for &ms in &[1u64, 5, 10, 100, 500] {
            let base = Duration::from_millis(ms);
            for seed in 0..16 {
                for attempt in 1..8 {
                    let d = jittered(base, seed, attempt);
                    assert!(d >= base, "jitter never shortens the backoff");
                    assert!(d <= base + base / 2, "jitter adds at most base/2");
                }
            }
        }
        assert_eq!(jittered(Duration::ZERO, 3, 1), Duration::ZERO);
    }

    #[test]
    fn shutdown_all_closes_every_link_and_clears_the_table() {
        let links = Links::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let b = TcpStream::connect(addr).unwrap();
        let (a_accepted, _) = listener.accept().unwrap();
        let (_b_accepted, _) = listener.accept().unwrap();
        links.install(NodeId::new(1), a);
        links.install(NodeId::new(2), b);
        links.shutdown_all();
        assert!(links.connected().is_empty());
        // The peer side of a shut-down socket reads EOF, like a dead process.
        let mut reader = BufReader::new(a_accepted);
        assert!(matches!(read_frame(&mut reader), Ok(None)));
    }

    #[test]
    fn dial_and_accept_handshake_and_exchange_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (alice, bob) = (NodeId::new(1), NodeId::new(2));

        let (bob_tx, bob_rx) = mpsc::channel();
        let bob_links = Links::new();
        spawn_acceptor(listener, bob, bob_links.clone(), bob_tx);

        let (alice_tx, alice_rx) = mpsc::channel();
        let alice_links = Links::new();
        dial_peer(
            addr,
            alice,
            bob,
            RetryPolicy::default(),
            &alice_links,
            &alice_tx,
            |_| {},
        )
        .unwrap();

        // Both sides report Connected with the right peer.
        match alice_rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            LinkEvent::Connected { peer, .. } => assert_eq!(peer, bob),
            other => panic!("expected Connected, got {other:?}"),
        }
        match bob_rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            LinkEvent::Connected { peer, .. } => assert_eq!(peer, alice),
            other => panic!("expected Connected, got {other:?}"),
        }

        // Alice -> Bob through the writer table; Bob's reader attributes it.
        assert!(alice_links.send(
            bob,
            &Frame::Done {
                round: 1,
                decided: false,
            },
        ));
        match bob_rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            LinkEvent::Frame { from, frame } => {
                assert_eq!(from, alice);
                assert_eq!(
                    frame,
                    Frame::Done {
                        round: 1,
                        decided: false,
                    }
                );
            }
            other => panic!("expected Frame, got {other:?}"),
        }
    }

    #[test]
    fn dialing_a_mislabeled_peer_is_refused() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, _rx) = mpsc::channel();
        spawn_acceptor(listener, NodeId::new(9), Links::new(), tx);

        let (tx2, _rx2) = mpsc::channel();
        let err = dial_peer(
            addr,
            NodeId::new(1),
            NodeId::new(2), // address book says 2, endpoint says 9
            RetryPolicy::default(),
            &Links::new(),
            &tx2,
            |_| {},
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn stale_generation_close_does_not_remove_a_fresh_link() {
        let links = Links::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = NodeId::new(5);
        let a = TcpStream::connect(addr).unwrap();
        let b = TcpStream::connect(addr).unwrap();
        let old_generation = links.install(peer, a);
        let new_generation = links.install(peer, b); // reconnect replaced it
        assert_ne!(old_generation, new_generation);
        links.remove(peer, old_generation); // stale close: must be a no-op
        assert_eq!(links.connected(), vec![peer]);
        links.remove(peer, new_generation);
        assert!(links.connected().is_empty());
    }
}
