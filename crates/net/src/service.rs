//! The log service layer: the total-ordering protocol productized as a
//! long-lived, key-sharded "permissionless log as a service".
//!
//! Every cluster node runs `shards` independent [`TotalOrdering`]
//! instances, multiplexed over **one** transport round loop by
//! [`ShardedLog`] (messages carry a shard tag; each instance sees only its
//! own traffic, so the per-shard executions are exactly the single-instance
//! executions the T11/T12/T13 oracles certify — DESIGN.md §12). Clients
//! speak the four client frames of the [`wire`](crate::wire) format to any
//! node:
//!
//! 1. **submit** — [`Frame::Submit`] hashes the key to a shard
//!    ([`shard_of`]) and claims the shard's next ingress sequence number,
//!    answered by [`Frame::SubmitAck`];
//! 2. **batch** — once per round, each shard's pending submissions are
//!    sealed into one batch and enqueued as a single ordering event
//!    ([`TotalOrdering::enqueue_event`]), amortizing one agreement wave
//!    over the whole batch;
//! 3. **order** — the shard's instance runs the paper's Algorithm 6 on the
//!    batch, unchanged;
//! 4. **finalize → read** — finalized batches are flattened into the
//!    shard's record prefix, served to [`Frame::ReadPrefix`] as
//!    [`Frame::PrefixChunk`].
//!
//! Acknowledgements are durability promises: the service stops accepting
//! new submissions strictly before the last round whose batch can still
//! finalize by the horizon, so **every acked submission is ordered exactly
//! once** — the invariant the `logd` e2e test and the T14 experiment
//! assert.
//!
//! The ingress state ([`LogIngress`]) is shared between the round loop and
//! the client-serving threads through a mutex; it is wall-clock territory
//! and never feeds the deterministic trace (the two-registries rule of
//! DESIGN.md §10).

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use uba_core::ordering::{OrderMsg, TotalOrdering};
use uba_sim::{Context, Dest, Envelope, NodeId, Outbox, Process};
use uba_trace::{metric_name, NetEventKind, NoopTracer, SharedRuntimeMetrics, TraceEvent, Tracer};

use crate::cluster::{collect_reports, MemberHandle};
use crate::node::{NetConfig, NetError, NetNode, NetReport};
use crate::wire::{read_frame, write_frame, Frame, Wire};

/// One client submission, as ordered by a shard's instance.
///
/// Identity is the full tuple: `(node, seq)` pins the ingress slot the
/// submission was acked into (seqs are per shard per ingress node), so two
/// clients submitting identical `(key, payload)` pairs to *different*
/// nodes produce two distinct records. Within one node the ingress dedups:
/// resubmitting an identical pair re-acks the original slot.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Record {
    /// The client-chosen key; decides the shard and nothing else.
    pub key: String,
    /// The opaque client payload.
    pub payload: Vec<u8>,
    /// Raw id of the node that acked the submission.
    pub node: u64,
    /// The per-shard ingress sequence number that node assigned.
    pub seq: u64,
}

impl Wire for Record {
    fn encode(&self, out: &mut Vec<u8>) {
        self.key.encode(out);
        self.payload.encode(out);
        self.node.encode(out);
        self.seq.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Record {
            key: String::decode(input)?,
            payload: Vec::decode(input)?,
            node: u64::decode(input)?,
            seq: u64::decode(input)?,
        })
    }
}

/// One round's worth of one shard's submissions, ordered as a single event.
pub type Batch = Vec<Record>;

/// Maps a key to its shard: FNV-1a over the key bytes, reduced modulo the
/// shard count. Deliberately *not* [`std::hash::DefaultHasher`] — every
/// node and every client must agree on the mapping across processes and
/// builds, and `DefaultHasher`'s algorithm is unspecified.
pub fn shard_of(key: &str, shards: u32) -> u32 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &byte in key.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    (hash % u64::from(shards.max(1))) as u32
}

/// The rounds one batch needs from enqueue to finality: an event broadcast
/// in round `w` lands in wave `w + 1`, which is final once
/// `2(r - (w + 1)) > 5n + 4` (the bound behind
/// [`TotalOrdering::finality_round`]), plus slack for the join handshake
/// rounds at the front of the run.
fn finality_margin(members: usize) -> u64 {
    (5 * members as u64 + 4) / 2 + 5
}

/// The horizon a service run needs so that every batch enqueued up to and
/// including round `ingest_until` finalizes before the instances terminate.
pub fn service_horizon(members: usize, ingest_until: u64) -> u64 {
    ingest_until + finality_margin(members)
}

/// Per-node ingress/egress state shared between the round loop and the
/// client-serving threads: pending submissions on their way *into* the
/// ordering instances, finalized prefixes on their way *out*.
struct IngressState {
    /// Whether new submissions are still acked. Flips to `false` at the
    /// ingest cutoff; acked-but-unordered submissions never exist past it.
    accepting: bool,
    /// Whether the prefixes are final: the ordering instances terminated
    /// and no prefix will ever grow again.
    sealed: bool,
    /// Next sequence number per shard.
    next_seq: Vec<u64>,
    /// Submissions awaiting their round's batch, per shard.
    pending: Vec<Batch>,
    /// The finalized record prefix per shard (only ever grows).
    prefixes: Vec<Vec<Record>>,
    /// `(key, payload) → (shard, seq)`: the idempotency table behind
    /// duplicate-submit re-acks.
    assigned: HashMap<(String, Vec<u8>), (u32, u64)>,
}

/// Cloneable handle to one node's service state; the round loop drains
/// batches out of it, client connections submit into it and read prefixes
/// from it.
#[derive(Clone)]
pub struct LogIngress {
    shards: u32,
    state: Arc<Mutex<IngressState>>,
}

impl std::fmt::Debug for LogIngress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogIngress")
            .field("shards", &self.shards)
            .finish_non_exhaustive()
    }
}

impl LogIngress {
    /// Fresh ingress state for `shards` shards (at least 1).
    pub fn new(shards: u32) -> Self {
        let shards = shards.max(1);
        let n = shards as usize;
        LogIngress {
            shards,
            state: Arc::new(Mutex::new(IngressState {
                accepting: true,
                sealed: false,
                next_seq: vec![0; n],
                pending: vec![Vec::new(); n],
                prefixes: vec![Vec::new(); n],
                assigned: HashMap::new(),
            })),
        }
    }

    /// The shard count.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, IngressState> {
        // The service never panics while holding the lock; treat poison as
        // the unrecoverable bug it would be.
        self.state.lock().expect("ingress lock poisoned")
    }

    /// Accepts one submission on behalf of `node`: assigns the key's shard
    /// and the shard's next sequence number, or re-acks the existing slot
    /// for a duplicate `(key, payload)` pair. `None` once ingest closed —
    /// the caller drops the connection rather than promising an ordering
    /// that can no longer happen. The `bool` is `true` for a fresh slot,
    /// `false` for a duplicate re-ack.
    pub fn submit(&self, key: String, payload: Vec<u8>, node: u64) -> Option<(u32, u64, bool)> {
        let shard = shard_of(&key, self.shards);
        let mut state = self.lock();
        if let Some(&(shard, seq)) = state.assigned.get(&(key.clone(), payload.clone())) {
            return Some((shard, seq, false));
        }
        if !state.accepting {
            return None;
        }
        let seq = state.next_seq[shard as usize];
        state.next_seq[shard as usize] += 1;
        state.pending[shard as usize].push(Record {
            key: key.clone(),
            payload: payload.clone(),
            node,
            seq,
        });
        state.assigned.insert((key, payload), (shard, seq));
        Some((shard, seq, true))
    }

    /// One shard's finalized records from index `from` on, plus whether the
    /// prefix is sealed (final). An out-of-range shard reads as empty and
    /// follows the global sealed flag.
    pub fn prefix_from(&self, shard: u32, from: u64) -> (Vec<Record>, bool) {
        let state = self.lock();
        let records = state
            .prefixes
            .get(shard as usize)
            .map(|prefix| {
                let start = (from as usize).min(prefix.len());
                prefix[start..].to_vec()
            })
            .unwrap_or_default();
        (records, state.sealed)
    }

    /// Whether the prefixes are final.
    pub fn sealed(&self) -> bool {
        self.lock().sealed
    }

    /// Drains every shard's pending submissions into this round's batches.
    fn take_batches(&self) -> Vec<Batch> {
        let mut state = self.lock();
        state.pending.iter_mut().map(std::mem::take).collect()
    }

    /// Stops acking new submissions (the ingest cutoff).
    fn close_ingest(&self) {
        self.lock().accepting = false;
    }

    /// Publishes one shard's grown finalized prefix.
    fn publish(&self, shard: u32, prefix: Vec<Record>) {
        let mut state = self.lock();
        let slot = &mut state.prefixes[shard as usize];
        debug_assert!(
            prefix.len() >= slot.len() && prefix[..slot.len()] == slot[..],
            "finalized prefix shrank or rewrote history"
        );
        *slot = prefix;
    }

    /// Marks the prefixes final; implies the ingest cutoff.
    fn seal(&self) {
        let mut state = self.lock();
        state.accepting = false;
        state.sealed = true;
    }
}

/// One cluster node's service process: `shards` [`TotalOrdering`] instances
/// multiplexed over a single round loop, fed from a [`LogIngress`].
///
/// The message type tags every protocol message with its shard; `on_round`
/// partitions the inbox by tag, steps each instance through its own
/// sub-[`Context`] (legal because [`TotalOrdering`] keeps its own loop
/// round and never reads the context's), and re-tags the instances'
/// outgoing traffic into the shared outbox. Each instance therefore runs
/// the exact single-instance execution the simulator oracles certify.
///
/// Output: the per-shard finalized record prefixes, once every instance
/// reached the horizon.
pub struct ShardedLog<T: Tracer = NoopTracer> {
    me: NodeId,
    ingress: LogIngress,
    instances: Vec<TotalOrdering<Batch>>,
    ingest_until: u64,
    runtime: Option<SharedRuntimeMetrics>,
    tracer: T,
    outputs: Option<Vec<Vec<Record>>>,
}

impl ShardedLog<NoopTracer> {
    /// A founding service node: one genesis ordering instance per ingress
    /// shard, all terminating at `horizon`, batching new submissions up to
    /// and including round `ingest_until` (use [`service_horizon`] to
    /// derive a horizon that lets the last batch finalize).
    pub fn new(me: NodeId, ingress: LogIngress, ingest_until: u64, horizon: u64) -> Self {
        let instances = (0..ingress.shards())
            .map(|_| TotalOrdering::genesis(me).with_horizon(horizon))
            .collect();
        ShardedLog {
            me,
            ingress,
            instances,
            ingest_until,
            runtime: None,
            tracer: NoopTracer,
            outputs: None,
        }
    }
}

impl<T: Tracer> ShardedLog<T> {
    /// Attaches a tracer for the service-level events
    /// ([`NetEventKind::ShardBatch`]).
    pub fn with_tracer<U: Tracer>(self, tracer: U) -> ShardedLog<U> {
        ShardedLog {
            me: self.me,
            ingress: self.ingress,
            instances: self.instances,
            ingest_until: self.ingest_until,
            runtime: self.runtime,
            tracer,
            outputs: self.outputs,
        }
    }

    /// Attaches the wall-clock registry the per-shard service families
    /// (`logd_batches_total{shard=..}`, `logd_batch_records_total{shard=..}`,
    /// `logd_prefix_records{shard=..}`) are recorded into.
    pub fn with_runtime_metrics(mut self, runtime: SharedRuntimeMetrics) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// The node's ingress handle.
    pub fn ingress(&self) -> &LogIngress {
        &self.ingress
    }

    /// Flattens one instance's finalized chain into the shard's record
    /// prefix: batches in wave order, records in batch order.
    fn flatten(
        chain: impl IntoIterator<Item = uba_core::ordering::OrderedEvent<Batch>>,
    ) -> Vec<Record> {
        chain.into_iter().flat_map(|event| event.value).collect()
    }
}

impl<T: Tracer + 'static> Process for ShardedLog<T> {
    type Msg = (u32, OrderMsg<Batch>);
    type Output = Vec<Vec<Record>>;

    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let round = ctx.round();
        let shards = self.instances.len();

        // Partition the inbox by shard tag. Out-of-range tags (a Byzantine
        // sender's prerogative) are dropped — no instance exists to confuse.
        let mut inboxes: Vec<Vec<Envelope<OrderMsg<Batch>>>> = vec![Vec::new(); shards];
        for env in ctx.inbox() {
            let (shard, msg) = env.msg();
            if let Some(bucket) = inboxes.get_mut(*shard as usize) {
                bucket.push(Envelope::new(env.from, msg.clone()));
            }
        }

        // Seal this round's batches before stepping, so each lands in the
        // round about to run. At the cutoff round, close ingest *before*
        // the final drain: `submit` and the drain serialize on the ingress
        // lock, so every acked submission is either in this last batch or
        // refused — never acked-then-stranded.
        if round <= self.ingest_until {
            if round == self.ingest_until {
                self.ingress.close_ingest();
            }
            for (shard, batch) in self.ingress.take_batches().into_iter().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                let size = batch.len();
                let slot = self.instances[shard].enqueue_event(batch);
                debug_assert!(
                    slot.is_some(),
                    "acked batch dropped: instance terminated before the ingest cutoff"
                );
                if let Some(slot) = slot {
                    if self.tracer.enabled() {
                        self.tracer.record(TraceEvent::Net {
                            round,
                            kind: NetEventKind::ShardBatch,
                            node: self.me.raw(),
                            peer: None,
                            info: format!("shard {shard}: {size} records for round {slot}"),
                        });
                    }
                    if let Some(rt) = &self.runtime {
                        let label = [("shard", shard.to_string())];
                        let label: Vec<(&str, &str)> =
                            label.iter().map(|(k, v)| (*k, v.as_str())).collect();
                        rt.inc(&metric_name("logd_batches_total", &label));
                        rt.add(
                            &metric_name("logd_batch_records_total", &label),
                            size as u64,
                        );
                    }
                }
            }
        } else {
            self.ingress.close_ingest();
        }

        // Step every instance through its own sub-context and re-tag its
        // traffic into the shared outbox.
        let mut sub = Outbox::new();
        for (shard, instance) in self.instances.iter_mut().enumerate() {
            let mut sub_ctx = Context::new(round, &inboxes[shard], &mut sub);
            instance.on_round(&mut sub_ctx);
            for outgoing in sub.drain() {
                match outgoing.dest {
                    Dest::Broadcast => ctx.broadcast((shard as u32, outgoing.msg)),
                    Dest::To(to) => ctx.send(to, (shard as u32, outgoing.msg)),
                }
            }
        }

        // Publish the grown finalized prefixes; seal once every instance
        // terminated.
        let done = self
            .instances
            .iter()
            .all(|instance| instance.output().is_some());
        for (shard, instance) in self.instances.iter().enumerate() {
            let prefix = Self::flatten(instance.chain());
            if let Some(rt) = &self.runtime {
                rt.set_gauge(
                    &metric_name("logd_prefix_records", &[("shard", &shard.to_string())]),
                    prefix.len() as u64,
                );
            }
            self.ingress.publish(shard as u32, prefix);
        }
        if done {
            self.outputs = Some(
                self.instances
                    .iter()
                    .map(|instance| Self::flatten(instance.output().expect("instance done")))
                    .collect(),
            );
            self.ingress.seal();
        }
    }

    fn output(&self) -> Option<Self::Output> {
        self.outputs.clone()
    }
}

/// The per-connection client protocol loop: `Submit → SubmitAck` (or
/// disconnect once ingest closed), `ReadPrefix → PrefixChunk`. Any other
/// frame is a protocol violation and drops the connection.
fn serve_connection<T: Tracer>(
    stream: TcpStream,
    ingress: LogIngress,
    node: u64,
    runtime: Option<SharedRuntimeMetrics>,
    tracer: Arc<Mutex<T>>,
) {
    serve_frames(&stream, ingress, node, runtime, tracer);
    // The shutdown handle in the server's connection table holds a clone of
    // this socket, so dropping our handle alone would NOT close the
    // connection — shut the socket down explicitly or the client never
    // sees the disconnect.
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn serve_frames<T: Tracer>(
    mut stream: &TcpStream,
    ingress: LogIngress,
    node: u64,
    runtime: Option<SharedRuntimeMetrics>,
    tracer: Arc<Mutex<T>>,
) {
    let trace = |event: &dyn Fn() -> TraceEvent| {
        let mut tracer = tracer.lock().expect("client tracer lock poisoned");
        if tracer.enabled() {
            tracer.record(event());
        }
    };
    loop {
        match read_frame(&mut stream) {
            Ok(Some(Frame::Submit { key, payload })) => {
                match ingress.submit(key, payload, node) {
                    Some((shard, seq, fresh)) => {
                        if let Some(rt) = &runtime {
                            let name = if fresh {
                                "logd_submits_total"
                            } else {
                                "logd_submit_dedup_total"
                            };
                            rt.inc(&metric_name(name, &[("shard", &shard.to_string())]));
                        }
                        trace(&|| TraceEvent::Net {
                            round: 0,
                            kind: NetEventKind::ClientSubmit,
                            node,
                            peer: None,
                            info: format!("shard={shard} seq={seq} fresh={fresh}"),
                        });
                        if write_frame(&mut stream, &Frame::SubmitAck { shard, seq }).is_err() {
                            return;
                        }
                    }
                    // Ingest closed: an ack now would be a broken promise.
                    None => return,
                }
            }
            Ok(Some(Frame::ReadPrefix { shard, from })) => {
                let (records, sealed) = ingress.prefix_from(shard, from);
                let served = records.len();
                let chunk = Frame::PrefixChunk {
                    shard,
                    from,
                    sealed,
                    records: records.iter().map(Wire::to_bytes).collect(),
                };
                if let Some(rt) = &runtime {
                    rt.inc(&metric_name(
                        "logd_reads_total",
                        &[("shard", &shard.to_string())],
                    ));
                }
                trace(&|| TraceEvent::Net {
                    round: 0,
                    kind: NetEventKind::PrefixRead,
                    node,
                    peer: None,
                    info: format!("shard={shard} from={from} served={served} sealed={sealed}"),
                });
                if write_frame(&mut stream, &chunk).is_err() {
                    return;
                }
            }
            // Clean disconnect, a transport/inter-node frame on the client
            // port, or an I/O error: either way this conversation is over.
            Ok(Some(_)) | Ok(None) | Err(_) => return,
        }
    }
}

/// The live client connections of one [`ClientServer`]: each accepted
/// stream (kept so shutdown can unblock its handler) with its thread.
type Connections = Arc<Mutex<Vec<(TcpStream, thread::JoinHandle<()>)>>>;

/// Handle to one node's client-serving listener; shut it down with
/// [`ClientServer::shutdown`] once readers are done (the ordering run
/// finishing does *not* stop it — sealed prefixes stay readable).
pub struct ClientServer<T: Tracer> {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: thread::JoinHandle<()>,
    connections: Connections,
    tracer: Arc<Mutex<T>>,
}

impl<T: Tracer> std::fmt::Debug for ClientServer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// Serves the client protocol on `listener` against `ingress`, one thread
/// per connection. `node` attributes acked records; `runtime` receives the
/// per-shard `logd_*` families; `tracer` the
/// [`ClientSubmit`](NetEventKind::ClientSubmit)/
/// [`PrefixRead`](NetEventKind::PrefixRead) events (returned by
/// [`ClientServer::shutdown`]).
///
/// # Errors
///
/// Propagates the listener's local-address lookup failure.
pub fn serve_clients<T: Tracer + Send + 'static>(
    listener: TcpListener,
    ingress: LogIngress,
    node: u64,
    runtime: Option<SharedRuntimeMetrics>,
    tracer: T,
) -> io::Result<ClientServer<T>> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let connections: Connections = Arc::new(Mutex::new(Vec::new()));
    let tracer = Arc::new(Mutex::new(tracer));
    let acceptor = {
        let stop = Arc::clone(&stop);
        let connections = Arc::clone(&connections);
        let tracer = Arc::clone(&tracer);
        thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Request/response over tiny frames: Nagle + delayed ACK
                // would put ~40ms under every ack.
                let _ = stream.set_nodelay(true);
                let Ok(watch) = stream.try_clone() else {
                    continue;
                };
                let ingress = ingress.clone();
                let runtime = runtime.clone();
                let tracer = Arc::clone(&tracer);
                let handle = thread::spawn(move || {
                    serve_connection(stream, ingress, node, runtime, tracer);
                });
                connections
                    .lock()
                    .expect("connection table lock poisoned")
                    .push((watch, handle));
            }
        })
    };
    Ok(ClientServer {
        addr,
        stop,
        acceptor,
        connections,
        tracer,
    })
}

impl<T: Tracer> ClientServer<T> {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, severs the live connections, joins every serving
    /// thread, and returns the tracer with the recorded client events.
    pub fn shutdown(self) -> T {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        let connections = std::mem::take(
            &mut *self
                .connections
                .lock()
                .expect("connection table lock poisoned"),
        );
        for (stream, handle) in connections {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = handle.join();
        }
        Arc::try_unwrap(self.tracer)
            .unwrap_or_else(|_| panic!("client threads still hold the tracer"))
            .into_inner()
            .expect("client tracer lock poisoned")
    }
}

/// A blocking client of the `logd` service protocol.
///
/// One TCP connection, synchronous request/response. [`submit`] returning
/// `Ok(None)` means the service closed ingest (or the connection) — the
/// submission was **not** acked and will not be ordered.
///
/// [`submit`]: LogClient::submit
#[derive(Debug)]
pub struct LogClient {
    stream: TcpStream,
}

/// One [`LogClient::read_prefix`] answer, with the records decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixPage {
    /// The shard read.
    pub shard: u32,
    /// Index of the first record.
    pub from: u64,
    /// Whether the prefix is final.
    pub sealed: bool,
    /// The finalized records from `from` on, in log order.
    pub records: Vec<Record>,
}

impl LogClient {
    /// Connects to a node's client listener.
    ///
    /// # Errors
    ///
    /// Propagates connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(LogClient { stream })
    }

    /// Submits `(key, payload)` and waits for the ack: `Some((shard, seq))`
    /// once the service owes the submission a slot in the shard's finalized
    /// prefix, `None` if ingest already closed.
    ///
    /// # Errors
    ///
    /// I/O failure, or a protocol violation by the server
    /// ([`io::ErrorKind::InvalidData`]).
    pub fn submit(&mut self, key: &str, payload: &[u8]) -> io::Result<Option<(u32, u64)>> {
        write_frame(
            &mut self.stream,
            &Frame::Submit {
                key: key.to_string(),
                payload: payload.to_vec(),
            },
        )?;
        match read_frame(&mut self.stream) {
            Ok(Some(Frame::SubmitAck { shard, seq })) => Ok(Some((shard, seq))),
            Ok(None) => Ok(None),
            // The server hangs up instead of nacking; a reset mid-read is
            // the same refusal observed less politely.
            Err(err)
                if matches!(
                    err.kind(),
                    io::ErrorKind::UnexpectedEof
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::BrokenPipe
                ) =>
            {
                Ok(None)
            }
            Ok(Some(_)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unexpected frame in reply to Submit",
            )),
            Err(err) => Err(err),
        }
    }

    /// Reads one shard's finalized prefix from record index `from` on.
    ///
    /// # Errors
    ///
    /// I/O failure, or a malformed reply ([`io::ErrorKind::InvalidData`]).
    pub fn read_prefix(&mut self, shard: u32, from: u64) -> io::Result<PrefixPage> {
        write_frame(&mut self.stream, &Frame::ReadPrefix { shard, from })?;
        match read_frame(&mut self.stream)? {
            Some(Frame::PrefixChunk {
                shard,
                from,
                sealed,
                records,
            }) => {
                let records = records
                    .iter()
                    .map(|bytes| {
                        Record::from_bytes(bytes).ok_or_else(|| {
                            io::Error::new(io::ErrorKind::InvalidData, "malformed record")
                        })
                    })
                    .collect::<io::Result<Vec<Record>>>()?;
                Ok(PrefixPage {
                    shard,
                    from,
                    sealed,
                    records,
                })
            }
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unexpected reply to ReadPrefix",
            )),
        }
    }

    /// Polls [`read_prefix`](LogClient::read_prefix)` (shard, 0)` until the
    /// prefix is sealed, then returns it whole.
    ///
    /// # Errors
    ///
    /// As `read_prefix`, plus [`io::ErrorKind::TimedOut`] if the prefix is
    /// not sealed within `timeout`.
    pub fn read_sealed_prefix(&mut self, shard: u32, timeout: Duration) -> io::Result<Vec<Record>> {
        let deadline = Instant::now() + timeout;
        loop {
            let page = self.read_prefix(shard, 0)?;
            if page.sealed {
                return Ok(page.records);
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "prefix not sealed within the timeout",
                ));
            }
            thread::sleep(Duration::from_millis(50));
        }
    }
}

/// What one member's ordering loop yields: its [`NetReport`] with the
/// finalized per-shard prefixes as the output type.
type LogReport<T> = NetReport<Vec<Vec<Record>>, T>;

/// A running `logd` cluster: every member's ordering loop on its own
/// thread, every member's client listener serving, addresses published.
pub struct LogCluster<T: Tracer> {
    client_addrs: BTreeMap<NodeId, SocketAddr>,
    ingresses: BTreeMap<NodeId, LogIngress>,
    members: Vec<MemberHandle<Vec<Vec<Record>>, T>>,
    servers: Vec<ClientServer<NoopTracer>>,
}

impl<T: Tracer> std::fmt::Debug for LogCluster<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogCluster")
            .field("client_addrs", &self.client_addrs)
            .finish_non_exhaustive()
    }
}

/// Spawns a `logd` service cluster on localhost: one [`ShardedLog`] member
/// per id (each running `shards` ordering instances), one client listener
/// per member, race-free startup as in
/// [`run_local_cluster`](crate::run_local_cluster). Returns immediately
/// with the running cluster; [`LogCluster::join_ordering`] waits for the
/// horizon.
///
/// Submissions are acked through round `ingest_until`; the horizon is
/// derived via [`service_horizon`] so the last batch finalizes. Pace the
/// rounds via `config.round_pace` — unpaced, a quiet localhost cluster
/// burns through the ingest window in milliseconds.
///
/// # Errors
///
/// Propagates listener binding failures.
///
/// # Panics
///
/// Panics on duplicate member ids.
pub fn spawn_log_cluster<T>(
    ids: &[NodeId],
    shards: u32,
    ingest_until: u64,
    config: NetConfig,
    mut tracer_for: impl FnMut(NodeId) -> T,
    mut metrics_for: impl FnMut(NodeId) -> Option<SharedRuntimeMetrics>,
) -> Result<LogCluster<T>, NetError>
where
    T: Tracer + Send + 'static,
{
    let horizon = service_horizon(ids.len(), ingest_until);
    // Bind every listener — inter-node and client — before any thread
    // spawns, then build the shared roster.
    let mut members = Vec::new();
    let mut roster = BTreeMap::new();
    let mut client_addrs = BTreeMap::new();
    let mut ingresses = BTreeMap::new();
    let mut servers = Vec::new();
    for &id in ids {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        assert!(
            roster.insert(id, addr).is_none(),
            "duplicate cluster member id {id}"
        );
        let client_listener = TcpListener::bind("127.0.0.1:0")?;
        let runtime = metrics_for(id);
        let ingress = LogIngress::new(shards);
        let server = serve_clients(
            client_listener,
            ingress.clone(),
            id.raw(),
            runtime.clone(),
            NoopTracer,
        )?;
        client_addrs.insert(id, server.addr());
        ingresses.insert(id, ingress.clone());
        servers.push(server);
        let mut process = ShardedLog::new(id, ingress, ingest_until, horizon);
        if let Some(rt) = runtime.clone() {
            process = process.with_runtime_metrics(rt);
        }
        members.push((id, process, listener, runtime));
    }

    let abort = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = members
        .into_iter()
        .map(|(id, process, listener, runtime)| {
            let mut node = NetNode::new(process, config.clone())
                .with_tracer(tracer_for(id))
                .with_abort_flag(Arc::clone(&abort));
            if let Some(rt) = runtime {
                node = node.with_runtime_metrics(rt);
            }
            let roster = roster.clone();
            let abort = Arc::clone(&abort);
            let handle = thread::spawn(move || {
                match catch_unwind(AssertUnwindSafe(move || node.run(listener, &roster))) {
                    Ok(result) => result,
                    Err(_) => {
                        abort.store(true, Ordering::SeqCst);
                        Err(NetError::MemberPanicked { id })
                    }
                }
            });
            (id, handle)
        })
        .collect();

    Ok(LogCluster {
        client_addrs,
        ingresses,
        members: handles,
        servers,
    })
}

impl<T: Tracer> LogCluster<T> {
    /// The client listener address of every member.
    pub fn client_addrs(&self) -> &BTreeMap<NodeId, SocketAddr> {
        &self.client_addrs
    }

    /// One member's ingress handle (in-process prefix inspection).
    pub fn ingress(&self, id: NodeId) -> Option<&LogIngress> {
        self.ingresses.get(&id)
    }

    /// Waits for every member's ordering loop to reach the horizon and
    /// returns the reports. The client listeners **keep serving** — sealed
    /// prefixes stay readable until [`shutdown`](LogCluster::shutdown).
    ///
    /// # Errors
    ///
    /// As [`run_local_cluster`](crate::run_local_cluster).
    pub fn join_ordering(&mut self) -> Result<BTreeMap<NodeId, LogReport<T>>, NetError> {
        collect_reports(std::mem::take(&mut self.members))
    }

    /// Stops the client listeners. Call after
    /// [`join_ordering`](LogCluster::join_ordering) once readers are done.
    pub fn shutdown(self) {
        for server in self.servers {
            server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        // Pinned values: the mapping is part of the wire contract (clients
        // and every node must agree on it across builds).
        assert_eq!(shard_of("user/42", 4), shard_of("user/42", 4));
        for key in ["", "a", "user/42", "zzz"] {
            assert!(shard_of(key, 4) < 4);
            assert_eq!(shard_of(key, 1), 0);
        }
        // Different keys spread (FNV-1a of short ASCII strings).
        let spread: std::collections::BTreeSet<u32> = (0..32u32)
            .map(|i| shard_of(&format!("key-{i}"), 4))
            .collect();
        assert_eq!(spread.len(), 4, "32 keys cover all 4 shards");
    }

    #[test]
    fn record_round_trips_on_the_wire() {
        let record = Record {
            key: "user/42".into(),
            payload: vec![1, 2, 3],
            node: 9,
            seq: 17,
        };
        assert_eq!(Record::from_bytes(&record.to_bytes()), Some(record));
    }

    #[test]
    fn ingress_assigns_slots_and_dedups() {
        let ingress = LogIngress::new(4);
        let (shard, seq, fresh) = ingress.submit("k".into(), vec![1], 7).expect("accepting");
        assert!(fresh);
        assert_eq!(seq, 0);
        assert_eq!(shard, shard_of("k", 4));
        // Identical pair: same slot, not fresh.
        let dup = ingress.submit("k".into(), vec![1], 7).expect("re-acked");
        assert_eq!(dup, (shard, seq, false));
        // Same key, different payload: a new slot on the same shard.
        let (shard2, seq2, fresh2) = ingress.submit("k".into(), vec![2], 7).expect("accepting");
        assert_eq!(shard2, shard);
        assert_eq!(seq2, seq + 1);
        assert!(fresh2);
        // Only one pending record per fresh slot.
        let batches = ingress.take_batches();
        assert_eq!(batches[shard as usize].len(), 2);
        assert_eq!(batches.iter().map(Vec::len).sum::<usize>(), 2);
    }

    #[test]
    fn closed_ingress_refuses_fresh_but_reacks_duplicates() {
        let ingress = LogIngress::new(2);
        let (shard, seq, _) = ingress.submit("k".into(), vec![1], 3).expect("accepting");
        ingress.close_ingest();
        assert_eq!(ingress.submit("new".into(), vec![9], 3), None);
        // The duplicate's promise was already made; it survives the cutoff.
        assert_eq!(
            ingress.submit("k".into(), vec![1], 3),
            Some((shard, seq, false))
        );
    }

    #[test]
    fn sharded_log_in_the_simulator_orders_and_agrees() {
        use uba_sim::{sparse_ids, SyncEngine};
        let ids = sparse_ids(3, 13);
        let shards = 2;
        let ingest_until = 8;
        let horizon = service_horizon(ids.len(), ingest_until);
        let ingresses: BTreeMap<NodeId, LogIngress> = ids
            .iter()
            .map(|&id| (id, LogIngress::new(shards)))
            .collect();
        let mut engine = SyncEngine::builder()
            .correct_many(
                ids.iter()
                    .map(|&id| ShardedLog::new(id, ingresses[&id].clone(), ingest_until, horizon)),
            )
            .build();
        engine.run_rounds(3);
        // Submissions land at two different nodes mid-run.
        for (i, key) in ["a", "b", "c", "d"].iter().enumerate() {
            let node = ids[i % ids.len()];
            ingresses[&node]
                .submit((*key).into(), vec![i as u8], node.raw())
                .expect("ingest open");
        }
        let done = engine.run_to_completion(500).expect("horizon reached");
        let outputs: Vec<Vec<Vec<Record>>> = done.outputs.values().cloned().collect();
        for output in &outputs {
            assert_eq!(output, &outputs[0], "shard prefixes diverge across nodes");
        }
        let total: usize = outputs[0].iter().map(Vec::len).sum();
        assert_eq!(total, 4, "every acked submission ordered exactly once");
        for (shard, prefix) in outputs[0].iter().enumerate() {
            for record in prefix {
                assert_eq!(shard_of(&record.key, shards), shard as u32);
            }
        }
        for ingress in ingresses.values() {
            assert!(ingress.sealed(), "every node sealed its prefixes");
        }
    }

    #[test]
    fn unfinalized_prefix_reads_empty_and_unsealed() {
        let ingress = LogIngress::new(2);
        ingress.submit("k".into(), vec![1], 3).expect("accepting");
        let (records, sealed) = ingress.prefix_from(shard_of("k", 2), 0);
        assert!(records.is_empty(), "pending is not finalized");
        assert!(!sealed);
        // Out-of-range shard: empty, same sealed flag, no panic.
        let (records, sealed) = ingress.prefix_from(99, 0);
        assert!(records.is_empty() && !sealed);
    }
}
