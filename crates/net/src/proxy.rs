//! Deterministic WAN fault proxy: per-link latency, jitter, loss,
//! bandwidth caps and scheduled partitions over real TCP.
//!
//! A [`FaultProxy`] fronts every cluster member with its own listener.
//! Nodes dial the *fronts* instead of each other; each accepted connection
//! is relayed to the real member through a pair of per-direction shaping
//! threads that sit **between the sockets and the framed codec**: they
//! decode one [`Frame`] at a time, apply the [`LinkPlan`]'s impairments,
//! and re-encode. Because the codec is strictly canonical (decode rejects
//! any non-canonical body, `Data` payloads are carried opaquely), the
//! relay of an unimpaired frame is byte-identical to direct TCP — a
//! [`LinkPlan`] with zero impairment is provably invisible, which is what
//! lets experiments T11/T12 run unchanged through the proxy.
//!
//! # Determinism
//!
//! Every random decision is a pure splitmix64 draw from
//! `(plan seed, directed link, frame counter)` — the same vocabulary as
//! the dial jitter and the simulator's `FaultPlan` sampling. Which `Data`
//! frames a lossy link drops is therefore a function of the seed and the
//! (deterministic) frame sequence, not of wall-clock timing. Combined with
//! two structural rules — loss applies to `Data` frames only (`Done`
//! barrier markers and sync control frames always get through, as TCP's
//! retransmission would guarantee), and partitions are keyed on *round
//! numbers*, not wall-clock windows — a lossy run never times out at a
//! barrier, so its decisions replay exactly like a simulator run under the
//! equivalent `drop-link` faults (DESIGN.md §11). Latency, jitter and
//! bandwidth shaping delay frames but never reorder them (each direction
//! is a single FIFO thread), so they perturb wall-clock distributions —
//! the thing T13 measures — without touching the decision path as long as
//! delays stay under the round timeout.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use uba_sim::NodeId;
use uba_trace::{metric_name, NetEventKind, SharedRuntimeMetrics, TraceEvent};

use crate::conn::splitmix64;
use crate::wire::{read_frame, write_frame, Frame};

/// The golden-ratio increment splitmix64 itself uses; decorrelates the
/// per-frame draw streams from the per-link seeds.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Impairment of one *directed* link (the two directions of a connection
/// are shaped independently, so asymmetric links are expressible).
///
/// The default is zero impairment: no latency, no jitter, no loss, no
/// bandwidth cap — a frame is relayed as soon as it decodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkSpec {
    /// Fixed one-way delay added to every frame.
    pub latency: Duration,
    /// Upper bound of the per-frame jitter, drawn uniformly (and
    /// deterministically) from `[0, jitter]` on top of `latency`.
    pub jitter: Duration,
    /// Probability of dropping a [`Frame::Data`], in parts per million
    /// (`20_000` = 2%). Only protocol messages are lossy; `Done` markers
    /// and sync control frames always get through — see the module docs
    /// for why that keeps lossy runs deterministic.
    pub loss_ppm: u32,
    /// Bandwidth cap in bytes per second: each frame occupies the link for
    /// `wire_bytes / bandwidth`, and frames queue behind each other
    /// (head-of-line, like a real pipe). `None` = uncapped.
    pub bandwidth: Option<u64>,
}

impl LinkSpec {
    /// Zero impairment (the default): relay at full speed.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Sets the fixed one-way latency.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the jitter window.
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the `Data`-frame loss probability in parts per million.
    pub fn with_loss_ppm(mut self, ppm: u32) -> Self {
        self.loss_ppm = ppm;
        self
    }

    /// Sets the bandwidth cap in bytes per second.
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bandwidth = Some(bytes_per_sec);
        self
    }

    /// Whether this spec impairs nothing.
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }
}

/// One scheduled partition window: links crossing the cut (one endpoint in
/// `side`, the other outside it) are severed for `Data` and `Done` frames
/// whose round falls in `rounds`. Keying on round numbers instead of
/// wall-clock windows is what keeps the schedule deterministic; the heal
/// is the end of the range.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Rounds (half-open) during which the cut is in force.
    pub rounds: Range<u64>,
    /// One side of the cut; every link to a node outside it is severed.
    pub side: BTreeSet<NodeId>,
}

impl Partition {
    /// Whether this window severs the directed link `from -> to` at
    /// `round`.
    fn severs(&self, from: NodeId, to: NodeId, round: u64) -> bool {
        self.rounds.contains(&round) && (self.side.contains(&from) != self.side.contains(&to))
    }
}

/// The full WAN emulation script: a per-link impairment matrix plus
/// scheduled partitions, seeded for deterministic draws.
///
/// `LinkPlan` is to the transport what `FaultPlan` is to the simulator: a
/// declarative, seed-deterministic fault script. The two compose — a
/// lossy `LinkPlan` *is* a family of per-message `drop-link` faults, and a
/// partition window is a round-scoped bidirectional link cut (DESIGN.md
/// §11 gives the exact correspondence).
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use uba_net::{LinkPlan, LinkSpec};
/// use uba_sim::NodeId;
///
/// let (a, b) = (NodeId::new(1), NodeId::new(2));
/// let plan = LinkPlan::new(42)
///     .with_default(LinkSpec::zero().with_latency(Duration::from_millis(5)))
///     .with_link(a, b, LinkSpec::zero().with_loss_ppm(20_000))
///     .with_partition(3..5, [a]);
/// assert!(plan.severed(a, b, 3) && !plan.severed(a, b, 5));
/// ```
#[derive(Debug, Clone)]
pub struct LinkPlan {
    seed: u64,
    default: LinkSpec,
    links: BTreeMap<(NodeId, NodeId), LinkSpec>,
    partitions: Vec<Partition>,
}

impl LinkPlan {
    /// A zero-impairment plan: every link relays at full speed, nothing is
    /// dropped, nothing is partitioned. Provably byte-identical to direct
    /// TCP (see the module docs).
    pub fn new(seed: u64) -> Self {
        LinkPlan {
            seed,
            default: LinkSpec::default(),
            links: BTreeMap::new(),
            partitions: Vec::new(),
        }
    }

    /// Sets the impairment applied to every link without an explicit
    /// override.
    pub fn with_default(mut self, spec: LinkSpec) -> Self {
        self.default = spec;
        self
    }

    /// Overrides the impairment of one directed link.
    pub fn with_link(mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> Self {
        self.links.insert((from, to), spec);
        self
    }

    /// Schedules a partition: links between `side` and its complement are
    /// severed for rounds in `rounds` (half-open), then heal.
    pub fn with_partition(
        mut self,
        rounds: Range<u64>,
        side: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        self.partitions.push(Partition {
            rounds,
            side: side.into_iter().collect(),
        });
        self
    }

    /// The seed every loss/jitter draw derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The impairment of the directed link `from -> to` (an endpoint is
    /// `None` until the connection's `Hello` has identified it; such
    /// frames get the default spec).
    pub fn spec(&self, from: Option<NodeId>, to: Option<NodeId>) -> LinkSpec {
        match (from, to) {
            (Some(f), Some(t)) => self.links.get(&(f, t)).copied().unwrap_or(self.default),
            _ => self.default,
        }
    }

    /// Whether a scheduled partition severs `from -> to` at `round`.
    pub fn severed(&self, from: NodeId, to: NodeId, round: u64) -> bool {
        self.partitions.iter().any(|p| p.severs(from, to, round))
    }

    /// Whether the plan impairs nothing at all — the byte-identity case.
    pub fn is_zero_impairment(&self) -> bool {
        self.default.is_zero()
            && self.links.values().all(LinkSpec::is_zero)
            && self.partitions.is_empty()
    }

    /// The deterministic draw stream seed of one directed link.
    fn link_seed(&self, from: Option<NodeId>, to: Option<NodeId>) -> u64 {
        let f = from.map_or(u64::MAX, NodeId::raw);
        let t = to.map_or(u64::MAX, NodeId::raw);
        splitmix64(self.seed ^ f.rotate_left(32) ^ t)
    }
}

/// Canned WAN profiles for the `cluster` binary and experiment T13. The
/// exact numbers are documented in EXPERIMENTS.md (T13's profile tables);
/// they are sized so a smoke run finishes in seconds while still
/// exercising every impairment path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WanProfile {
    /// A three-region geo-distribution: members are assigned to regions
    /// round-robin (in id order); intra-region links are fast, inter-region
    /// links carry 10–25ms of latency plus proportional jitter. No loss —
    /// a geo run under a sufficient round timeout stays byte-identical to
    /// the simulator.
    Geo,
    /// A uniformly bad network: small latency and jitter, 2% `Data` loss,
    /// and a 256 KiB/s bandwidth cap per link.
    Lossy,
    /// A clean network with one scheduled cut: the first half of the
    /// members (in id order) is partitioned from the second half for
    /// rounds 3 and 4, then the cut heals.
    Partition,
}

impl WanProfile {
    /// Parses a profile name as the `cluster` binary's `--wan-profile`
    /// flag spells it.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "geo" => Some(WanProfile::Geo),
            "lossy" => Some(WanProfile::Lossy),
            "partition" => Some(WanProfile::Partition),
            _ => None,
        }
    }

    /// The flag spelling of this profile.
    pub fn name(self) -> &'static str {
        match self {
            WanProfile::Geo => "geo",
            WanProfile::Lossy => "lossy",
            WanProfile::Partition => "partition",
        }
    }

    /// Materializes the profile into a [`LinkPlan`] over `ids` (the region
    /// assignment and the partition cut follow the sorted id order).
    pub fn plan(self, seed: u64, ids: &[NodeId]) -> LinkPlan {
        let mut sorted: Vec<NodeId> = ids.to_vec();
        sorted.sort_unstable();
        match self {
            WanProfile::Geo => {
                // Latency between regions r0..r2, in milliseconds; the
                // diagonal is the intra-region delay.
                const LATENCY_MS: [[u64; 3]; 3] = [[2, 10, 25], [10, 2, 15], [25, 15, 2]];
                let region = |node: NodeId| sorted.iter().position(|&n| n == node).unwrap_or(0) % 3;
                let mut plan = LinkPlan::new(seed);
                for &from in &sorted {
                    for &to in &sorted {
                        if from == to {
                            continue;
                        }
                        let ms = LATENCY_MS[region(from)][region(to)];
                        let spec = LinkSpec::zero()
                            .with_latency(Duration::from_millis(ms))
                            .with_jitter(Duration::from_millis(ms / 5));
                        plan = plan.with_link(from, to, spec);
                    }
                }
                plan
            }
            WanProfile::Lossy => LinkPlan::new(seed).with_default(
                LinkSpec::zero()
                    .with_latency(Duration::from_millis(2))
                    .with_jitter(Duration::from_millis(1))
                    .with_loss_ppm(20_000)
                    .with_bandwidth(256 * 1024),
            ),
            WanProfile::Partition => {
                let side: Vec<NodeId> = sorted[..sorted.len() / 2].to_vec();
                LinkPlan::new(seed)
                    .with_default(LinkSpec::zero().with_latency(Duration::from_millis(2)))
                    .with_partition(3..5, side)
            }
        }
    }
}

/// Shared state of one proxy mesh: the plan, the optional runtime-metrics
/// registry, the collected `net_link_*` trace events, and the stop flag.
struct ProxyShared {
    plan: LinkPlan,
    metrics: Option<SharedRuntimeMetrics>,
    events: Mutex<Vec<TraceEvent>>,
    stop: AtomicBool,
}

/// A running WAN fault proxy mesh: one front listener per cluster member.
///
/// Build the real (inner) roster first, then [`spawn`](Self::spawn) the
/// proxy over it and hand [`roster`](Self::roster) — the front addresses —
/// to the nodes. Connections transit the front of whichever member was
/// dialed; the two directions of each connection are shaped independently
/// according to the plan's directed-link specs.
///
/// Dropping the proxy without [`shutdown`](Self::shutdown) leaves its
/// threads relaying until the process exits (harmless for tests, same
/// contract as [`crate::MetricsServer`]).
pub struct FaultProxy {
    fronts: BTreeMap<NodeId, SocketAddr>,
    shared: Arc<ProxyShared>,
    acceptors: Vec<JoinHandle<()>>,
}

impl FaultProxy {
    /// Binds one front listener per member of `inner` (the real roster)
    /// and starts relaying according to `plan`. Per-link counters land in
    /// `metrics` (families `net_link_frames_{forwarded,delayed,dropped,`
    /// `severed,throttled}_total{link="a->b"}` plus the
    /// `net_link_delay_micros` histogram), if attached.
    ///
    /// # Errors
    ///
    /// Propagates listener bind failures.
    pub fn spawn(
        inner: &BTreeMap<NodeId, SocketAddr>,
        plan: LinkPlan,
        metrics: Option<SharedRuntimeMetrics>,
    ) -> io::Result<FaultProxy> {
        let shared = Arc::new(ProxyShared {
            plan,
            metrics,
            events: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let mut fronts = BTreeMap::new();
        let mut acceptors = Vec::new();
        for (&owner, &target) in inner {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            fronts.insert(owner, listener.local_addr()?);
            let shared = Arc::clone(&shared);
            acceptors.push(thread::spawn(move || {
                accept_loop(listener, owner, target, shared)
            }));
        }
        Ok(FaultProxy {
            fronts,
            shared,
            acceptors,
        })
    }

    /// The proxied roster: each member's *front* address. Hand this to the
    /// nodes in place of the real roster; everything else runs unmodified.
    pub fn roster(&self) -> &BTreeMap<NodeId, SocketAddr> {
        &self.fronts
    }

    /// Drains the `net_link_*` trace events collected so far. Events of
    /// one direction are in order; the interleaving across links follows
    /// wall-clock observation order.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.shared.events.lock().expect("proxy events lock"))
    }

    /// Stops accepting and joins the acceptor threads. Established relays
    /// drain on their own when the endpoints close.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for addr in self.fronts.values() {
            // Unblock the accept call; the loop re-checks the flag first.
            let _ = TcpStream::connect(addr);
        }
        for handle in self.acceptors {
            let _ = handle.join();
        }
    }
}

/// The accept loop of one member's front: relay every inbound connection
/// to the member's real address through a pair of shaping threads.
fn accept_loop(listener: TcpListener, owner: NodeId, target: SocketAddr, shared: Arc<ProxyShared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(client) = stream else { break };
        if client.set_nodelay(true).is_err() {
            continue;
        }
        let Ok(upstream) = TcpStream::connect(target) else {
            continue; // member already gone; the dialer sees the close
        };
        if upstream.set_nodelay(true).is_err() {
            continue;
        }
        // The dialer identifies itself in its first frame (`Hello`); both
        // directions share the discovery. The node behind this front never
        // sends protocol traffic before the handshake completes, and the
        // handshake completes only after the inbound `Hello` passed
        // through (and filled this cell) — so the outbound direction
        // always knows the dialer by the time attribution matters.
        let dialer: Arc<OnceLock<NodeId>> = Arc::new(OnceLock::new());
        let (Ok(client_r), Ok(upstream_r)) = (client.try_clone(), upstream.try_clone()) else {
            continue;
        };
        {
            let (dialer, shared) = (Arc::clone(&dialer), Arc::clone(&shared));
            thread::spawn(move || pump(client_r, upstream, owner, true, dialer, shared));
        }
        {
            let shared = Arc::clone(&shared);
            thread::spawn(move || pump(upstream_r, client, owner, false, dialer, shared));
        }
    }
}

/// What the shaper decided for one frame.
enum Verdict {
    /// Drop the frame (loss draw or severed by a partition).
    Drop,
    /// Forward the frame no earlier than the given instant.
    Forward(Instant),
}

/// Per-direction shaping state: deterministic draw counters, the
/// bandwidth queue, and the once-per-round trace dedup.
struct Shaper {
    /// `Data` frames seen on this direction — the loss draw counter.
    data_index: u64,
    /// All shaped frames — the jitter draw counter.
    frame_index: u64,
    /// When the link's serialization queue drains (bandwidth cap).
    busy_until: Instant,
    /// Whether the previous round-carrying frame was severed (drives the
    /// one heal event per window).
    severing: bool,
    /// Round of the last emitted delay / throttle / partition event, so
    /// per-frame impairments trace at most once per round.
    traced_delay: Option<u64>,
    traced_throttle: Option<u64>,
    traced_partition: Option<u64>,
}

impl Shaper {
    fn new() -> Self {
        Shaper {
            data_index: 0,
            frame_index: 0,
            busy_until: Instant::now(),
            severing: false,
            traced_delay: None,
            traced_throttle: None,
            traced_partition: None,
        }
    }
}

/// The round a frame belongs to, for partition scheduling and trace
/// attribution. Control-plane frames (`Hello`, sync/backfill) return
/// `None` and are never severed: a rejoin negotiation may legitimately
/// span a partition window, and severing it would model a different fault
/// (a crash) than the scheduled cut.
fn frame_round(frame: &Frame) -> Option<u64> {
    match frame {
        Frame::Data { round, .. } | Frame::Done { round, .. } => Some(*round),
        _ => None,
    }
}

/// One relay direction: read frames off `reader`, shape them, forward the
/// survivors over `writer` in order. EOF/error on either side propagates
/// as a half-close so the endpoints observe exactly what direct TCP would
/// show them.
fn pump(
    reader: TcpStream,
    mut writer: TcpStream,
    owner: NodeId,
    inbound: bool,
    dialer: Arc<OnceLock<NodeId>>,
    shared: Arc<ProxyShared>,
) {
    let mut reader = BufReader::new(reader);
    let mut shaper = Shaper::new();
    while let Ok(Some(frame)) = read_frame(&mut reader) {
        if let Frame::Hello { node } = frame {
            // The connection preamble: exempt from shaping (it models the
            // TCP handshake, which the impairments sit on top of).
            if inbound {
                let _ = dialer.set(node);
            }
            if write_frame(&mut writer, &frame).is_err() {
                break;
            }
            continue;
        }
        let peer = dialer.get().copied();
        let (from, to) = if inbound {
            (peer, Some(owner))
        } else {
            (Some(owner), peer)
        };
        match shape(&frame, from, to, &mut shaper, &shared) {
            Verdict::Drop => continue,
            Verdict::Forward(deliver_at) => {
                let now = Instant::now();
                if deliver_at > now {
                    thread::sleep(deliver_at - now);
                }
                if write_frame(&mut writer, &frame).is_err() {
                    break;
                }
            }
        }
    }
    let _ = writer.shutdown(Shutdown::Write);
}

/// Applies the plan to one frame of the directed link `from -> to`.
fn shape(
    frame: &Frame,
    from: Option<NodeId>,
    to: Option<NodeId>,
    shaper: &mut Shaper,
    shared: &ProxyShared,
) -> Verdict {
    let plan = &shared.plan;
    let spec = plan.spec(from, to);
    let link_seed = plan.link_seed(from, to);
    let label = link_label(from, to);
    let round = frame_round(frame);

    // Scheduled partitions: sever round traffic crossing the cut.
    if let (Some(f), Some(t), Some(r)) = (from, to, round) {
        if plan.severed(f, t, r) {
            count(shared, "net_link_frames_severed_total", &label, 1);
            if shaper.traced_partition != Some(r) {
                shaper.traced_partition = Some(r);
                record(shared, r, NetEventKind::LinkPartition, from, to, || {
                    format!("round {r} severed on {label}")
                });
            }
            shaper.severing = true;
            return Verdict::Drop;
        }
        if shaper.severing {
            shaper.severing = false;
            record(shared, r, NetEventKind::LinkHeal, from, to, || {
                format!("round {r} crossing {label} again")
            });
        }
    }

    // Seeded loss, Data frames only (see the module docs for why).
    if matches!(frame, Frame::Data { .. }) {
        let index = shaper.data_index;
        shaper.data_index += 1;
        if spec.loss_ppm > 0 && loss_draw(link_seed, index) < spec.loss_ppm {
            count(shared, "net_link_frames_dropped_total", &label, 1);
            let r = round.unwrap_or(0);
            record(shared, r, NetEventKind::LinkDrop, from, to, || {
                format!("data frame {index} of round {r} lost on {label}")
            });
            return Verdict::Drop;
        }
    }

    // Delay: serialization under the bandwidth cap (frames queue behind
    // each other), then the fixed latency, then the jitter draw.
    let arrival = Instant::now();
    let start = shaper.busy_until.max(arrival);
    let tx = spec.bandwidth.map_or(Duration::ZERO, |bps| {
        let wire_bytes = frame.encoded_len() as u64;
        Duration::from_nanos(wire_bytes.saturating_mul(1_000_000_000) / bps.max(1))
    });
    shaper.busy_until = start + tx;
    let jitter = jitter_draw(link_seed, shaper.frame_index, spec.jitter);
    shaper.frame_index += 1;
    let deliver_at = shaper.busy_until + spec.latency + jitter;

    count(shared, "net_link_frames_forwarded_total", &label, 1);
    let delay = deliver_at.saturating_duration_since(arrival);
    if let Some(rt) = &shared.metrics {
        rt.observe_micros(
            "net_link_delay_micros",
            u64::try_from(delay.as_micros()).unwrap_or(u64::MAX),
        );
    }
    if !spec.latency.is_zero() || !spec.jitter.is_zero() {
        count(shared, "net_link_frames_delayed_total", &label, 1);
        if round.is_some() && shaper.traced_delay != round {
            shaper.traced_delay = round;
            let r = round.unwrap_or(0);
            record(shared, r, NetEventKind::LinkDelay, from, to, || {
                format!(
                    "round {r} delayed {}us on {label}",
                    u64::try_from(delay.as_micros()).unwrap_or(u64::MAX)
                )
            });
        }
    }
    if start > arrival {
        // The cap actually queued this frame behind an earlier one.
        count(shared, "net_link_frames_throttled_total", &label, 1);
        if round.is_some() && shaper.traced_throttle != round {
            shaper.traced_throttle = round;
            let r = round.unwrap_or(0);
            record(shared, r, NetEventKind::LinkThrottle, from, to, || {
                format!("round {r} queued behind the bandwidth cap on {label}")
            });
        }
    }
    Verdict::Forward(deliver_at)
}

/// The `link` label of a directed link, for metric families.
fn link_label(from: Option<NodeId>, to: Option<NodeId>) -> String {
    let fmt = |n: Option<NodeId>| n.map_or_else(|| "?".to_string(), |n| n.raw().to_string());
    format!("{}->{}", fmt(from), fmt(to))
}

/// Adds to a per-link counter family, if a registry is attached.
fn count(shared: &ProxyShared, family: &str, label: &str, n: u64) {
    if let Some(rt) = &shared.metrics {
        rt.add(&metric_name(family, &[("link", label)]), n);
    }
}

/// Records one `net_link_*` trace event. Only called for attributable
/// links (both endpoints known) or drops where attribution is partial; an
/// unknown endpoint is reported as node 0 with the label in `info`.
fn record(
    shared: &ProxyShared,
    round: u64,
    kind: NetEventKind,
    from: Option<NodeId>,
    to: Option<NodeId>,
    info: impl FnOnce() -> String,
) {
    let event = TraceEvent::Net {
        round,
        kind,
        node: from.map_or(0, NodeId::raw),
        peer: to.map(NodeId::raw),
        info: info(),
    };
    shared.events.lock().expect("proxy events lock").push(event);
}

/// The seeded loss draw for the `index`-th `Data` frame of a link, in
/// parts per million.
fn loss_draw(link_seed: u64, index: u64) -> u32 {
    (splitmix64(link_seed ^ index.wrapping_mul(GOLDEN)) % 1_000_000) as u32
}

/// The seeded jitter draw for the `index`-th frame of a link: uniform in
/// `[0, jitter]`.
fn jitter_draw(link_seed: u64, index: u64, jitter: Duration) -> Duration {
    let nanos = jitter.as_nanos() as u64;
    if nanos == 0 {
        return Duration::ZERO;
    }
    let draw = splitmix64(link_seed ^ GOLDEN ^ index.wrapping_mul(GOLDEN));
    Duration::from_nanos(draw % (nanos + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Vec<NodeId> {
        (1..=n).map(NodeId::new).collect()
    }

    #[test]
    fn zero_impairment_plan_reports_itself() {
        assert!(LinkPlan::new(7).is_zero_impairment());
        let lossy = LinkPlan::new(7).with_default(LinkSpec::zero().with_loss_ppm(1));
        assert!(!lossy.is_zero_impairment());
        let partitioned = LinkPlan::new(7).with_partition(2..3, [NodeId::new(1)]);
        assert!(!partitioned.is_zero_impairment());
    }

    #[test]
    fn partitions_sever_only_crossing_links_inside_the_window() {
        let (a, b, c) = (NodeId::new(1), NodeId::new(2), NodeId::new(3));
        let plan = LinkPlan::new(0).with_partition(3..5, [a]);
        for round in 3..5 {
            assert!(plan.severed(a, b, round) && plan.severed(b, a, round));
        }
        assert!(!plan.severed(b, c, 3), "same-side links stay up");
        assert!(!plan.severed(a, b, 2) && !plan.severed(a, b, 5));
    }

    #[test]
    fn loss_draws_are_deterministic_and_roughly_calibrated() {
        let plan = LinkPlan::new(42);
        let seed = plan.link_seed(Some(NodeId::new(1)), Some(NodeId::new(2)));
        let first: Vec<u32> = (0..64).map(|i| loss_draw(seed, i)).collect();
        let second: Vec<u32> = (0..64).map(|i| loss_draw(seed, i)).collect();
        assert_eq!(first, second, "pure function of (seed, index)");
        // A 10% threshold over 10_000 draws lands near 1_000 hits; the
        // draw is a fixed function, so this bound is exact, not flaky.
        let hits = (0..10_000)
            .filter(|&i| loss_draw(seed, i) < 100_000)
            .count();
        assert!((700..1_300).contains(&hits), "got {hits} hits");
        // Different links decorrelate.
        let other = plan.link_seed(Some(NodeId::new(2)), Some(NodeId::new(1)));
        assert_ne!(seed, other);
    }

    #[test]
    fn jitter_draw_is_bounded_and_deterministic() {
        let window = Duration::from_millis(10);
        for index in 0..128 {
            let a = jitter_draw(9, index, window);
            assert_eq!(a, jitter_draw(9, index, window));
            assert!(a <= window);
        }
        assert_eq!(jitter_draw(9, 0, Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn wan_profiles_parse_and_materialize() {
        for profile in [WanProfile::Geo, WanProfile::Lossy, WanProfile::Partition] {
            assert_eq!(WanProfile::parse(profile.name()), Some(profile));
        }
        assert_eq!(WanProfile::parse("dialup"), None);

        let ids = ids(4);
        let geo = WanProfile::Geo.plan(1, &ids);
        // Nodes 1 and 4 share region 0 (round-robin of 4 over 3 regions);
        // 1 -> 2 crosses regions 0 -> 1.
        assert_eq!(
            geo.spec(Some(ids[0]), Some(ids[3])).latency,
            Duration::from_millis(2)
        );
        assert_eq!(
            geo.spec(Some(ids[0]), Some(ids[1])).latency,
            Duration::from_millis(10)
        );
        assert!(!geo.is_zero_impairment());

        let lossy = WanProfile::Lossy.plan(1, &ids);
        assert_eq!(lossy.spec(Some(ids[0]), Some(ids[1])).loss_ppm, 20_000);

        let partition = WanProfile::Partition.plan(1, &ids);
        assert!(partition.severed(ids[0], ids[2], 3));
        assert!(!partition.severed(ids[0], ids[1], 3), "same side");
        assert!(!partition.severed(ids[0], ids[2], 5), "healed");
    }
}
