//! [`ByzantineNode`]: a scripted hostile cluster member for adversarial
//! deployments on the real wire.
//!
//! The simulator already has a first-class adversary suite
//! (`uba-adversary`): rushing equivocators, replayers and silencers that
//! exercise the paper's `n > 3f` resilience bound inside one process. This
//! module is its transport twin — a node that joins a **real** TCP cluster,
//! completes the `Hello` handshake like any honest member, and then runs a
//! seeded, replayable [`AttackPlan`] instead of a `Process`. The attack
//! vocabulary deliberately mirrors `crates/adversary/src/attacks.rs` so the
//! same hostile behavior is expressible in both worlds; for the
//! value-equivocation script the wire run is byte-identical to the sim twin
//! (experiment T15 locks this).
//!
//! # Attack vocabulary
//!
//! | [`AttackKind`]   | behavior on the wire                                   | honest response (DESIGN.md §13) |
//! |------------------|--------------------------------------------------------|---------------------------------|
//! | `Equivocate`     | split consensus values across the correct nodes, as `ConsensusEquivocator` | tolerated: `n > 3f` absorbs it |
//! | `Replay`         | burst stale-round `Data` frames every round            | `stale_replay` strikes → evict  |
//! | `Corrupt`        | append undecodable bytes after valid frames            | `malformed_frame` strikes → evict |
//! | `Oversize`       | write a 4 GiB length prefix                            | `oversize_frame` strikes → evict |
//! | `Flood`          | blast duplicate `Data` frames past the ingress quota   | `flood` strikes → evict         |
//! | `Stall`          | handshake, then withhold every `Done` barrier marker   | omission timeouts → `peer_gone` (no eviction: silence is not malice) |
//! | `BackfillSpam`   | repeat `SyncRequest`s within one round                 | `sync_spam` strikes → evict     |
//!
//! Except for `Stall`, the node stays barrier-synchronized: it publishes
//! `Done { decided: true }` every round (so honest shutdown-in-unison still
//! works) and advances only after collecting the honest `Done` markers —
//! exactly the lock-step discipline of [`NetNode`](crate::NetNode), minus
//! the process.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use uba_core::consensus::{phase_of_round, ConsensusMsg, INIT_ROUNDS};
use uba_sim::NodeId;

use crate::conn::{connect_with_retry, handshake, spawn_reader, LinkEvent, Links};
use crate::node::NetConfig;
use crate::wire::{Frame, Wire};

/// One scripted hostile behavior, the wire-level mirror of the simulator's
/// adversary vocabulary (`crates/adversary/src/attacks.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackKind {
    /// Value equivocation, exactly `ConsensusEquivocator::new(a, b)`: round
    /// 1 broadcasts `RotorInit`, and every consensus phase round sends `a`
    /// to the lower half of the correct nodes (sorted by id) and `b` to the
    /// upper half. Model-allowed lying — honest nodes tolerate it via
    /// `n > 3f` rather than detect it, and the run is byte-identical to the
    /// sim twin executing the same plan.
    Equivocate {
        /// The value pushed to the lower half of the correct nodes.
        a: u64,
        /// The value pushed to the upper half.
        b: u64,
    },
    /// From round 2 on, re-send `burst` copies of the round-1 `Data` frame
    /// to the victim every round. Inside the receiver's round window the
    /// copies are harmless late traffic; once the window has moved past
    /// round 1 each copy is a `stale_replay` strike.
    Replay {
        /// Stale frames per round; `strike_limit` of them in one round
        /// forces the eviction within that round.
        burst: u32,
    },
    /// After each round's honest-looking traffic, write bytes to the victim
    /// that no codec accepts (a valid length prefix followed by an invalid
    /// body). Each connection dies with one `malformed_frame` strike; the
    /// node redials and repeats until evicted.
    Corrupt,
    /// Like [`Corrupt`](Self::Corrupt), but the poison is a `0xFFFF_FFFF`
    /// (4 GiB) length prefix: the receiver must refuse it *before*
    /// allocating, charging an `oversize_frame` strike.
    Oversize,
    /// Send `frames_per_round` duplicate `Data` frames to every correct
    /// peer each round, blowing through the per-peer ingress quota
    /// (`flood` strikes, eviction within the flooded round).
    Flood {
        /// Frames per peer per round; must exceed the victim's
        /// `max_frames_per_round` plus its `strike_limit` to force the
        /// eviction inside one round.
        frames_per_round: u64,
    },
    /// Complete the handshake, then never send anything again — the
    /// barrier-withholding attack. Honest nodes charge omission timeouts
    /// and declare the peer gone after `give_up_after` silent rounds; no
    /// strikes, no eviction (silence is indistinguishable from a crash and
    /// is attributed as omission, not malice).
    Stall,
    /// Send `requests_per_round` identical `SyncRequest { since: 1 }`
    /// frames to the victim every round. The first per round is served (the
    /// legitimate rejoin path); every repeat is a `sync_spam` strike.
    BackfillSpam {
        /// Requests per round; repeats beyond the first strike.
        requests_per_round: u32,
    },
}

impl AttackKind {
    /// The attack's stable name, as used by `--attack` on the cluster
    /// binary and in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::Equivocate { .. } => "equivocate",
            AttackKind::Replay { .. } => "replay",
            AttackKind::Corrupt => "corrupt",
            AttackKind::Oversize => "oversize",
            AttackKind::Flood { .. } => "flood",
            AttackKind::Stall => "stall",
            AttackKind::BackfillSpam { .. } => "backfill-spam",
        }
    }

    /// Parses an attack name (as accepted by `--attack`) into its kind with
    /// default parameters. `None` for an unknown name.
    pub fn parse(name: &str) -> Option<AttackKind> {
        match name {
            "equivocate" => Some(AttackKind::Equivocate { a: 0, b: 1 }),
            "replay" => Some(AttackKind::Replay { burst: 3 }),
            "corrupt" => Some(AttackKind::Corrupt),
            "oversize" => Some(AttackKind::Oversize),
            "flood" => Some(AttackKind::Flood {
                frames_per_round: 256,
            }),
            "stall" => Some(AttackKind::Stall),
            "backfill-spam" | "backfill_spam" => Some(AttackKind::BackfillSpam {
                requests_per_round: 3,
            }),
            _ => None,
        }
    }

    /// Every parseable attack name, for `--help` text and exhaustive
    /// experiment sweeps.
    pub fn all_names() -> [&'static str; 7] {
        [
            "equivocate",
            "replay",
            "corrupt",
            "oversize",
            "flood",
            "stall",
            "backfill-spam",
        ]
    }
}

/// A seeded, replayable attack script: what to do, who the conspirators
/// are, and the seed making every randomized choice a pure function.
///
/// The same plan drives both worlds: handed to a [`ByzantineNode`] it runs
/// on real sockets; its `Equivocate` form corresponds 1:1 to the
/// simulator's `ConsensusEquivocator` so T15 can assert byte-identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackPlan {
    /// Seed for deterministic choices (victim rotation, jitter).
    pub seed: u64,
    /// The scripted behavior.
    pub kind: AttackKind,
    /// Every Byzantine member of the cluster (including the node executing
    /// this plan). Needed so conspirators agree on the *correct* set — the
    /// equivocation halves must match the sim adversary's view exactly.
    pub byzantine: BTreeSet<NodeId>,
}

impl AttackPlan {
    /// A plan for `kind` with the given conspirator set.
    pub fn new(seed: u64, kind: AttackKind, byzantine: impl IntoIterator<Item = NodeId>) -> Self {
        AttackPlan {
            seed,
            kind,
            byzantine: byzantine.into_iter().collect(),
        }
    }

    /// The correct (honest) members of `roster` under this plan, sorted by
    /// id — the same view the sim adversary's `view.correct` exposes.
    pub fn correct_of(&self, roster: &BTreeMap<NodeId, SocketAddr>) -> Vec<NodeId> {
        roster
            .keys()
            .copied()
            .filter(|id| !self.byzantine.contains(id))
            .collect()
    }
}

/// What a [`ByzantineNode`] run observed, for verdict tables and tests.
#[derive(Debug, Default, Clone)]
pub struct ByzReport {
    /// Rounds the script acted in before the cluster wound down.
    pub rounds: u64,
    /// Frames (plus raw poison writes) sent in total.
    pub frames_sent: u64,
    /// Honest peers whose links went permanently dead on us — evictions
    /// observed from the receiving end, or honest shutdowns.
    pub peers_lost: u64,
}

/// A scripted hostile cluster member: handshakes like an honest
/// [`NetNode`](crate::NetNode), then executes an [`AttackPlan`] against the
/// cluster instead of running a process.
///
/// The node follows the honest dialing convention (dial larger ids, accept
/// smaller ones), keeps the barrier cadence by publishing
/// `Done { decided: true }` every round, and terminates once every honest
/// peer has decided or dropped the link — so a cluster with Byzantine
/// members still shuts down in unison.
#[derive(Debug)]
pub struct ByzantineNode {
    me: NodeId,
    plan: AttackPlan,
    config: NetConfig,
}

/// Raw write halves of every live connection, keyed by peer. The framed
/// path goes through [`Links`] like an honest node; the raw clones exist so
/// poison attacks can write bytes `write_frame` would refuse.
type RawWriters = Arc<Mutex<BTreeMap<NodeId, TcpStream>>>;

/// Per-honest-peer bookkeeping for the barrier-following loop.
#[derive(Debug, Default)]
struct PeerTrack {
    /// Highest round the peer published `Done` for.
    done_round: u64,
    /// Whether that `Done` carried `decided: true`.
    decided: bool,
    /// Consecutive barrier timeouts charged to the peer.
    silent: u64,
    /// Closes observed with no replacement link (evictions look like this).
    closes: u32,
    /// Permanently written off: evicted us, decided and left, or dead.
    gone: bool,
}

impl ByzantineNode {
    /// A hostile member with identity `me` executing `plan`. The config
    /// supplies the timing knobs (`round_timeout`, `setup_timeout`,
    /// `give_up_after`, `max_rounds`, dial retry policy) — pass the same
    /// config as the honest members so the cadences line up.
    pub fn new(me: NodeId, plan: AttackPlan, config: NetConfig) -> Self {
        ByzantineNode { me, plan, config }
    }

    /// Joins the cluster on `listener` / `roster` and runs the script to
    /// completion. Returns what the script observed; a hostile node has no
    /// output and no invariants, so any transport failure simply ends the
    /// run early with the partial report.
    ///
    /// # Errors
    ///
    /// Only listener-level I/O failures surface; per-peer dial and write
    /// failures are the attack's problem and are swallowed (an evicted
    /// attacker losing its sockets is the expected outcome).
    pub fn run(
        self,
        listener: TcpListener,
        roster: &BTreeMap<NodeId, SocketAddr>,
    ) -> io::Result<ByzReport> {
        let me = self.me;
        let correct = self.plan.correct_of(roster);
        let links = Links::new();
        let raws: RawWriters = Arc::new(Mutex::new(BTreeMap::new()));
        let (tx, rx) = mpsc::channel::<LinkEvent>();

        spawn_byz_acceptor(listener, me, links.clone(), Arc::clone(&raws), tx.clone());
        for (&peer, &addr) in roster {
            if peer > me {
                // Dial failures are fine: the peer may accept us later, or
                // never — a hostile node takes what it can get.
                let _ = byz_dial(addr, me, peer, &self.config, &links, &raws, &tx);
            }
        }

        let mut report = ByzReport::default();
        let mut track: BTreeMap<NodeId, PeerTrack> = correct
            .iter()
            .map(|&id| (id, PeerTrack::default()))
            .collect();

        // Setup: wait (bounded) until every honest peer has a live link, so
        // round-1 traffic lands inside every honest setup phase.
        let setup_deadline = Instant::now() + self.config.setup_timeout;
        while Instant::now() < setup_deadline {
            let connected: BTreeSet<NodeId> = links.connected().into_iter().collect();
            if correct.iter().all(|id| connected.contains(id)) {
                break;
            }
            match rx.recv_timeout(
                self.config
                    .round_timeout
                    .min(setup_deadline - Instant::now()),
            ) {
                Ok(_) | Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Ok(report),
            }
        }

        if self.plan.kind == AttackKind::Stall {
            // The whole attack is silence: drain events until every honest
            // peer writes us off and closes, then leave.
            self.stall(&rx, &links, &mut track, &mut report);
            links.shutdown_all();
            return Ok(report);
        }

        let mut round: u64 = 1;
        loop {
            report.rounds = round;
            self.act(
                round,
                &correct,
                roster,
                &links,
                &raws,
                &tx,
                &mut track,
                &mut report,
            );

            // Publish the barrier marker; a Byzantine member always claims
            // `decided` so honest shutdown-in-unison is never blocked on us.
            let done = Frame::Done {
                round,
                decided: true,
            };
            for &peer in &correct {
                if !track.get(&peer).is_some_and(|t| t.gone) && links.send(peer, &done) {
                    report.frames_sent += 1;
                }
            }

            self.barrier(round, &rx, &links, &mut track);

            let live: Vec<&PeerTrack> = track.values().filter(|t| !t.gone).collect();
            if live.is_empty() {
                break; // everyone evicted us or left
            }
            if links.connected().is_empty() {
                break; // every socket is gone — the cluster moved on without us
            }
            if live.iter().all(|t| t.decided && t.done_round >= round) {
                break; // honest cluster decided; it shuts down after this barrier
            }
            round += 1;
            if round > self.config.max_rounds {
                break;
            }
        }

        links.shutdown_all();
        Ok(report)
    }

    /// One round of scripted hostile traffic.
    #[allow(clippy::too_many_arguments)]
    fn act(
        &self,
        round: u64,
        correct: &[NodeId],
        roster: &BTreeMap<NodeId, SocketAddr>,
        links: &Links,
        raws: &RawWriters,
        events: &Sender<LinkEvent>,
        track: &mut BTreeMap<NodeId, PeerTrack>,
        report: &mut ByzReport,
    ) {
        // The deterministic victim of the point-to-point attacks: the
        // lowest-id honest peer still talking to us.
        let victim = correct
            .iter()
            .copied()
            .find(|id| !track.get(id).is_some_and(|t| t.gone));
        // Poison attacks burn one connection per strike; redial first so
        // this round's strike has a socket to ride on.
        if matches!(self.plan.kind, AttackKind::Corrupt | AttackKind::Oversize) {
            if let Some(victim) = victim {
                self.redial_if_needed(victim, roster, links, raws, events, track);
            }
        }

        match &self.plan.kind {
            AttackKind::Equivocate { a, b } => {
                for (peer, frame) in equivocation_frames(round, correct, *a, *b) {
                    if links.send(peer, &frame) {
                        report.frames_sent += 1;
                    }
                }
            }
            AttackKind::Replay { burst } => {
                if round == 1 {
                    report.frames_sent += broadcast(links, correct, &rotor_init_frame(1));
                } else if let Some(victim) = victim {
                    let stale = rotor_init_frame(1);
                    for _ in 0..*burst {
                        if links.send(victim, &stale) {
                            report.frames_sent += 1;
                        }
                    }
                }
            }
            AttackKind::Corrupt => {
                if round == 1 {
                    report.frames_sent += broadcast(links, correct, &rotor_init_frame(1));
                }
                if let Some(victim) = victim {
                    // Honest-looking barrier first (written below), poison
                    // after: the victim keeps making progress while its
                    // strike ledger fills. A malformed body behind a valid
                    // length prefix: tag 0xEE exists in no codec.
                    report.frames_sent +=
                        raw_write(raws, victim, &[5, 0, 0, 0, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE]);
                }
            }
            AttackKind::Oversize => {
                if round == 1 {
                    report.frames_sent += broadcast(links, correct, &rotor_init_frame(1));
                }
                if let Some(victim) = victim {
                    // A 4 GiB length prefix. The hardened `read_frame`
                    // must refuse it before allocating (satellite test in
                    // `wire.rs`), so this costs the victim nothing but a
                    // strike entry.
                    report.frames_sent += raw_write(raws, victim, &0xFFFF_FFFFu32.to_le_bytes());
                }
            }
            AttackKind::Flood { frames_per_round } => {
                let noise = rotor_init_frame(round);
                for &peer in correct {
                    if track.get(&peer).is_some_and(|t| t.gone) {
                        continue;
                    }
                    for _ in 0..*frames_per_round {
                        if !links.send(peer, &noise) {
                            break; // evicted mid-flood: socket is gone
                        }
                        report.frames_sent += 1;
                    }
                }
            }
            AttackKind::Stall => unreachable!("stall short-circuits before the round loop"),
            AttackKind::BackfillSpam { requests_per_round } => {
                if round == 1 {
                    report.frames_sent += broadcast(links, correct, &rotor_init_frame(1));
                }
                if let Some(victim) = victim {
                    let request = Frame::SyncRequest { since: 1 };
                    for _ in 0..*requests_per_round {
                        if links.send(victim, &request) {
                            report.frames_sent += 1;
                        }
                    }
                }
            }
        }
    }

    /// Re-establishes the link to `peer` if a poison write burned it: each
    /// corrupt/oversize strike costs the connection, so the next strike
    /// needs a fresh one. Repeated dial failures (or eviction-shaped
    /// instant closes, counted by [`handle_event`]) write the peer off.
    fn redial_if_needed(
        &self,
        peer: NodeId,
        roster: &BTreeMap<NodeId, SocketAddr>,
        links: &Links,
        raws: &RawWriters,
        events: &Sender<LinkEvent>,
        track: &mut BTreeMap<NodeId, PeerTrack>,
    ) {
        if links.connected().contains(&peer) {
            return;
        }
        let entry = track.entry(peer).or_default();
        if entry.gone {
            return;
        }
        let Some(&addr) = roster.get(&peer) else {
            entry.gone = true;
            return;
        };
        // A redial that keeps failing means the peer banned us (or died);
        // the close accounting in `handle_event` and the give-up budget in
        // `barrier` take it from there.
        if byz_dial(addr, self.me, peer, &self.config, links, raws, events).is_err() {
            entry.closes += 1;
            if entry.closes >= 2 {
                entry.gone = true;
            }
        }
    }

    /// Waits out one barrier: collects `Done` markers from the live honest
    /// peers, charging silence and link loss exactly like an honest node
    /// would (minus the attribution — an attacker keeps no ledger).
    fn barrier(
        &self,
        round: u64,
        rx: &Receiver<LinkEvent>,
        links: &Links,
        track: &mut BTreeMap<NodeId, PeerTrack>,
    ) {
        let deadline = Instant::now() + self.config.round_timeout;
        loop {
            let satisfied = track
                .values()
                .filter(|t| !t.gone)
                .all(|t| t.done_round >= round);
            if satisfied {
                for t in track.values_mut() {
                    if !t.gone {
                        t.silent = 0;
                    }
                }
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                // Charge the silent peers and advance anyway — an attacker
                // that blocks on a dead victim stalls its own script.
                for t in track.values_mut() {
                    if !t.gone && t.done_round < round {
                        t.silent += 1;
                        if t.silent >= self.config.give_up_after {
                            t.gone = true;
                        }
                    }
                }
                return;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(event) => handle_event(event, links, track),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    for t in track.values_mut() {
                        t.gone = true;
                    }
                    return;
                }
            }
        }
    }

    /// The `Stall` script: total silence until every honest peer writes us
    /// off (omission give-up) and the links die, or the cluster's worst-case
    /// run time elapses.
    fn stall(
        &self,
        rx: &Receiver<LinkEvent>,
        links: &Links,
        track: &mut BTreeMap<NodeId, PeerTrack>,
        report: &mut ByzReport,
    ) {
        // Honest peers write a silent member off after `give_up_after`
        // barrier timeouts, then finish their run and close; a couple of
        // extra rounds of slack covers the decision tail.
        let budget = self.config.round_timeout * (self.config.give_up_after as u32 + 2)
            + self.config.setup_timeout;
        let deadline = Instant::now() + budget;
        while Instant::now() < deadline {
            if track.values().all(|t| t.gone) {
                break;
            }
            match rx.recv_timeout(self.config.round_timeout.min(deadline - Instant::now())) {
                Ok(event) => handle_event(event, links, track),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        report.peers_lost = track.values().filter(|t| t.gone).count() as u64;
    }
}

/// Folds one link event into the peer ledger: `Done` markers advance the
/// barrier view, closes with no replacement link count toward writing the
/// peer off (that is what being evicted looks like from the attacker's
/// side).
fn handle_event(event: LinkEvent, links: &Links, track: &mut BTreeMap<NodeId, PeerTrack>) {
    match event {
        LinkEvent::Frame {
            from,
            frame: Frame::Done { round, decided },
        } => {
            if let Some(t) = track.get_mut(&from) {
                if round >= t.done_round {
                    t.done_round = round;
                    t.decided = decided;
                }
                t.silent = 0;
            }
        }
        // Honest Data / SyncTips / Backfill traffic is of no interest to a
        // scripted attacker; drain and drop.
        LinkEvent::Frame { .. } | LinkEvent::Corrupt { .. } => {}
        LinkEvent::Connected { peer, .. } => {
            if let Some(t) = track.get_mut(&peer) {
                t.closes = 0;
            }
        }
        LinkEvent::Closed { peer, .. } => {
            if !links.connected().contains(&peer) {
                if let Some(t) = track.get_mut(&peer) {
                    t.closes += 1;
                    // An evicted attacker sees its redials shut down on
                    // arrival; a decided peer never comes back at all.
                    if t.closes >= 2 {
                        t.gone = true;
                    }
                }
            }
        }
    }
}

/// Sends `frame` to every correct peer, returning the number delivered.
fn broadcast(links: &Links, correct: &[NodeId], frame: &Frame) -> u64 {
    correct
        .iter()
        .filter(|&&peer| links.send(peer, frame))
        .count() as u64
}

/// The `RotorInit` participation frame for `round` — the cheapest valid
/// consensus payload, used both as benign participation (so the attacker is
/// counted among the rotor candidates exactly like the sim adversary) and
/// as flood filler.
fn rotor_init_frame(round: u64) -> Frame {
    Frame::Data {
        round,
        payload: ConsensusMsg::<u64>::RotorInit.to_bytes(),
    }
}

/// The wire twin of `ConsensusEquivocator::act` for one Byzantine sender:
/// which `Data` frame goes to which correct peer in `round`. Round 1
/// broadcasts `RotorInit`; consensus phase rounds split `a` / `b` across
/// the sorted correct set exactly like the simulator's `split_send`, so a
/// cluster under this script is byte-identical to the sim twin.
pub fn equivocation_frames(round: u64, correct: &[NodeId], a: u64, b: u64) -> Vec<(NodeId, Frame)> {
    if round <= INIT_ROUNDS {
        if round == 1 {
            return correct
                .iter()
                .map(|&peer| (peer, rotor_init_frame(round)))
                .collect();
        }
        return Vec::new();
    }
    let (_phase, phase_round) = phase_of_round(round);
    let make: fn(u64) -> ConsensusMsg<u64> = match phase_round {
        1 => ConsensusMsg::Input,
        2 => ConsensusMsg::Prefer,
        3 => ConsensusMsg::StrongPrefer,
        4 => ConsensusMsg::Opinion,
        _ => return Vec::new(),
    };
    let half = correct.len() / 2;
    correct
        .iter()
        .enumerate()
        .map(|(i, &peer)| {
            let v = if i < half { a } else { b };
            (
                peer,
                Frame::Data {
                    round,
                    payload: make(v).to_bytes(),
                },
            )
        })
        .collect()
}

/// Writes raw bytes straight onto the socket to `peer`, bypassing
/// `write_frame` and its bounds. Returns 1 if the write went out (for the
/// frame counter), 0 if the link is gone.
fn raw_write(raws: &RawWriters, peer: NodeId, bytes: &[u8]) -> u64 {
    let mut table = raws.lock().expect("raw writers lock");
    let Some(stream) = table.get_mut(&peer) else {
        return 0;
    };
    if stream
        .write_all(bytes)
        .and_then(|()| stream.flush())
        .is_ok()
    {
        1
    } else {
        table.remove(&peer);
        0
    }
}

/// The attacker's accept loop: like
/// [`spawn_acceptor`](crate::conn::spawn_acceptor), but it also stashes a
/// raw clone of each accepted stream so poison attacks can write bytes the
/// framed path refuses.
fn spawn_byz_acceptor(
    listener: TcpListener,
    me: NodeId,
    links: Links,
    raws: RawWriters,
    events: Sender<LinkEvent>,
) {
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            if stream.set_nodelay(true).is_err() {
                continue;
            }
            let Ok(peer) = handshake(&mut stream, me) else {
                continue;
            };
            let (Ok(reader_half), Ok(raw_half)) = (stream.try_clone(), stream.try_clone()) else {
                continue;
            };
            raws.lock()
                .expect("raw writers lock")
                .insert(peer, raw_half);
            let generation = links.install(peer, stream);
            if events
                .send(LinkEvent::Connected { peer, generation })
                .is_err()
            {
                return;
            }
            spawn_reader(reader_half, peer, generation, links.clone(), events.clone());
        }
    });
}

/// The attacker's dialer: like [`dial_peer`](crate::conn::dial_peer), but
/// keeps a raw clone of the stream (see [`spawn_byz_acceptor`]) and does
/// not insist the endpoint announce the expected id — an attacker is not
/// picky about who it talks to.
fn byz_dial(
    addr: SocketAddr,
    me: NodeId,
    peer: NodeId,
    config: &NetConfig,
    links: &Links,
    raws: &RawWriters,
    events: &Sender<LinkEvent>,
) -> io::Result<()> {
    let mut policy = config.retry;
    policy.jitter_seed = me.raw() ^ peer.raw().rotate_left(32);
    let mut stream = connect_with_retry(addr, policy, |_| {})?;
    let announced = handshake(&mut stream, me)?;
    let (reader_half, raw_half) = (stream.try_clone()?, stream.try_clone()?);
    raws.lock()
        .expect("raw writers lock")
        .insert(announced, raw_half);
    let generation = links.install(announced, stream);
    let _ = events.send(LinkEvent::Connected {
        peer: announced,
        generation,
    });
    spawn_reader(
        reader_half,
        announced,
        generation,
        links.clone(),
        events.clone(),
    );
    Ok(())
}
