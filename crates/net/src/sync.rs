//! The round synchronizer: the pure state machine that turns an unordered
//! stream of per-peer frames into the simulator's lock-step round semantics.
//!
//! # Barrier protocol
//!
//! Every member finishes round `r` by sending all of its `Data { round: r }`
//! frames followed by one `Done { round: r }` frame on each link. Because
//! TCP preserves per-link order, receiving a peer's `Done { r }` proves all
//! of its round-`r` data already arrived. The barrier for round `r` releases
//! when every *expected* peer's `Done { r }` is in — or when the caller
//! gives up waiting ([`timed_out`](RoundSynchronizer::timed_out)) and
//! charges the missing peers with an omission for the round.
//!
//! The synchronizer enforces the same delivery rules as the simulator's
//! `SyncEngine`:
//!
//! * messages sent in round `r` are delivered at the start of round `r + 1`;
//! * duplicate `(sender, payload)` pairs within one round are discarded;
//! * the inbox is ordered by sender id, then by the sender's send order —
//!   byte-for-byte the engine's delivery order, which is what makes
//!   sim-vs-net equivalence checkable at all.
//!
//! Peers may legitimately run *ahead* of this node (they released a barrier
//! we timed out of): frames for future rounds are buffered, not dropped.
//! Frames for rounds this node has already advanced past are late — the
//! payload missed its delivery slot, which is exactly a receive omission in
//! the fault model's terms — and are dropped with a
//! [`LateDrop`](uba_trace::NetEventKind::LateDrop) outcome.
//!
//! # Round window (DESIGN.md §13)
//!
//! "Ahead" and "behind" are bounded: no honest peer can be more than the
//! retained-history window away from this node's current round, because a
//! rejoiner is backfilled from at most that much history and a live peer
//! only outruns us by charging timeouts. Frames beyond
//! `current + round_window` ([`DataOutcome::FarFuture`]) would let a
//! hostile peer allocate unbounded buckets; frames older than
//! `current - round_window` ([`DataOutcome::Stale`]) are replays of
//! long-dead rounds no honest peer still retains. Both are **misbehavior**,
//! not omissions, and the caller attributes them to the offending peer.
//! Two further per-round promises are checked: a peer's `Done { r }` claims
//! all of its round-`r` data was sent, so round-`r` data arriving *after*
//! it is an injection ([`DataOutcome::PostDone`]), and two `Done { r }`
//! markers with opposite `decided` flags are a barrier equivocation
//! ([`DoneOutcome::Conflict`]); delivery is first-writer-wins in both
//! cases, so an equivocator cannot retroactively rewrite a released slot.
//!
//! The synchronizer owns no sockets and performs no I/O, so every barrier
//! corner case (late peer, duplicate frame, peer loss mid-round) is testable
//! without opening a connection.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use uba_sim::{MsgRef, NodeId, Payload};

/// Default round window: matches `NetConfig::history_rounds`, the deepest
/// backfill any honest peer can serve.
pub const DEFAULT_ROUND_WINDOW: u64 = 64;

/// What became of one incoming `Data` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataOutcome {
    /// Accepted: the payload will appear in the inbox of `round + 1`.
    Delivered,
    /// A `(sender, payload)` pair already seen this round — discarded, per
    /// the model's per-round duplicate rule.
    Duplicate,
    /// The frame's round has already been advanced past; the payload missed
    /// its slot (an omission) and is dropped.
    Late,
    /// The frame's round is further in the past than any honest peer still
    /// retains (`round + round_window < current`): a stale-round replay,
    /// charged as misbehavior rather than an omission.
    Stale,
    /// The frame's round is further ahead than any honest peer can run
    /// (`round > current + round_window`): dropped before buffering so a
    /// hostile peer cannot allocate unbounded future buckets.
    FarFuture,
    /// The sender's `Done` marker for this round already arrived, which
    /// promised all of its round data was sent: a late injection, dropped
    /// (first-writer-wins — the pre-`Done` payload set stands).
    PostDone,
}

impl DataOutcome {
    /// Whether this outcome is a protocol violation no honest peer can
    /// produce (as opposed to a benign race or duplicate).
    pub fn is_misbehavior(self) -> bool {
        matches!(
            self,
            DataOutcome::Stale | DataOutcome::FarFuture | DataOutcome::PostDone
        )
    }
}

/// What became of one incoming `Done` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoneOutcome {
    /// Recorded for the current or a legitimately-future round.
    Accepted,
    /// Marker for an already-released barrier; ignored (benign race).
    Late,
    /// Round outside the synchronizer's round window on either side — the
    /// barrier analogue of [`DataOutcome::Stale`] /
    /// [`DataOutcome::FarFuture`]; charged as misbehavior.
    OutOfWindow,
    /// A marker for this round already arrived from the same peer with the
    /// *opposite* `decided` flag: a barrier equivocation. The first marker
    /// stands; charged as misbehavior.
    Conflict,
}

impl DoneOutcome {
    /// Whether this outcome is a protocol violation no honest peer can
    /// produce.
    pub fn is_misbehavior(self) -> bool {
        matches!(self, DoneOutcome::OutOfWindow | DoneOutcome::Conflict)
    }
}

/// Per-round collection state: everything received *for* one round.
#[derive(Debug)]
struct RoundBucket<M> {
    /// Dedup set over `(sender, payload)`, the model's duplicate rule.
    seen: HashSet<(NodeId, MsgRef<M>)>,
    /// Accepted messages in arrival order (re-sorted by sender at advance).
    msgs: Vec<(NodeId, MsgRef<M>)>,
    /// Peers whose `Done` marker arrived, with their decided flag.
    done: BTreeMap<NodeId, bool>,
}

impl<M> RoundBucket<M> {
    fn new() -> Self {
        RoundBucket {
            seen: HashSet::new(),
            msgs: Vec::new(),
            done: BTreeMap::new(),
        }
    }
}

/// The send/deliver barrier for one node of a networked cluster.
///
/// Tracks, per round, which peers have completed (`Done` received), which
/// payloads arrived (with duplicate suppression), and which peers the node
/// still expects at the barrier. See the [module docs](self) for the
/// protocol.
///
/// # Examples
///
/// ```
/// use uba_net::{DataOutcome, RoundSynchronizer};
/// use uba_sim::{MsgRef, NodeId};
///
/// let me = NodeId::new(1);
/// let peer = NodeId::new(2);
/// let mut sync = RoundSynchronizer::<u64>::new(me, [peer]);
///
/// // Peer sends its round-1 traffic, then its barrier marker.
/// assert_eq!(sync.accept_data(peer, 1, MsgRef::new(7)), DataOutcome::Delivered);
/// assert_eq!(sync.accept_data(peer, 1, MsgRef::new(7)), DataOutcome::Duplicate);
/// sync.accept_done(peer, 1, false);
///
/// assert!(sync.barrier_complete());
/// let inbox = sync.advance();
/// assert_eq!(inbox.len(), 1);
/// assert_eq!(sync.current_round(), 2);
/// ```
#[derive(Debug)]
pub struct RoundSynchronizer<M> {
    me: NodeId,
    round: u64,
    expected: BTreeSet<NodeId>,
    /// Buckets for the current and any future rounds peers ran ahead into.
    pending: BTreeMap<u64, RoundBucket<M>>,
    /// Consecutive rounds each expected peer has been silent at the barrier.
    silent: BTreeMap<NodeId, u64>,
    /// Accepted round distance from `round` in either direction; frames
    /// beyond it are misbehavior (see the module docs).
    round_window: u64,
}

impl<M: Payload> RoundSynchronizer<M> {
    /// Creates a synchronizer for node `me` expecting `peers` at every
    /// barrier, positioned at round 1 (the first round processes an empty
    /// inbox, exactly like the engine).
    pub fn new(me: NodeId, peers: impl IntoIterator<Item = NodeId>) -> Self {
        let expected: BTreeSet<NodeId> = peers.into_iter().filter(|&p| p != me).collect();
        let silent = expected.iter().map(|&p| (p, 0)).collect();
        RoundSynchronizer {
            me,
            round: 1,
            expected,
            pending: BTreeMap::new(),
            silent,
            round_window: DEFAULT_ROUND_WINDOW,
        }
    }

    /// Sets the accepted round window (builder-style). [`NetNode`] passes
    /// its `history_rounds` here so the window matches the deepest backfill
    /// any honest peer can serve.
    ///
    /// [`NetNode`]: crate::NetNode
    pub fn with_round_window(mut self, rounds: u64) -> Self {
        self.round_window = rounds.max(1);
        self
    }

    /// Creates a synchronizer positioned at `first_round` instead of round
    /// 1: the crash-recovery entry point. A node that replayed its journal
    /// up to round `first_round - 1` resumes collecting at `first_round`;
    /// the rounds it missed while down arrive via `Backfill` frames, which
    /// feed [`accept_data`](Self::accept_data) /
    /// [`accept_done`](Self::accept_done) exactly like live traffic.
    pub fn resume_at(
        me: NodeId,
        peers: impl IntoIterator<Item = NodeId>,
        first_round: u64,
    ) -> Self {
        let mut sync = Self::new(me, peers);
        sync.round = first_round.max(1);
        sync
    }

    /// Starts expecting `peer` at barriers again (it completed a rejoin
    /// handshake after previously being declared gone), with a fresh
    /// silence counter. A no-op if the peer was never dropped.
    pub fn peer_rejoined(&mut self, peer: NodeId) {
        if peer == self.me {
            return;
        }
        self.expected.insert(peer);
        self.silent.insert(peer, 0);
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The round currently being collected (1-based).
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// The peers currently expected at the barrier, in ascending id order.
    pub fn expected(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.expected.iter().copied()
    }

    /// Records a payload this node sent to itself (the engine's broadcast
    /// self-delivery: a broadcast reaches every present node including the
    /// sender). Subject to the same duplicate rule as remote traffic.
    pub fn self_deliver(&mut self, msg: MsgRef<M>) -> DataOutcome {
        let round = self.round;
        self.insert(self.me, round, msg)
    }

    /// Records one incoming `Data { round }` frame from `from`.
    ///
    /// Frames for future rounds inside the round window are buffered (the
    /// peer ran ahead); frames for already-advanced rounds return
    /// [`DataOutcome::Late`]. Frames outside the window, or arriving after
    /// the sender's own `Done` for that round, are misbehavior (see the
    /// [module docs](self)).
    pub fn accept_data(&mut self, from: NodeId, round: u64, msg: MsgRef<M>) -> DataOutcome {
        if round > self.round.saturating_add(self.round_window) {
            return DataOutcome::FarFuture;
        }
        if round < self.round {
            return if round.saturating_add(self.round_window) < self.round {
                DataOutcome::Stale
            } else {
                DataOutcome::Late
            };
        }
        if self
            .pending
            .get(&round)
            .is_some_and(|b| b.done.contains_key(&from))
        {
            return DataOutcome::PostDone;
        }
        self.insert(from, round, msg)
    }

    fn insert(&mut self, from: NodeId, round: u64, msg: MsgRef<M>) -> DataOutcome {
        let bucket = self.pending.entry(round).or_insert_with(RoundBucket::new);
        if bucket.seen.insert((from, MsgRef::clone(&msg))) {
            bucket.msgs.push((from, msg));
            DataOutcome::Delivered
        } else {
            DataOutcome::Duplicate
        }
    }

    /// Records one incoming `Done { round, decided }` frame. Late markers
    /// are ignored (the barrier they belonged to already released);
    /// out-of-window rounds and conflicting `decided` flags are misbehavior
    /// and leave the recorded state untouched (first writer wins).
    pub fn accept_done(&mut self, from: NodeId, round: u64, decided: bool) -> DoneOutcome {
        if round > self.round.saturating_add(self.round_window) {
            return DoneOutcome::OutOfWindow;
        }
        if round < self.round {
            return if round.saturating_add(self.round_window) < self.round {
                DoneOutcome::OutOfWindow
            } else {
                DoneOutcome::Late
            };
        }
        let done = &mut self
            .pending
            .entry(round)
            .or_insert_with(RoundBucket::new)
            .done;
        match done.get(&from) {
            Some(&prior) if prior != decided => DoneOutcome::Conflict,
            _ => {
                done.insert(from, decided);
                DoneOutcome::Accepted
            }
        }
    }

    /// Whether every expected peer has delivered its `Done` marker for the
    /// current round (the barrier may release).
    pub fn barrier_complete(&self) -> bool {
        match self.pending.get(&self.round) {
            Some(bucket) => self.expected.iter().all(|p| bucket.done.contains_key(p)),
            None => self.expected.is_empty(),
        }
    }

    /// The expected peers whose `Done` marker for the current round has not
    /// arrived, in ascending id order.
    pub fn missing(&self) -> Vec<NodeId> {
        let done = self.pending.get(&self.round).map(|b| &b.done);
        self.expected
            .iter()
            .copied()
            .filter(|p| done.is_none_or(|d| !d.contains_key(p)))
            .collect()
    }

    /// Charges the current round's missing peers with an omission (the
    /// caller's barrier timeout fired). Each missed barrier increments the
    /// peer's consecutive-silence counter; a peer that shows up again resets
    /// it at the next [`advance`](Self::advance). Returns the peers charged.
    pub fn timed_out(&mut self) -> Vec<NodeId> {
        let missing = self.missing();
        for &peer in &missing {
            *self.silent.entry(peer).or_insert(0) += 1;
        }
        missing
    }

    /// How many consecutive barriers `peer` has missed.
    pub fn silent_rounds(&self, peer: NodeId) -> u64 {
        self.silent.get(&peer).copied().unwrap_or(0)
    }

    /// Stops expecting `peer` at future barriers (its connection closed for
    /// good, or it exceeded the configured silence budget). Pending data
    /// already accepted from it still delivers.
    pub fn peer_gone(&mut self, peer: NodeId) {
        self.expected.remove(&peer);
        self.silent.remove(&peer);
    }

    /// Whether this node may shut down: its own process has decided *and*
    /// every expected peer reported `decided` at the current barrier.
    ///
    /// All members evaluate this over the same `Done` flags at the same
    /// barrier, so (absent timeouts) they reach the verdict in unison — the
    /// distributed analogue of the engine noticing that every process
    /// terminated.
    pub fn all_decided(&self, self_decided: bool) -> bool {
        if !self_decided {
            return false;
        }
        match self.pending.get(&self.round) {
            Some(bucket) => self
                .expected
                .iter()
                .all(|p| bucket.done.get(p).copied().unwrap_or(false)),
            None => self.expected.is_empty(),
        }
    }

    /// Releases the barrier: consumes the current round's bucket and returns
    /// the inbox for the next round, ordered by sender id then send order
    /// (the engine's delivery order). Peers that made this barrier have
    /// their silence counter reset.
    pub fn advance(&mut self) -> Vec<(NodeId, MsgRef<M>)> {
        let bucket = self.pending.remove(&self.round);
        if let Some(bucket) = &bucket {
            for (&peer, count) in self.silent.iter_mut() {
                if bucket.done.contains_key(&peer) {
                    *count = 0;
                }
            }
        }
        self.round += 1;
        let mut inbox = bucket.map(|b| b.msgs).unwrap_or_default();
        // Stable sort: within one sender, arrival order (= TCP send order)
        // is preserved, matching the engine's per-sender outbox order.
        inbox.sort_by_key(|&(from, _)| from);
        inbox
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(v: u64) -> MsgRef<u64> {
        MsgRef::new(v)
    }

    #[test]
    fn inbox_is_ordered_by_sender_then_send_order() {
        let mut sync = RoundSynchronizer::new(NodeId::new(1), [NodeId::new(2), NodeId::new(3)]);
        // Arrival order interleaves senders; N3 even arrives before N2.
        sync.accept_data(NodeId::new(3), 1, msg(30));
        sync.accept_data(NodeId::new(2), 1, msg(20));
        sync.accept_data(NodeId::new(3), 1, msg(31));
        sync.self_deliver(msg(10));
        sync.accept_done(NodeId::new(2), 1, false);
        sync.accept_done(NodeId::new(3), 1, false);
        assert!(sync.barrier_complete());
        let inbox: Vec<(u64, u64)> = sync
            .advance()
            .into_iter()
            .map(|(from, m)| (from.raw(), *m.get()))
            .collect();
        assert_eq!(inbox, vec![(1, 10), (2, 20), (3, 30), (3, 31)]);
    }

    #[test]
    fn duplicates_within_a_round_are_dropped_across_rounds_are_not() {
        let peer = NodeId::new(2);
        let mut sync = RoundSynchronizer::new(NodeId::new(1), [peer]);
        assert_eq!(sync.accept_data(peer, 1, msg(7)), DataOutcome::Delivered);
        assert_eq!(sync.accept_data(peer, 1, msg(7)), DataOutcome::Duplicate);
        sync.accept_done(peer, 1, false);
        assert_eq!(sync.advance().len(), 1);
        // Same payload in the next round is a fresh message.
        assert_eq!(sync.accept_data(peer, 2, msg(7)), DataOutcome::Delivered);
    }

    #[test]
    fn late_frames_are_rejected_and_future_frames_buffered() {
        let peer = NodeId::new(2);
        let mut sync = RoundSynchronizer::new(NodeId::new(1), [peer]);
        // Peer runs ahead: round-2 traffic arrives while we collect round 1.
        assert_eq!(sync.accept_data(peer, 2, msg(9)), DataOutcome::Delivered);
        sync.accept_done(peer, 2, false);
        assert!(!sync.barrier_complete(), "round-1 Done still missing");
        sync.accept_done(peer, 1, false);
        assert!(sync.barrier_complete());
        assert!(sync.advance().is_empty(), "no round-1 data was sent");
        // The buffered round-2 frame is already in place.
        assert!(sync.barrier_complete());
        assert_eq!(sync.advance().len(), 1);
        // Round 1 is long gone: its frames are late.
        assert_eq!(sync.accept_data(peer, 1, msg(1)), DataOutcome::Late);
        assert_eq!(sync.accept_done(peer, 1, false), DoneOutcome::Late);
    }

    #[test]
    fn frames_outside_the_round_window_are_misbehavior() {
        let peer = NodeId::new(2);
        let mut sync = RoundSynchronizer::new(NodeId::new(1), [peer]).with_round_window(4);
        // Ahead by exactly the window: still buffered.
        assert_eq!(sync.accept_data(peer, 5, msg(5)), DataOutcome::Delivered);
        assert_eq!(sync.accept_done(peer, 5, false), DoneOutcome::Accepted);
        // One past the window: refused before any bucket is allocated.
        assert_eq!(sync.accept_data(peer, 6, msg(6)), DataOutcome::FarFuture);
        assert_eq!(sync.accept_done(peer, 6, false), DoneOutcome::OutOfWindow);
        assert!(sync.accept_data(peer, 6, msg(6)).is_misbehavior());
        // Advance far enough that round 1 leaves the window behind us.
        for r in 1..=6 {
            sync.accept_done(peer, r, false);
            sync.advance();
        }
        assert_eq!(sync.current_round(), 7);
        assert_eq!(sync.accept_data(peer, 2, msg(2)), DataOutcome::Stale);
        assert_eq!(sync.accept_done(peer, 2, false), DoneOutcome::OutOfWindow);
        // Just inside the window on the past side stays a benign Late.
        assert_eq!(sync.accept_data(peer, 3, msg(3)), DataOutcome::Late);
        assert!(!sync.accept_data(peer, 3, msg(3)).is_misbehavior());
    }

    #[test]
    fn data_after_the_senders_done_is_an_injection() {
        let peer = NodeId::new(2);
        let mut sync = RoundSynchronizer::new(NodeId::new(1), [peer]);
        assert_eq!(sync.accept_data(peer, 1, msg(1)), DataOutcome::Delivered);
        assert_eq!(sync.accept_done(peer, 1, false), DoneOutcome::Accepted);
        // TCP order means an honest peer's Done proves its data all arrived;
        // more round-1 data from the same peer is a late injection.
        assert_eq!(sync.accept_data(peer, 1, msg(2)), DataOutcome::PostDone);
        // First-writer-wins: only the pre-Done payload delivers.
        assert_eq!(sync.advance().len(), 1);
        // Other peers' markers do not gate this sender.
        let mut sync2 = RoundSynchronizer::new(NodeId::new(1), [peer, NodeId::new(3)]);
        sync2.accept_done(NodeId::new(3), 1, false);
        assert_eq!(sync2.accept_data(peer, 1, msg(1)), DataOutcome::Delivered);
    }

    #[test]
    fn conflicting_done_flags_are_equivocation_and_first_writer_wins() {
        let peer = NodeId::new(2);
        let mut sync = RoundSynchronizer::<u64>::new(NodeId::new(1), [peer]);
        assert_eq!(sync.accept_done(peer, 1, false), DoneOutcome::Accepted);
        // Re-sending the same flag is an idempotent no-op...
        assert_eq!(sync.accept_done(peer, 1, false), DoneOutcome::Accepted);
        // ...but flipping it is a barrier equivocation; the first stands.
        assert_eq!(sync.accept_done(peer, 1, true), DoneOutcome::Conflict);
        assert!(sync.accept_done(peer, 1, true).is_misbehavior());
        assert!(!sync.all_decided(true), "first (undecided) marker stands");
    }

    #[test]
    fn timeout_charges_missing_peers_and_presence_resets_the_counter() {
        let (a, b) = (NodeId::new(2), NodeId::new(3));
        let mut sync = RoundSynchronizer::<u64>::new(NodeId::new(1), [a, b]);
        sync.accept_done(a, 1, false);
        assert_eq!(sync.missing(), vec![b]);
        assert_eq!(sync.timed_out(), vec![b]);
        assert_eq!(sync.silent_rounds(b), 1);
        sync.advance();
        // b shows up for round 2: its counter resets at the next advance.
        sync.accept_done(a, 2, false);
        sync.accept_done(b, 2, false);
        assert!(sync.barrier_complete());
        sync.advance();
        assert_eq!(sync.silent_rounds(b), 0);
    }

    #[test]
    fn peer_gone_shrinks_the_barrier() {
        let (a, b) = (NodeId::new(2), NodeId::new(3));
        let mut sync = RoundSynchronizer::<u64>::new(NodeId::new(1), [a, b]);
        sync.accept_done(a, 1, true);
        assert!(!sync.barrier_complete());
        sync.peer_gone(b);
        assert!(sync.barrier_complete());
        assert!(sync.all_decided(true));
        assert!(!sync.all_decided(false));
    }

    #[test]
    fn resume_at_collects_from_the_given_round() {
        let peer = NodeId::new(2);
        let mut sync = RoundSynchronizer::resume_at(NodeId::new(1), [peer], 5);
        assert_eq!(sync.current_round(), 5);
        // Everything before the resume point is already journaled: frames
        // for those rounds (e.g. re-sent by a peer) are late, not buffered.
        assert_eq!(sync.accept_data(peer, 4, msg(4)), DataOutcome::Late);
        assert_eq!(sync.accept_data(peer, 5, msg(5)), DataOutcome::Delivered);
        sync.accept_done(peer, 5, false);
        assert!(sync.barrier_complete());
        assert_eq!(sync.advance().len(), 1);
        assert_eq!(sync.current_round(), 6);
    }

    #[test]
    fn rejoined_peer_is_expected_again_with_fresh_silence() {
        let peer = NodeId::new(2);
        let mut sync = RoundSynchronizer::<u64>::new(NodeId::new(1), [peer]);
        sync.timed_out();
        sync.peer_gone(peer);
        assert!(sync.barrier_complete(), "gone peers do not block barriers");
        sync.peer_rejoined(peer);
        assert!(!sync.barrier_complete(), "rejoined peer blocks again");
        assert_eq!(sync.silent_rounds(peer), 0);
        assert_eq!(sync.missing(), vec![peer]);
        // Rejoining itself must stay impossible.
        sync.peer_rejoined(NodeId::new(1));
        assert_eq!(sync.expected().collect::<Vec<_>>(), vec![peer]);
    }

    #[test]
    fn all_decided_requires_every_flag() {
        let (a, b) = (NodeId::new(2), NodeId::new(3));
        let mut sync = RoundSynchronizer::<u64>::new(NodeId::new(1), [a, b]);
        sync.accept_done(a, 1, true);
        sync.accept_done(b, 1, false);
        assert!(sync.barrier_complete());
        assert!(!sync.all_decided(true), "b has not decided yet");
        sync.advance();
        sync.accept_done(a, 2, true);
        sync.accept_done(b, 2, true);
        assert!(sync.all_decided(true));
    }
}
