//! `logd` — run a localhost `uba-net` log-service cluster.
//!
//! Every node runs `--shards` independent total-ordering instances
//! (DESIGN.md §12), accepts client submissions over the wire, and serves
//! finalized per-shard prefixes. Drive it with the `loadgen` binary from
//! another terminal. Exit code 0 means every member terminated and all
//! members finalized identical per-shard prefixes; 1 means they diverged;
//! 2 is a usage or transport error.
//!
//! ```text
//! logd [--nodes N] [--shards S] [--seed SEED] [--ingest-rounds R]
//!      [--pace-ms MS] [--timeout-ms MS] [--max-rounds R]
//!      [--metrics-addr HOST:PORT] [--linger-ms MS]
//! ```
//!
//! The service accepts submissions for `--ingest-rounds` rounds, each
//! paced to `--pace-ms` so client traffic lands between round barriers,
//! then runs the ordering out to its horizon and seals. Client listener
//! addresses are printed one per line as `client: NODE ADDR` — `loadgen`
//! takes the addresses. After sealing, the listeners keep serving reads
//! for `--linger-ms` so late readers can fetch the final prefixes.
//!
//! With `--metrics-addr HOST:PORT`, the member with the i-th smallest id
//! serves its wall-clock runtime metrics on `PORT + i` — the transport
//! families (`net_*`) plus the per-shard service families
//! (`logd_submits_total{shard=..}`, `logd_batches_total{shard=..}`,
//! `logd_batch_records_total{shard=..}`, `logd_prefix_records{shard=..}`,
//! `logd_reads_total{shard=..}`). `cluster scrape` works against them.

use std::process::ExitCode;
use std::time::Duration;

use uba_net::{
    member_port, serve_metrics, spawn_log_cluster, MetricsServer, NetConfig, RetryPolicy,
};
use uba_sim::sparse_ids;
use uba_trace::{NoopTracer, SharedRuntimeMetrics};

struct Args {
    nodes: u64,
    shards: u32,
    seed: u64,
    ingest_rounds: u64,
    pace_ms: u64,
    timeout_ms: u64,
    max_rounds: u64,
    metrics_addr: Option<String>,
    linger_ms: u64,
}

fn usage() -> String {
    "usage: logd [--nodes N] [--shards S] [--seed SEED] [--ingest-rounds R]\n\
     \x20           [--pace-ms MS] [--timeout-ms MS] [--max-rounds R]\n\
     \x20           [--metrics-addr HOST:PORT] [--linger-ms MS]"
        .to_string()
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        nodes: 3,
        shards: 4,
        seed: 42,
        ingest_rounds: 50,
        pace_ms: 50,
        timeout_ms: 5_000,
        max_rounds: 10_000,
        metrics_addr: None,
        linger_ms: 2_000,
    };
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .ok_or_else(|| format!("missing value for {flag}\n{}", usage()))
        };
        match flag.as_str() {
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("invalid --nodes: {e}"))?;
                if args.nodes < 2 {
                    return Err("--nodes must be at least 2".into());
                }
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("invalid --shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("invalid --seed: {e}"))?;
            }
            "--ingest-rounds" => {
                args.ingest_rounds = value("--ingest-rounds")?
                    .parse()
                    .map_err(|e| format!("invalid --ingest-rounds: {e}"))?;
                if args.ingest_rounds == 0 {
                    return Err("--ingest-rounds must be at least 1".into());
                }
            }
            "--pace-ms" => {
                args.pace_ms = value("--pace-ms")?
                    .parse()
                    .map_err(|e| format!("invalid --pace-ms: {e}"))?;
            }
            "--timeout-ms" => {
                args.timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("invalid --timeout-ms: {e}"))?;
            }
            "--max-rounds" => {
                args.max_rounds = value("--max-rounds")?
                    .parse()
                    .map_err(|e| format!("invalid --max-rounds: {e}"))?;
            }
            "--metrics-addr" => {
                args.metrics_addr = Some(value("--metrics-addr")?);
            }
            "--linger-ms" => {
                args.linger_ms = value("--linger-ms")?
                    .parse()
                    .map_err(|e| format!("invalid --linger-ms: {e}"))?;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<bool, String> {
    let ids = sparse_ids(args.nodes as usize, args.seed);
    let config = NetConfig {
        round_timeout: Duration::from_millis(args.timeout_ms),
        retry: RetryPolicy::default(),
        max_rounds: args.max_rounds,
        round_pace: Duration::from_millis(args.pace_ms),
        ..NetConfig::default()
    };

    // One runtime registry + exposition endpoint per member, the `cluster`
    // binary's port convention: i-th smallest id on base port + i.
    let mut registries = std::collections::BTreeMap::new();
    let mut servers: Vec<MetricsServer> = Vec::new();
    if let Some(base) = &args.metrics_addr {
        let (host, port) = base
            .rsplit_once(':')
            .ok_or_else(|| format!("invalid --metrics-addr {base:?} (expected HOST:PORT)"))?;
        let port: u16 = port
            .parse()
            .map_err(|e| format!("invalid --metrics-addr port: {e}"))?;
        if member_port(port, args.nodes - 1).is_none() {
            return Err(format!(
                "--metrics-addr port {port} + {} nodes exceeds port 65535",
                args.nodes
            ));
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        for (i, id) in sorted.into_iter().enumerate() {
            let registry = SharedRuntimeMetrics::new();
            let member = member_port(port, i as u64).expect("range validated above");
            let addr = format!("{host}:{member}");
            let server = serve_metrics(addr.as_str(), registry.clone())
                .map_err(|e| format!("binding metrics endpoint {addr}: {e}"))?;
            println!("metrics: node {id} on http://{}/metrics", server.addr());
            registries.insert(id, registry);
            servers.push(server);
        }
    }

    let mut cluster = spawn_log_cluster(
        &ids,
        args.shards,
        args.ingest_rounds,
        config,
        |_| NoopTracer,
        |id| registries.get(&id).cloned(),
    )
    .map_err(|e| format!("spawning the cluster: {e}"))?;
    println!(
        "logd: {} nodes x {} shards, ingesting for {} rounds at {}ms/round",
        args.nodes, args.shards, args.ingest_rounds, args.pace_ms
    );
    for (id, addr) in cluster.client_addrs() {
        println!("client: {id} {addr}");
    }

    let reports = cluster
        .join_ordering()
        .map_err(|e| format!("cluster run failed: {e}"))?;

    // Agreement: every member finalized the same per-shard prefixes.
    let outputs: Vec<_> = reports.values().map(|r| r.output.clone()).collect();
    let agreed = outputs.iter().all(|o| o == &outputs[0]);
    if let Some(Some(prefixes)) = outputs.first() {
        let total: usize = prefixes.iter().map(Vec::len).sum();
        for (shard, prefix) in prefixes.iter().enumerate() {
            println!("shard {shard}: {} records finalized", prefix.len());
        }
        let rounds = reports.values().map(|r| r.rounds).max().unwrap_or(0);
        println!("logd: {total} records ordered in {rounds} rounds");
    }
    println!(
        "prefixes: {}",
        if agreed {
            "MATCH (all nodes finalized identical shard prefixes)"
        } else {
            "MISMATCH (shard prefixes diverged across nodes)"
        }
    );

    // Keep serving sealed reads for late readers, then tear down.
    std::thread::sleep(Duration::from_millis(args.linger_ms));
    cluster.shutdown();
    for server in servers {
        server.shutdown();
    }
    Ok(agreed)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
