//! `loadgen` — drive a running `logd` cluster with client load and check
//! the service's exactly-once promise from the outside.
//!
//! Spawns `--clients` concurrent clients, each connected to one of the
//! `--addr` endpoints round-robin, submitting `--count` records total
//! spread over `--keys` distinct keys. Closed-loop by default (each client
//! submits as fast as its acks return); `--rate R` switches to an open
//! loop paced at R submissions/second across all clients. When the
//! service closes ingest, clients stop cleanly — the check covers *acked*
//! submissions only, which is exactly the service's promise.
//!
//! After the load, every endpoint's sealed per-shard prefixes are read
//! back and checked: all endpoints agree on every shard, and every acked
//! submission appears exactly once in exactly one shard. Exit code 0
//! means the check passed; 1 means it failed; 2 is a usage or I/O error.
//!
//! ```text
//! loadgen --addr HOST:PORT[,HOST:PORT...] [--clients C] [--keys K]
//!         [--count N] [--rate R] [--seal-timeout-ms MS]
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use uba_net::{LogClient, Record};

struct Args {
    addrs: Vec<String>,
    clients: usize,
    keys: usize,
    count: usize,
    rate: u64,
    seal_timeout_ms: u64,
}

fn usage() -> String {
    "usage: loadgen --addr HOST:PORT[,HOST:PORT...] [--clients C] [--keys K]\n\
     \x20              [--count N] [--rate R] [--seal-timeout-ms MS]\n\
     rate 0 (the default) is closed-loop: submit as fast as acks return"
        .to_string()
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        addrs: Vec::new(),
        clients: 4,
        keys: 64,
        count: 1_000,
        rate: 0,
        seal_timeout_ms: 120_000,
    };
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .ok_or_else(|| format!("missing value for {flag}\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => {
                args.addrs = value("--addr")?
                    .split(',')
                    .filter(|a| !a.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("invalid --clients: {e}"))?;
                if args.clients == 0 {
                    return Err("--clients must be at least 1".into());
                }
            }
            "--keys" => {
                args.keys = value("--keys")?
                    .parse()
                    .map_err(|e| format!("invalid --keys: {e}"))?;
                if args.keys == 0 {
                    return Err("--keys must be at least 1".into());
                }
            }
            "--count" => {
                args.count = value("--count")?
                    .parse()
                    .map_err(|e| format!("invalid --count: {e}"))?;
            }
            "--rate" => {
                args.rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("invalid --rate: {e}"))?;
            }
            "--seal-timeout-ms" => {
                args.seal_timeout_ms = value("--seal-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("invalid --seal-timeout-ms: {e}"))?;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if args.addrs.is_empty() {
        return Err(format!("--addr is required\n{}", usage()));
    }
    Ok(args)
}

/// What one client thread brings home: its acked submissions (key,
/// payload, shard) and the ack latency of each in microseconds.
struct ClientReport {
    acked: Vec<(String, Vec<u8>, u32)>,
    latencies_us: Vec<u64>,
}

/// One client's submission loop. Unique payloads per submission keep the
/// service's duplicate detection out of the measurement. Stops at its
/// quota, on ingest close, or when `stop` flips (another client saw the
/// close).
fn run_client(
    client_idx: usize,
    addr: String,
    quota: usize,
    keys: usize,
    pace: Option<Duration>,
    stop: Arc<AtomicBool>,
) -> Result<ClientReport, String> {
    let mut client = LogClient::connect(&addr)
        .map_err(|e| format!("client {client_idx}: connect {addr}: {e}"))?;
    let mut report = ClientReport {
        acked: Vec::with_capacity(quota),
        latencies_us: Vec::with_capacity(quota),
    };
    let started = Instant::now();
    for i in 0..quota {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        // Open loop: sleep off any lead over the schedule before sending.
        if let Some(pace) = pace {
            let due = pace * i as u32;
            let ahead = due.saturating_sub(started.elapsed());
            if !ahead.is_zero() {
                thread::sleep(ahead);
            }
        }
        let key = format!("key-{}", (client_idx + i * 7) % keys);
        let payload = format!("c{client_idx}-{i}").into_bytes();
        let sent = Instant::now();
        match client
            .submit(&key, &payload)
            .map_err(|e| format!("client {client_idx}: submit: {e}"))?
        {
            Some((shard, _seq)) => {
                report.latencies_us.push(sent.elapsed().as_micros() as u64);
                report.acked.push((key, payload, shard));
            }
            None => {
                // Ingest closed: the run is over for everyone.
                stop.store(true, Ordering::Relaxed);
                break;
            }
        }
    }
    Ok(report)
}

/// Reads the sealed prefixes of shards `0..` from one endpoint until the
/// endpoint runs out of shards is not knowable over the wire — the shard
/// count is, by construction, the highest shard any ack named plus one.
fn read_prefixes(addr: &str, shards: u32, timeout: Duration) -> Result<Vec<Vec<Record>>, String> {
    let mut client =
        LogClient::connect(addr).map_err(|e| format!("reader: connect {addr}: {e}"))?;
    (0..shards)
        .map(|shard| {
            client
                .read_sealed_prefix(shard, timeout)
                .map_err(|e| format!("reader: shard {shard} via {addr}: {e}"))
        })
        .collect()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank]
}

fn run(args: &Args) -> Result<bool, String> {
    let pace = (args.rate > 0).then(|| {
        // Per-client pace: the global rate spread over the client count.
        Duration::from_secs_f64(args.clients as f64 / args.rate as f64)
    });
    let stop = Arc::new(AtomicBool::new(false));
    let quota = args.count.div_ceil(args.clients);
    let started = Instant::now();
    let workers: Vec<_> = (0..args.clients)
        .map(|i| {
            let addr = args.addrs[i % args.addrs.len()].clone();
            let stop = Arc::clone(&stop);
            let keys = args.keys;
            thread::spawn(move || run_client(i, addr, quota, keys, pace, stop))
        })
        .collect();
    let mut acked = Vec::new();
    let mut latencies = Vec::new();
    for worker in workers {
        let report = worker.join().map_err(|_| "client thread panicked")??;
        acked.extend(report.acked);
        latencies.extend(report.latencies_us);
    }
    let elapsed = started.elapsed();

    latencies.sort_unstable();
    let mean = latencies
        .iter()
        .sum::<u64>()
        .checked_div(latencies.len() as u64)
        .unwrap_or(0);
    println!(
        "load: {} acked in {:.2}s ({:.0} submissions/s), ack latency mean {}us p50 {}us p99 {}us",
        acked.len(),
        elapsed.as_secs_f64(),
        acked.len() as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
        mean,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
    );
    if acked.is_empty() {
        println!("check: SKIPPED (no submission was acked — nothing promised)");
        return Ok(true);
    }

    // The acks name the shards; read every endpoint's sealed prefixes.
    let shards = acked.iter().map(|(_, _, s)| *s).max().unwrap_or(0) + 1;
    let timeout = Duration::from_millis(args.seal_timeout_ms);
    let mut all_prefixes = Vec::new();
    for addr in &args.addrs {
        all_prefixes.push((addr.clone(), read_prefixes(addr, shards, timeout)?));
    }
    let (first_addr, reference) = &all_prefixes[0];
    let mut ok = true;
    for (addr, prefixes) in &all_prefixes[1..] {
        if prefixes != reference {
            eprintln!("check: {addr} and {first_addr} disagree on the finalized prefixes");
            ok = false;
        }
    }

    // Exactly once: every acked (key, payload) appears once, in the shard
    // the ack named; nothing unacked appears at all (this loadgen is the
    // only writer).
    let mut counts: BTreeMap<(&str, &[u8]), (u32, usize)> = BTreeMap::new();
    for (shard, prefix) in reference.iter().enumerate() {
        for record in prefix {
            counts
                .entry((record.key.as_str(), record.payload.as_slice()))
                .and_modify(|(_, n)| *n += 1)
                .or_insert((shard as u32, 1));
        }
    }
    for (key, payload, shard) in &acked {
        match counts.remove(&(key.as_str(), payload.as_slice())) {
            Some((s, 1)) if s == *shard => {}
            Some((s, n)) => {
                eprintln!(
                    "check: acked {key:?} expected once in shard {shard}, found {n} in shard {s}"
                );
                ok = false;
            }
            None => {
                eprintln!("check: acked {key:?} missing from the finalized log");
                ok = false;
            }
        }
    }
    if !counts.is_empty() {
        eprintln!(
            "check: {} unacked records in the finalized log",
            counts.len()
        );
        ok = false;
    }
    for (shard, prefix) in reference.iter().enumerate() {
        println!("shard {shard}: {} records", prefix.len());
    }
    println!(
        "check: {}",
        if ok {
            "PASS (every acked submission ordered exactly once, all endpoints agree)"
        } else {
            "FAIL"
        }
    );
    Ok(ok)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
