//! `cluster` — run an n-node localhost TCP cluster and check it against
//! the simulator.
//!
//! Spawns `--nodes` members of the chosen algorithm over real sockets,
//! runs the *same* seeded configuration on the in-process `SyncEngine`,
//! and asserts the two executions decide identically. Exit code 0 means
//! the decisions matched; 1 means they diverged (a transport bug); 2 is a
//! usage error.
//!
//! ```text
//! cluster [--nodes N] [--algo consensus|reliable|approx] [--seed S]
//!         [--timeout-ms MS] [--max-rounds R] [--trace-out PREFIX]
//!         [--kill ROUND] [--restart-at ROUND] [--victim IDX]
//!         [--journal-dir DIR] [--tear-journal]
//!         [--metrics-addr HOST:PORT] [--history-rounds N]
//! cluster scrape --addr HOST:PORT --nodes N [--interval-ms MS] [--count K]
//! ```
//!
//! With `--metrics-addr HOST:PORT`, every member serves its wall-clock
//! runtime metrics (phase timing histograms, per-peer byte/frame counters,
//! reconnect/backfill/omission counters) in the Prometheus text format:
//! the member with the i-th smallest id listens on `PORT + i`. The
//! `scrape` helper polls those endpoints from another terminal and renders
//! a live per-node table (`--count 0` polls until interrupted).
//!
//! With `--trace-out PREFIX`, each member's trace is written to
//! `PREFIX-N<id>.jsonl` — the same JSONL vocabulary the simulator's soak
//! runner dumps, plus the `net_*` transport events.
//!
//! With `--kill ROUND`, the crash-recovery drill (experiment T12): every
//! member keeps a durable round journal under `--journal-dir`, the victim
//! (by default the first member; `--victim` picks another index) is killed
//! at the start of that round, rebuilt from its journal, and rejoins over
//! the backfill protocol. `--restart-at R2` (default: the kill round)
//! holds the victim down for `(R2 - ROUND) * timeout` before it recovers;
//! an immediate restart is the byte-identical case. `--tear-journal`
//! truncates the journal mid-line first, exercising torn-tail recovery.
//! The decisions are still compared against the *uninterrupted* simulator
//! run: MATCH means the crash was invisible to the protocol's outcome.
//!
//! With `--wan-profile geo|lossy|partition` (or a custom `--link-plan
//! KEY=VAL,...`), every member is fronted by the deterministic WAN fault
//! proxy (DESIGN.md §11): seeded per-link latency/jitter/loss/bandwidth
//! shaping and round-keyed partitions, applied between the sockets and
//! the framed codec. Under an impairing plan the sim-twin comparison
//! becomes informational and the exit code instead asserts the protocol's
//! own guarantee — every member decided, and the decisions agree. A
//! zero-impairment `--link-plan` keeps the strict byte-identity check and
//! proves the proxy invisible. With `--trace-out`, the proxy's
//! `net_link_*` events land in `PREFIX-links.jsonl`; with
//! `--metrics-addr`, its per-link counters are served on base port +
//! nodes.
//!
//! With `--byzantine F`, `F` of the `--nodes` members are replaced by
//! scripted hostile [`ByzantineNode`](uba_net::ByzantineNode)s (the
//! population is split exactly like the experiment harness, so `--nodes 7
//! --byzantine 2` is the classic `n = 3f + 1` grid). `--attack
//! NAME[,NAME...]` picks the scripts (default `equivocate`); the cluster
//! runs once per attack and prints a verdict table attributing **malice**
//! (misbehavior strikes, evictions) separately from **omission** (barrier
//! timeouts). The sim twin does not model wire attacks, so the exit code
//! asserts the honest members' own guarantee: every honest member decided,
//! on one value — the `HONEST-AGREEMENT` verdict. With `--trace-out`, each
//! honest member's trace lands in `PREFIX-<attack>-<id>.jsonl` and the
//! merged misbehavior counters in `PREFIX-<attack>-misbehavior.prom`
//! (Prometheus text format), the postmortem artifacts the `byz-smoke` CI
//! job uploads. Requires `n > 3f`; incompatible with `--kill` and the WAN
//! proxy flags.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use uba_core::approx::ApproxAgreement;
use uba_core::consensus::EarlyConsensus;
use uba_core::harness::Setup;
use uba_core::reliable::ReliableBroadcast;
use uba_net::{
    decisions, family_sum, member_port, run_local_cluster_with_byzantine,
    run_local_cluster_with_metrics, run_local_cluster_with_proxy,
    run_local_cluster_with_restart_and_metrics, run_local_cluster_with_restart_through_proxy,
    scrape_metrics, series_value, serve_metrics, AttackKind, KillSpec, LinkPlan, LinkSpec,
    MetricsServer, NetConfig, RetryPolicy, WanProfile, Wire,
};
use uba_sim::{sparse_ids, NodeId, Process, SyncEngine};
use uba_trace::{JsonlTracer, SharedRuntimeMetrics, Tracer};

/// Parsed command line.
struct Args {
    nodes: u64,
    algo: Algo,
    seed: u64,
    timeout_ms: u64,
    max_rounds: u64,
    trace_out: Option<String>,
    kill: Option<u64>,
    restart_at: Option<u64>,
    victim: usize,
    journal_dir: Option<PathBuf>,
    tear_journal: bool,
    metrics_addr: Option<String>,
    history_rounds: Option<usize>,
    link_plan: Option<String>,
    wan_profile: Option<WanProfile>,
    byzantine: u64,
    attacks: Vec<AttackKind>,
}

#[derive(Clone, Copy, PartialEq)]
enum Algo {
    Consensus,
    Reliable,
    Approx,
}

fn usage() -> String {
    "usage: cluster [--nodes N] [--algo consensus|reliable|approx] [--seed S]\n\
     \x20              [--timeout-ms MS] [--max-rounds R] [--trace-out PREFIX]\n\
     \x20              [--kill ROUND] [--restart-at ROUND] [--victim IDX]\n\
     \x20              [--journal-dir DIR] [--tear-journal]\n\
     \x20              [--metrics-addr HOST:PORT] [--history-rounds N]\n\
     \x20              [--wan-profile geo|lossy|partition | --link-plan KEY=VAL,...]\n\
     \x20              [--byzantine F [--attack NAME[,NAME...]]]\n\
     \x20      cluster scrape --addr HOST:PORT --nodes N [--interval-ms MS] [--count K]\n\
     link-plan keys: seed=S latency-ms=L jitter-ms=J loss-ppm=P\n\
     \x20               bandwidth=BYTES_PER_SEC partition=FROM..TO\n\
     attacks: equivocate replay corrupt oversize flood stall backfill-spam"
        .to_string()
}

/// Parses `--link-plan KEY=VAL,...` (commas or whitespace between
/// entries) into a [`LinkPlan`] over `ids`: a uniform default spec plus
/// an optional round-window partition severing the first half of the
/// sorted ids from the second.
fn parse_link_plan(spec: &str, default_seed: u64, ids: &[NodeId]) -> Result<LinkPlan, String> {
    let mut seed = default_seed;
    let mut link = LinkSpec::zero();
    let mut partition = None;
    for pair in spec
        .split(|c: char| c == ',' || c.is_whitespace())
        .filter(|p| !p.is_empty())
    {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("invalid --link-plan entry {pair:?} (expected KEY=VAL)"))?;
        let parse_u64 = |what: &str| {
            value
                .parse::<u64>()
                .map_err(|e| format!("invalid --link-plan {what}: {e}"))
        };
        match key {
            "seed" => seed = parse_u64("seed")?,
            "latency-ms" => {
                link = link.with_latency(Duration::from_millis(parse_u64("latency-ms")?))
            }
            "jitter-ms" => link = link.with_jitter(Duration::from_millis(parse_u64("jitter-ms")?)),
            "loss-ppm" => {
                let ppm = parse_u64("loss-ppm")?;
                if ppm >= 1_000_000 {
                    return Err("--link-plan loss-ppm must be below 1000000".into());
                }
                link = link.with_loss_ppm(ppm as u32);
            }
            "bandwidth" => {
                let bps = parse_u64("bandwidth")?;
                if bps == 0 {
                    return Err("--link-plan bandwidth must be positive".into());
                }
                link = link.with_bandwidth(bps);
            }
            "partition" => {
                let (from, to) = value.split_once("..").ok_or_else(|| {
                    "invalid --link-plan partition (expected FROM..TO)".to_string()
                })?;
                let from: u64 = from
                    .parse()
                    .map_err(|e| format!("invalid --link-plan partition start: {e}"))?;
                let to: u64 = to
                    .parse()
                    .map_err(|e| format!("invalid --link-plan partition end: {e}"))?;
                if from >= to {
                    return Err("--link-plan partition window is empty".into());
                }
                partition = Some(from..to);
            }
            other => return Err(format!("unknown --link-plan key {other:?}\n{}", usage())),
        }
    }
    let mut sorted: Vec<NodeId> = ids.to_vec();
    sorted.sort_unstable();
    let mut plan = LinkPlan::new(seed).with_default(link);
    if let Some(rounds) = partition {
        let side: Vec<NodeId> = sorted[..sorted.len() / 2].to_vec();
        plan = plan.with_partition(rounds, side);
    }
    Ok(plan)
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        nodes: 4,
        algo: Algo::Consensus,
        seed: 42,
        timeout_ms: 2_000,
        max_rounds: 200,
        trace_out: None,
        kill: None,
        restart_at: None,
        victim: 0,
        journal_dir: None,
        tear_journal: false,
        metrics_addr: None,
        history_rounds: None,
        link_plan: None,
        wan_profile: None,
        byzantine: 0,
        attacks: Vec::new(),
    };
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .ok_or_else(|| format!("missing value for {flag}\n{}", usage()))
        };
        match flag.as_str() {
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("invalid --nodes: {e}"))?;
                if args.nodes < 2 {
                    return Err("--nodes must be at least 2".to_string());
                }
            }
            "--algo" => {
                args.algo = match value("--algo")?.as_str() {
                    "consensus" => Algo::Consensus,
                    "reliable" => Algo::Reliable,
                    "approx" => Algo::Approx,
                    other => {
                        return Err(format!(
                            "invalid --algo {other:?} (expected consensus, reliable or approx)"
                        ))
                    }
                };
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("invalid --seed: {e}"))?;
            }
            "--timeout-ms" => {
                args.timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("invalid --timeout-ms: {e}"))?;
            }
            "--max-rounds" => {
                args.max_rounds = value("--max-rounds")?
                    .parse()
                    .map_err(|e| format!("invalid --max-rounds: {e}"))?;
            }
            "--trace-out" => {
                args.trace_out = Some(value("--trace-out")?);
            }
            "--kill" => {
                let round: u64 = value("--kill")?
                    .parse()
                    .map_err(|e| format!("invalid --kill: {e}"))?;
                if round < 2 {
                    return Err("--kill must be at least 2 (round 1 has no journal yet)".into());
                }
                args.kill = Some(round);
            }
            "--restart-at" => {
                args.restart_at = Some(
                    value("--restart-at")?
                        .parse()
                        .map_err(|e| format!("invalid --restart-at: {e}"))?,
                );
            }
            "--victim" => {
                args.victim = value("--victim")?
                    .parse()
                    .map_err(|e| format!("invalid --victim: {e}"))?;
            }
            "--journal-dir" => {
                args.journal_dir = Some(PathBuf::from(value("--journal-dir")?));
            }
            "--tear-journal" => {
                args.tear_journal = true;
            }
            "--metrics-addr" => {
                args.metrics_addr = Some(value("--metrics-addr")?);
            }
            "--history-rounds" => {
                let depth: usize = value("--history-rounds")?
                    .parse()
                    .map_err(|e| format!("invalid --history-rounds: {e}"))?;
                if depth == 0 {
                    return Err("--history-rounds must be at least 1".into());
                }
                args.history_rounds = Some(depth);
            }
            "--link-plan" => {
                args.link_plan = Some(value("--link-plan")?);
            }
            "--wan-profile" => {
                let name = value("--wan-profile")?;
                args.wan_profile = Some(WanProfile::parse(&name).ok_or_else(|| {
                    format!("invalid --wan-profile {name:?} (expected geo, lossy or partition)")
                })?);
            }
            "--byzantine" => {
                args.byzantine = value("--byzantine")?
                    .parse()
                    .map_err(|e| format!("invalid --byzantine: {e}"))?;
                if args.byzantine == 0 {
                    return Err("--byzantine must be at least 1".into());
                }
            }
            "--attack" => {
                for name in value("--attack")?.split(',').filter(|n| !n.is_empty()) {
                    args.attacks.push(AttackKind::parse(name).ok_or_else(|| {
                        format!(
                            "invalid --attack {name:?} (expected one of {})",
                            AttackKind::all_names().join(", ")
                        )
                    })?);
                }
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if args.kill.is_none() && (args.restart_at.is_some() || args.tear_journal) {
        return Err("--restart-at/--tear-journal require --kill".into());
    }
    if let (Some(kill), Some(restart)) = (args.kill, args.restart_at) {
        if restart < kill {
            return Err("--restart-at must not precede --kill".into());
        }
    }
    if args.victim as u64 >= args.nodes {
        return Err("--victim index out of range".into());
    }
    if args.link_plan.is_some() && args.wan_profile.is_some() {
        return Err("--link-plan and --wan-profile are mutually exclusive".into());
    }
    if !args.attacks.is_empty() && args.byzantine == 0 {
        return Err("--attack requires --byzantine".into());
    }
    if args.byzantine > 0 {
        if args.kill.is_some() || args.link_plan.is_some() || args.wan_profile.is_some() {
            return Err("--byzantine is incompatible with --kill and the WAN proxy flags".into());
        }
        if args.nodes <= 3 * args.byzantine {
            return Err(format!(
                "--byzantine {} needs --nodes > {} (the n > 3f resilience bound)",
                args.byzantine,
                3 * args.byzantine
            ));
        }
        if args.attacks.is_empty() {
            args.attacks
                .push(AttackKind::parse("equivocate").expect("known attack"));
        }
    }
    Ok(args)
}

/// Parsed `cluster scrape` command line.
struct ScrapeArgs {
    addr: String,
    nodes: u16,
    interval_ms: u64,
    count: u64,
}

fn parse_scrape_args(mut argv: impl Iterator<Item = String>) -> Result<ScrapeArgs, String> {
    let mut args = ScrapeArgs {
        addr: String::new(),
        nodes: 0,
        interval_ms: 1_000,
        count: 1,
    };
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .ok_or_else(|| format!("missing value for {flag}\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("invalid --nodes: {e}"))?;
            }
            "--interval-ms" => {
                args.interval_ms = value("--interval-ms")?
                    .parse()
                    .map_err(|e| format!("invalid --interval-ms: {e}"))?;
            }
            "--count" => {
                args.count = value("--count")?
                    .parse()
                    .map_err(|e| format!("invalid --count: {e}"))?;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if args.addr.is_empty() || args.nodes == 0 {
        return Err(format!("scrape requires --addr and --nodes\n{}", usage()));
    }
    Ok(args)
}

/// One row of the scrape table, folded from a node's exposition body.
struct ScrapeRow {
    endpoint: String,
    rounds: u64,
    mean_us: u64,
    frames_tx: u64,
    bytes_tx: u64,
    frames_rx: u64,
    reconnects: u64,
    omissions: u64,
    backfill: u64,
}

impl ScrapeRow {
    fn from_body(endpoint: String, body: &str) -> Self {
        let sum = series_value(body, "net_round_micros_sum").unwrap_or(0);
        let count = series_value(body, "net_round_micros_count").unwrap_or(0);
        ScrapeRow {
            endpoint,
            rounds: series_value(body, "net_rounds_total").unwrap_or(0),
            mean_us: sum.checked_div(count).unwrap_or(0),
            frames_tx: family_sum(body, "net_frames_sent_total"),
            bytes_tx: family_sum(body, "net_bytes_sent_total"),
            frames_rx: family_sum(body, "net_frames_received_total"),
            reconnects: family_sum(body, "net_reconnects_total"),
            omissions: family_sum(body, "net_omission_timeouts_total"),
            backfill: family_sum(body, "net_backfill_frames_served_total"),
        }
    }
}

/// Polls every node's exposition endpoint and renders a per-node table,
/// `count` times (0 = forever), `interval_ms` apart. Unreachable endpoints
/// render as `down` rather than aborting the sweep: during startup and
/// after decision some nodes are legitimately absent.
fn run_scrape(args: &ScrapeArgs) -> Result<(), String> {
    let (host, port) = args
        .addr
        .rsplit_once(':')
        .ok_or_else(|| format!("invalid --addr {:?} (expected HOST:PORT)", args.addr))?;
    let port: u16 = port.parse().map_err(|e| format!("invalid port: {e}"))?;
    // Reject a wrapping port range up front instead of scraping whatever
    // unrelated service lives at the wrapped-around port.
    if member_port(port, u64::from(args.nodes) - 1).is_none() {
        return Err(format!(
            "--addr port {port} + {} nodes exceeds port 65535",
            args.nodes
        ));
    }

    let mut pass = 0u64;
    loop {
        pass += 1;
        println!(
            "{:<22} {:>7} {:>9} {:>9} {:>10} {:>9} {:>6} {:>5} {:>9}",
            "endpoint",
            "rounds",
            "mean_us",
            "frames_tx",
            "bytes_tx",
            "frames_rx",
            "reconn",
            "omiss",
            "backfill"
        );
        for i in 0..args.nodes {
            let member = member_port(port, u64::from(i)).expect("range validated above");
            let endpoint = format!("{host}:{member}");
            let resolved = endpoint
                .parse()
                .map_err(|e| format!("invalid endpoint {endpoint}: {e}"))?;
            match scrape_metrics(resolved) {
                Ok(body) => {
                    let row = ScrapeRow::from_body(endpoint, &body);
                    println!(
                        "{:<22} {:>7} {:>9} {:>9} {:>10} {:>9} {:>6} {:>5} {:>9}",
                        row.endpoint,
                        row.rounds,
                        row.mean_us,
                        row.frames_tx,
                        row.bytes_tx,
                        row.frames_rx,
                        row.reconnects,
                        row.omissions,
                        row.backfill
                    );
                }
                Err(err) => println!("{:<22} down ({err})", endpoint),
            }
        }
        if args.count != 0 && pass >= args.count {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(args.interval_ms));
        println!();
    }
}

/// Runs the same processes in the simulator and over TCP, compares the
/// decisions, and prints the verdict.
///
/// The returned flag is what the exit code asserts. Without impairments
/// it is strict simulator equality; under an impairing `--wan-profile` /
/// `--link-plan` the sim twin becomes informational (impairments are
/// faults the simulator run does not model) and the flag instead asserts
/// that every member decided and that the decisions satisfy `agrees` —
/// the algorithm's own agreement property.
fn run_twin<P, F>(
    args: &Args,
    factory: F,
    agrees: impl Fn(&BTreeMap<NodeId, P::Output>) -> bool,
) -> Result<bool, String>
where
    P: Process + Send,
    P::Msg: Wire,
    P::Output: Send + PartialEq + Debug,
    F: Fn() -> Vec<P>,
{
    // The in-process twin: the reference execution.
    let mut engine = SyncEngine::builder().correct_many(factory()).build();
    let sim = engine
        .run_to_completion(args.max_rounds)
        .map_err(|e| format!("simulator twin failed: {e}"))?;

    // The WAN emulation script, if any.
    let member_ids: Vec<NodeId> = factory().iter().map(|p| p.id()).collect();
    let plan: Option<LinkPlan> = match (&args.wan_profile, &args.link_plan) {
        (Some(profile), _) => Some(profile.plan(args.seed, &member_ids)),
        (None, Some(spec)) => Some(parse_link_plan(spec, args.seed, &member_ids)?),
        (None, None) => None,
    };
    let impaired = plan.as_ref().is_some_and(|p| !p.is_zero_impairment());
    match (&args.wan_profile, &plan) {
        (Some(profile), Some(plan)) => {
            println!("wan: profile {} (seed {})", profile.name(), plan.seed());
        }
        (None, Some(plan)) => println!("wan: custom link plan (seed {})", plan.seed()),
        _ => {}
    }

    // The real thing.
    let mut config = NetConfig {
        round_timeout: Duration::from_millis(args.timeout_ms),
        retry: RetryPolicy::default(),
        max_rounds: args.max_rounds,
        ..NetConfig::default()
    };
    if let Some(depth) = args.history_rounds {
        config.history_rounds = depth;
    }

    // One runtime-metrics registry and exposition endpoint per member: the
    // member with the i-th smallest id answers scrapes on base port + i.
    // Under a link plan, one extra registry at base port + nodes publishes
    // the proxy's per-link counters.
    let mut registries: BTreeMap<NodeId, SharedRuntimeMetrics> = BTreeMap::new();
    let mut link_registry: Option<SharedRuntimeMetrics> = None;
    let mut servers: Vec<MetricsServer> = Vec::new();
    if let Some(base) = &args.metrics_addr {
        let (host, port) = base
            .rsplit_once(':')
            .ok_or_else(|| format!("invalid --metrics-addr {base:?} (expected HOST:PORT)"))?;
        let port: u16 = port
            .parse()
            .map_err(|e| format!("invalid --metrics-addr port: {e}"))?;
        // Validate the whole consecutive range up front — the arithmetic
        // must not silently wrap past 65535 onto unrelated ports. The last
        // index is the proxy's link endpoint when a plan is in force.
        let last_index = args.nodes - u64::from(plan.is_none());
        if member_port(port, last_index).is_none() {
            return Err(format!(
                "--metrics-addr port {port} + {} endpoints exceeds port 65535",
                last_index + 1
            ));
        }
        let mut ids = member_ids.clone();
        ids.sort_unstable();
        for (i, id) in ids.into_iter().enumerate() {
            let registry = SharedRuntimeMetrics::new();
            let member = member_port(port, i as u64).expect("range validated above");
            let addr = format!("{host}:{member}");
            let server = serve_metrics(addr.as_str(), registry.clone())
                .map_err(|e| format!("binding metrics endpoint {addr}: {e}"))?;
            println!("metrics: node {id} on http://{}/metrics", server.addr());
            registries.insert(id, registry);
            servers.push(server);
        }
        if plan.is_some() {
            let registry = SharedRuntimeMetrics::new();
            let link = member_port(port, args.nodes).expect("range validated above");
            let addr = format!("{host}:{link}");
            let server = serve_metrics(addr.as_str(), registry.clone())
                .map_err(|e| format!("binding link metrics endpoint {addr}: {e}"))?;
            println!("metrics: links on http://{}/metrics", server.addr());
            link_registry = Some(registry);
            servers.push(server);
        }
    } else if plan.is_some() {
        // No endpoint, but still collect the per-link counters for the
        // final summary line.
        link_registry = Some(SharedRuntimeMetrics::new());
    }
    let mut metrics_for = |id: NodeId| registries.get(&id).cloned();

    let (reports, link_events) = match args.kill {
        None => match &plan {
            None => run_local_cluster_with_metrics(
                factory(),
                config,
                |_| JsonlTracer::in_memory(),
                &mut metrics_for,
            )
            .map(|reports| (reports, Vec::new()))
            .map_err(|e| format!("cluster run failed: {e}"))?,
            Some(plan) => run_local_cluster_with_proxy(
                factory(),
                config,
                |_| JsonlTracer::in_memory(),
                &mut metrics_for,
                plan,
                link_registry.clone(),
            )
            .map_err(|e| format!("cluster run failed: {e}"))?,
        },
        Some(kill_at) => {
            let victim = member_ids[args.victim];
            let journal_dir = args.journal_dir.clone().unwrap_or_else(|| {
                std::env::temp_dir().join(format!("uba-cluster-{}", std::process::id()))
            });
            // `--restart-at R2` approximates "back around round R2" by
            // holding the victim down one barrier timeout per round.
            let down_rounds = args.restart_at.map_or(0, |r| r - kill_at);
            let spec = KillSpec {
                victim,
                kill_at,
                restart_delay: Duration::from_millis(args.timeout_ms * down_rounds),
                journal_dir,
                tear_journal: args.tear_journal,
            };
            println!(
                "kill: node {victim} at round {kill_at}, down {}ms{}, journals in {}",
                args.timeout_ms * down_rounds,
                if args.tear_journal {
                    ", journal tail torn"
                } else {
                    ""
                },
                spec.journal_dir.display()
            );
            let build = |id| {
                factory()
                    .into_iter()
                    .find(|p: &P| p.id() == id)
                    .expect("factory covers every id")
            };
            match &plan {
                None => run_local_cluster_with_restart_and_metrics(
                    &member_ids,
                    build,
                    config,
                    |_| JsonlTracer::in_memory(),
                    &mut metrics_for,
                    &spec,
                )
                .map(|reports| (reports, Vec::new()))
                .map_err(|e| format!("cluster run failed: {e}"))?,
                Some(plan) => run_local_cluster_with_restart_through_proxy(
                    &member_ids,
                    build,
                    config,
                    |_| JsonlTracer::in_memory(),
                    &mut metrics_for,
                    &spec,
                    plan,
                    link_registry.clone(),
                )
                .map_err(|e| format!("cluster run failed: {e}"))?,
            }
        }
    };

    if let Some(prefix) = &args.trace_out {
        for (id, report) in &reports {
            let path = format!("{prefix}-{id}.jsonl");
            std::fs::write(&path, report.tracer.to_jsonl())
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
        if plan.is_some() {
            // The proxy's own view of the run: drops, delays, partitions
            // and heals, in the same JSONL vocabulary as the node traces.
            let mut tracer = JsonlTracer::in_memory();
            for event in &link_events {
                tracer.record(event.clone());
            }
            let path = format!("{prefix}-links.jsonl");
            std::fs::write(&path, tracer.to_jsonl()).map_err(|e| format!("writing {path}: {e}"))?;
        }
    }

    let net = decisions(&reports);
    let matched = compare(&sim.outputs, &net);

    let rounds = reports.values().map(|r| r.rounds).max().unwrap_or(0);
    let timeouts: u64 = reports.values().map(|r| r.timeouts).sum();
    let micros: Vec<u64> = reports
        .values()
        .flat_map(|r| r.round_micros.iter().copied())
        .collect();
    let mean = if micros.is_empty() {
        0
    } else {
        micros.iter().sum::<u64>() / micros.len() as u64
    };
    let max = micros.iter().copied().max().unwrap_or(0);
    println!(
        "cluster: {} nodes, {} rounds, {} barrier timeouts, round latency mean {mean}us max {max}us",
        args.nodes, rounds, timeouts
    );
    if let Some(registry) = &link_registry {
        let body = registry.render_prometheus();
        println!(
            "links: {} frames forwarded, {} dropped, {} severed, {} throttled ({} trace events)",
            family_sum(&body, "net_link_frames_forwarded_total"),
            family_sum(&body, "net_link_frames_dropped_total"),
            family_sum(&body, "net_link_frames_severed_total"),
            family_sum(&body, "net_link_frames_throttled_total"),
            link_events.len(),
        );
    }
    let ok = if impaired {
        // Impairments are faults the unimpaired simulator twin does not
        // model, so the sim comparison is informational; what the exit
        // code asserts is the protocol's own guarantee: every member
        // decided, and the decisions agree.
        let agreed = net.len() as u64 == args.nodes && agrees(&net);
        println!(
            "decisions: {}",
            if agreed {
                "AGREEMENT (all members decided compatibly under impairment)"
            } else {
                "DISAGREEMENT (agreement/termination violated under impairment)"
            }
        );
        println!(
            "sim twin: {} (informational under impairment)",
            if matched { "match" } else { "diverged" }
        );
        agreed
    } else {
        println!(
            "decisions: {}",
            if matched {
                "MATCH (network == simulator)"
            } else {
                "MISMATCH (network != simulator)"
            }
        );
        matched
    };

    // Final per-node transport totals from the runtime registries, then
    // release the scrape endpoints.
    for (id, registry) in &registries {
        let snapshot = registry.snapshot();
        let frames_tx: u64 = snapshot
            .counters()
            .filter(|(name, _)| name.starts_with("net_frames_sent_total"))
            .map(|(_, v)| v)
            .sum();
        let bytes_tx: u64 = snapshot
            .counters()
            .filter(|(name, _)| name.starts_with("net_bytes_sent_total"))
            .map(|(_, v)| v)
            .sum();
        println!(
            "metrics: node {id}: {} rounds, {frames_tx} frames / {bytes_tx} bytes sent",
            snapshot.counter("net_rounds_total")
        );
    }
    for server in servers {
        server.shutdown();
    }
    Ok(ok)
}

/// Runs one adversarial cluster per requested attack and prints the
/// verdict table: per attack, the honest members' rounds, the malice
/// ledger (misbehavior strikes and evictions), the omission ledger
/// (barrier timeouts) — charged distinctly, so the table shows *why* a
/// hostile peer was written off — and the `HONEST-AGREEMENT` verdict the
/// exit code (and the `byz-smoke` CI job) asserts.
///
/// The sim twin does not model wire attacks, so there is no byte-identity
/// check here (experiment T15 locks that for the equivocation script);
/// the asserted property is the honest members' own guarantee.
fn run_byzantine<P, F>(
    args: &Args,
    factory: F,
    agrees: impl Fn(&BTreeMap<NodeId, P::Output>) -> bool,
) -> Result<bool, String>
where
    P: Process + Send,
    P::Msg: Wire,
    P::Output: Send + Debug,
    F: Fn(&[NodeId]) -> Vec<P>,
{
    let setup = Setup::new(
        (args.nodes - args.byzantine) as usize,
        args.byzantine as usize,
        args.seed,
    );
    println!(
        "byzantine: {} hostile of {} members (n > 3f holds): hostile ids {:?}",
        args.byzantine, args.nodes, setup.faulty
    );
    println!(
        "{:<14} {:>6} {:>8} {:>9} {:>8} {:>8}  verdict",
        "attack", "rounds", "strikes", "evictions", "timeouts", "decided"
    );
    let mut all_ok = true;
    for kind in &args.attacks {
        let mut config = NetConfig {
            round_timeout: Duration::from_millis(args.timeout_ms),
            retry: RetryPolicy::default(),
            max_rounds: args.max_rounds,
            // A quota the flood script (256 frames/round) must cross, far
            // above anything the honest protocols send per round.
            max_frames_per_round: 64,
            ..NetConfig::default()
        };
        if let Some(depth) = args.history_rounds {
            config.history_rounds = depth;
        } else if matches!(kind, AttackKind::Replay { .. }) {
            // Replays of round 1 only go stale once the window has moved
            // past them; a short window makes the strike observable.
            config.history_rounds = 2;
        }
        let registry = SharedRuntimeMetrics::new();
        let run = run_local_cluster_with_byzantine(
            factory(&setup.correct),
            &setup.faulty,
            kind.clone(),
            args.seed,
            config,
            |_| JsonlTracer::in_memory(),
            |_| Some(registry.clone()),
        )
        .map_err(|e| format!("byzantine cluster run ({}) failed: {e}", kind.name()))?;

        let net = decisions(&run.honest);
        let ok = net.len() == setup.correct.len() && agrees(&net);
        all_ok &= ok;
        let snapshot = registry.snapshot();
        let strikes: u64 = snapshot
            .counters()
            .filter(|(name, _)| name.starts_with("net_misbehavior_total"))
            .map(|(_, v)| v)
            .sum();
        let evictions: u64 = run.honest.values().map(|r| r.evicted.len() as u64).sum();
        let timeouts: u64 = run.honest.values().map(|r| r.timeouts).sum();
        let rounds = run.honest.values().map(|r| r.rounds).max().unwrap_or(0);
        println!(
            "{:<14} {:>6} {:>8} {:>9} {:>8} {:>6}/{}  {}",
            kind.name(),
            rounds,
            strikes,
            evictions,
            timeouts,
            net.len(),
            setup.correct.len(),
            if ok {
                "HONEST-AGREEMENT"
            } else {
                "HONEST-DISAGREEMENT"
            }
        );

        if let Some(prefix) = &args.trace_out {
            // The postmortem artifacts: each honest member's trace, plus
            // the merged misbehavior/eviction counters as a Prometheus
            // text-format snapshot.
            for (id, report) in &run.honest {
                let path = format!("{prefix}-{}-{id}.jsonl", kind.name());
                std::fs::write(&path, report.tracer.to_jsonl())
                    .map_err(|e| format!("writing {path}: {e}"))?;
            }
            let path = format!("{prefix}-{}-misbehavior.prom", kind.name());
            std::fs::write(&path, registry.render_prometheus())
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
    }
    println!(
        "byzantine verdict: {}",
        if all_ok {
            "HONEST-AGREEMENT (every attack)"
        } else {
            "HONEST-DISAGREEMENT"
        }
    );
    Ok(all_ok)
}

/// Prints any divergence between the two decision maps.
fn compare<O: PartialEq + Debug>(sim: &BTreeMap<NodeId, O>, net: &BTreeMap<NodeId, O>) -> bool {
    let mut matched = true;
    for (id, expected) in sim {
        match net.get(id) {
            Some(actual) if actual == expected => {}
            Some(actual) => {
                eprintln!("{id}: simulator decided {expected:?}, network decided {actual:?}");
                matched = false;
            }
            None => {
                eprintln!("{id}: simulator decided {expected:?}, network did not decide");
                matched = false;
            }
        }
    }
    for id in net.keys() {
        if !sim.contains_key(id) {
            eprintln!("{id}: network decided but simulator did not");
            matched = false;
        }
    }
    matched
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("scrape") {
        argv.next();
        return match parse_scrape_args(argv).and_then(|args| run_scrape(&args)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::from(2)
            }
        };
    }
    let args = match parse_args(argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    let ids = sparse_ids(args.nodes as usize, args.seed);
    // Exact-agreement algorithms must decide one common value; approximate
    // agreement legitimately decides near-but-unequal values, so under
    // impairment only termination is asserted for it (the sim comparison
    // still checks exactness on unimpaired runs).
    fn unanimous<O: PartialEq>(outputs: &BTreeMap<NodeId, O>) -> bool {
        let mut values = outputs.values();
        let Some(first) = values.next() else {
            return false;
        };
        values.all(|v| v == first)
    }
    let result = if args.byzantine > 0 {
        match args.algo {
            Algo::Consensus => run_byzantine(
                &args,
                |ids: &[NodeId]| {
                    ids.iter()
                        .enumerate()
                        .map(|(i, &id)| EarlyConsensus::new(id, (args.seed >> (i % 64)) & 1))
                        .collect()
                },
                unanimous,
            ),
            Algo::Reliable => run_byzantine(
                &args,
                |ids: &[NodeId]| {
                    // The designated sender must be honest: a hostile
                    // sender is free to say nothing, which trivially
                    // satisfies reliable broadcast.
                    let sender = ids[0];
                    let payload = format!("rb-{}", args.seed);
                    ids.iter()
                        .map(|&id| {
                            let own = (id == sender).then(|| payload.clone());
                            ReliableBroadcast::new(id, sender, own).with_horizon(6)
                        })
                        .collect()
                },
                unanimous,
            ),
            Algo::Approx => run_byzantine(
                &args,
                |ids: &[NodeId]| {
                    ids.iter()
                        .enumerate()
                        .map(|(i, &id)| {
                            let input = ((args.seed % 97) as f64) + i as f64;
                            ApproxAgreement::new(id, input).with_iterations(3)
                        })
                        .collect()
                },
                |outputs| !outputs.is_empty(),
            ),
        }
    } else {
        match args.algo {
            Algo::Consensus => run_twin(
                &args,
                || {
                    ids.iter()
                        .enumerate()
                        .map(|(i, &id)| EarlyConsensus::new(id, (args.seed >> (i % 64)) & 1))
                        .collect()
                },
                unanimous,
            ),
            Algo::Reliable => {
                let sender = ids[0];
                let payload = format!("rb-{}", args.seed);
                run_twin(
                    &args,
                    || {
                        ids.iter()
                            .map(|&id| {
                                let own = (id == sender).then(|| payload.clone());
                                ReliableBroadcast::new(id, sender, own).with_horizon(6)
                            })
                            .collect()
                    },
                    unanimous,
                )
            }
            Algo::Approx => run_twin(
                &args,
                || {
                    ids.iter()
                        .enumerate()
                        .map(|(i, &id)| {
                            let input = ((args.seed % 97) as f64) + i as f64;
                            ApproxAgreement::new(id, input).with_iterations(3)
                        })
                        .collect()
                },
                |outputs| !outputs.is_empty(),
            ),
        }
    };

    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
