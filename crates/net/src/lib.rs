//! # uba-net — a real TCP round-transport for the `uba` protocol stack
//!
//! Runs any [`uba_sim::Process`] — unchanged — over localhost TCP instead
//! of the simulator: the same synchronous-round semantics (messages sent in
//! round `r` delivered at the start of round `r + 1`, per-round
//! `(sender, payload)` duplicate suppression, broadcast self-delivery,
//! sender-id-ordered inboxes), enforced by a **round synchronizer** over
//! length-prefixed frames instead of by a central engine loop.
//!
//! The crate is `std`-only by design (threads + `std::net`, no async
//! runtime), matching the workspace's no-external-dependencies policy.
//!
//! ## Layers
//!
//! * [`wire`] — the [`Wire`] codec trait and the length-prefixed [`Frame`]
//!   transport format (`Hello` handshake, `Data`, `Done` barrier marker);
//! * [`codec`] — `Wire` impls for the `uba-core` protocol payloads, so the
//!   bundled algorithms run over TCP out of the box;
//! * [`conn`] — dialing with retry/backoff, the handshake that pins each
//!   connection to a sender id, per-connection reader threads, and the
//!   generation-guarded writer table that makes reconnects safe;
//! * [`sync`] — the [`RoundSynchronizer`], a pure state machine enforcing
//!   the send/deliver barrier (unit-testable without sockets);
//! * [`node`] — [`NetNode`], one cluster member: process + transport +
//!   round loop, with [`uba_trace`] observability throughout;
//! * [`cluster`] — [`run_local_cluster`], an n-member localhost cluster in
//!   one call (the `cluster` binary wraps it on the command line);
//! * [`proxy`] — [`FaultProxy`], a deterministic WAN emulation layer: a
//!   seeded [`LinkPlan`] of per-link latency/jitter/loss/bandwidth and
//!   scheduled partitions, applied by shaping relays between the sockets
//!   and the framed codec (a zero-impairment plan is byte-identical to
//!   direct TCP — DESIGN.md §11);
//! * [`service`] — the ordering stack productized as a long-lived,
//!   key-sharded "log as a service": [`ShardedLog`] multiplexes many
//!   [`TotalOrdering`](uba_core::ordering::TotalOrdering) instances over
//!   one round loop, [`serve_clients`] answers the client frames
//!   (`Submit`/`SubmitAck`, `ReadPrefix`/`PrefixChunk`), and
//!   [`spawn_log_cluster`] stands up a whole `logd` cluster (the `logd`
//!   and `loadgen` binaries wrap it — DESIGN.md §12);
//! * [`metrics_http`] — [`serve_metrics`], a tiny Prometheus text-format
//!   exposition endpoint publishing a node's wall-clock
//!   [`SharedRuntimeMetrics`](uba_trace::SharedRuntimeMetrics) registry
//!   (phase timings, per-peer byte/frame counters) to live scrapes;
//! * [`byzantine`] — [`ByzantineNode`], a scripted hostile member driven by
//!   a seeded [`AttackPlan`] mirroring the simulator's adversary
//!   vocabulary (equivocation, replay, corruption, floods, stalls,
//!   backfill abuse), plus [`run_local_cluster_with_byzantine`] to stand up
//!   mixed honest/hostile clusters — the T15 experiment and the threat
//!   model in DESIGN.md §13 build on it.
//!
//! ## Timeouts are omissions
//!
//! A real network cannot guarantee the synchronous model's delivery bound,
//! so the transport *imposes* one: a peer that misses the round barrier
//! deadline is treated as silent for that round, and its late frames are
//! dropped. Both effects are **omission faults**, which the paper's
//! Byzantine fault model already subsumes — a mistimed timeout can cost
//! liveness (more rounds) but never safety, and the `uba-core` monitors
//! and spec checkers apply to networked runs unchanged. DESIGN.md §8
//! develops this mapping.
//!
//! ## Equivalence with the simulator
//!
//! For a fault-free cluster, a networked run is not merely "similar" to a
//! [`SyncEngine`](uba_sim::SyncEngine) run of the same processes — it
//! delivers byte-identical inboxes in the same order, so decisions match
//! exactly. The `tests/equivalence.rs` suite and the T11 experiment
//! (`cargo bench-bin -- run t11`, see EXPERIMENTS.md) hold this property
//! under seed randomization, and the `cluster` binary re-checks it on
//! every invocation against an in-process twin run.
//!
//! ## Example
//!
//! ```no_run
//! use uba_core::consensus::EarlyConsensus;
//! use uba_net::{decisions, run_local_cluster, NetConfig};
//! use uba_sim::sparse_ids;
//! use uba_trace::NoopTracer;
//!
//! // Four nodes agree over real sockets, no node knowing n or f.
//! let ids = sparse_ids(4, 7);
//! let members = ids.iter().enumerate().map(|(i, &id)| {
//!     EarlyConsensus::new(id, (i % 2) as u64)
//! });
//! let reports = run_local_cluster(members, NetConfig::default(), |_| NoopTracer)?;
//! let decided = decisions(&reports);
//! assert_eq!(decided.len(), 4, "every member decided");
//! # Ok::<(), uba_net::NetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
pub mod cluster;
pub mod codec;
pub mod conn;
pub mod metrics_http;
pub mod node;
pub mod proxy;
pub mod service;
pub mod sync;
pub mod wire;

pub use byzantine::{equivocation_frames, AttackKind, AttackPlan, ByzReport, ByzantineNode};
pub use cluster::{
    decisions, journal_path, run_local_cluster, run_local_cluster_with_byzantine,
    run_local_cluster_with_metrics, run_local_cluster_with_proxy, run_local_cluster_with_restart,
    run_local_cluster_with_restart_and_metrics, run_local_cluster_with_restart_through_proxy,
    ByzantineRun, KillSpec,
};
pub use conn::{connect_with_retry, LinkEvent, Links, RetryPolicy};
pub use metrics_http::{
    family_sum, member_port, scrape_metrics, series_value, serve_metrics, MetricsServer,
};
pub use node::{NetConfig, NetError, NetNode, NetReport};
pub use proxy::{FaultProxy, LinkPlan, LinkSpec, Partition, WanProfile};
pub use service::{
    serve_clients, service_horizon, shard_of, spawn_log_cluster, Batch, ClientServer, LogClient,
    LogCluster, LogIngress, PrefixPage, Record, ShardedLog,
};
pub use sync::{DataOutcome, DoneOutcome, RoundSynchronizer};
pub use wire::{read_frame, write_frame, Frame, Wire, MAX_FRAME};
