//! [`Wire`] implementations for the protocol payloads shipped by
//! `uba-core`, so every bundled algorithm runs over the transport out of
//! the box.
//!
//! Each enum gets a one-byte variant tag followed by the variant's fields;
//! unknown tags are malformed input. User-defined payload types only need
//! their own `Wire` impl — the transport is generic over `P::Msg: Wire`.

use uba_core::consensus::ConsensusMsg;
use uba_core::ordering::OrderMsg;
use uba_core::parallel::ParMsg;
use uba_core::reliable::RbMsg;
use uba_core::OrderedF64;

use crate::wire::Wire;

const CONSENSUS_ROTOR_INIT: u8 = 0;
const CONSENSUS_ROTOR_ECHO: u8 = 1;
const CONSENSUS_OPINION: u8 = 2;
const CONSENSUS_INPUT: u8 = 3;
const CONSENSUS_PREFER: u8 = 4;
const CONSENSUS_STRONG_PREFER: u8 = 5;

impl<V: Wire> Wire for ConsensusMsg<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ConsensusMsg::RotorInit => out.push(CONSENSUS_ROTOR_INIT),
            ConsensusMsg::RotorEcho(node) => {
                out.push(CONSENSUS_ROTOR_ECHO);
                node.encode(out);
            }
            ConsensusMsg::Opinion(v) => {
                out.push(CONSENSUS_OPINION);
                v.encode(out);
            }
            ConsensusMsg::Input(v) => {
                out.push(CONSENSUS_INPUT);
                v.encode(out);
            }
            ConsensusMsg::Prefer(v) => {
                out.push(CONSENSUS_PREFER);
                v.encode(out);
            }
            ConsensusMsg::StrongPrefer(v) => {
                out.push(CONSENSUS_STRONG_PREFER);
                v.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(input)? {
            CONSENSUS_ROTOR_INIT => ConsensusMsg::RotorInit,
            CONSENSUS_ROTOR_ECHO => ConsensusMsg::RotorEcho(Wire::decode(input)?),
            CONSENSUS_OPINION => ConsensusMsg::Opinion(V::decode(input)?),
            CONSENSUS_INPUT => ConsensusMsg::Input(V::decode(input)?),
            CONSENSUS_PREFER => ConsensusMsg::Prefer(V::decode(input)?),
            CONSENSUS_STRONG_PREFER => ConsensusMsg::StrongPrefer(V::decode(input)?),
            _ => return None,
        })
    }
}

const RB_PAYLOAD: u8 = 0;
const RB_PRESENT: u8 = 1;
const RB_ECHO: u8 = 2;

impl<M: Wire> Wire for RbMsg<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RbMsg::Payload(m) => {
                out.push(RB_PAYLOAD);
                m.encode(out);
            }
            RbMsg::Present => out.push(RB_PRESENT),
            RbMsg::Echo(m) => {
                out.push(RB_ECHO);
                m.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(input)? {
            RB_PAYLOAD => RbMsg::Payload(M::decode(input)?),
            RB_PRESENT => RbMsg::Present,
            RB_ECHO => RbMsg::Echo(M::decode(input)?),
            _ => return None,
        })
    }
}

const PAR_ROTOR_INIT: u8 = 0;
const PAR_ROTOR_ECHO: u8 = 1;
const PAR_OPINION: u8 = 2;
const PAR_INPUT: u8 = 3;
const PAR_PREFER: u8 = 4;
const PAR_NO_PREFERENCE: u8 = 5;
const PAR_STRONG_PREFER: u8 = 6;
const PAR_NO_STRONG_PREFERENCE: u8 = 7;

impl<I: Wire, V: Wire> Wire for ParMsg<I, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ParMsg::RotorInit => out.push(PAR_ROTOR_INIT),
            ParMsg::RotorEcho(node) => {
                out.push(PAR_ROTOR_ECHO);
                node.encode(out);
            }
            ParMsg::Opinion(id, v) => {
                out.push(PAR_OPINION);
                id.encode(out);
                v.encode(out);
            }
            ParMsg::Input(id, v) => {
                out.push(PAR_INPUT);
                id.encode(out);
                v.encode(out);
            }
            ParMsg::Prefer(id, v) => {
                out.push(PAR_PREFER);
                id.encode(out);
                v.encode(out);
            }
            ParMsg::NoPreference(id) => {
                out.push(PAR_NO_PREFERENCE);
                id.encode(out);
            }
            ParMsg::StrongPrefer(id, v) => {
                out.push(PAR_STRONG_PREFER);
                id.encode(out);
                v.encode(out);
            }
            ParMsg::NoStrongPreference(id) => {
                out.push(PAR_NO_STRONG_PREFERENCE);
                id.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(input)? {
            PAR_ROTOR_INIT => ParMsg::RotorInit,
            PAR_ROTOR_ECHO => ParMsg::RotorEcho(Wire::decode(input)?),
            PAR_OPINION => ParMsg::Opinion(I::decode(input)?, Option::decode(input)?),
            PAR_INPUT => ParMsg::Input(I::decode(input)?, V::decode(input)?),
            PAR_PREFER => ParMsg::Prefer(I::decode(input)?, Option::decode(input)?),
            PAR_NO_PREFERENCE => ParMsg::NoPreference(I::decode(input)?),
            PAR_STRONG_PREFER => ParMsg::StrongPrefer(I::decode(input)?, Option::decode(input)?),
            PAR_NO_STRONG_PREFERENCE => ParMsg::NoStrongPreference(I::decode(input)?),
            _ => return None,
        })
    }
}

const ORDER_PRESENT: u8 = 0;
const ORDER_ACK: u8 = 1;
const ORDER_ABSENT: u8 = 2;
const ORDER_EVENT: u8 = 3;
const ORDER_WAVE: u8 = 4;

impl<V: Wire> Wire for OrderMsg<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OrderMsg::Present => out.push(ORDER_PRESENT),
            OrderMsg::Ack(round) => {
                out.push(ORDER_ACK);
                round.encode(out);
            }
            OrderMsg::Absent => out.push(ORDER_ABSENT),
            OrderMsg::Event(v, round) => {
                out.push(ORDER_EVENT);
                v.encode(out);
                round.encode(out);
            }
            OrderMsg::Wave(wave, msg) => {
                out.push(ORDER_WAVE);
                wave.encode(out);
                msg.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(input)? {
            ORDER_PRESENT => OrderMsg::Present,
            ORDER_ACK => OrderMsg::Ack(u64::decode(input)?),
            ORDER_ABSENT => OrderMsg::Absent,
            ORDER_EVENT => OrderMsg::Event(V::decode(input)?, u64::decode(input)?),
            ORDER_WAVE => OrderMsg::Wave(u64::decode(input)?, ParMsg::decode(input)?),
            _ => return None,
        })
    }
}

/// `OrderedF64` travels as the IEEE-754 bit pattern of its float. Decoding
/// re-validates through [`OrderedF64::new`], so a NaN bit pattern on the
/// wire is malformed input — the invariant cannot be smuggled past the
/// constructor by a remote peer.
impl Wire for OrderedF64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.get().encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        OrderedF64::new(f64::decode(input)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_sim::NodeId;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(&bytes).as_ref(), Some(&value));
    }

    #[test]
    fn consensus_messages_round_trip() {
        round_trip(ConsensusMsg::<u64>::RotorInit);
        round_trip(ConsensusMsg::<u64>::RotorEcho(NodeId::new(12)));
        round_trip(ConsensusMsg::Opinion(3u64));
        round_trip(ConsensusMsg::Input(0u64));
        round_trip(ConsensusMsg::Prefer(9u64));
        round_trip(ConsensusMsg::StrongPrefer(u64::MAX));
    }

    #[test]
    fn reliable_broadcast_messages_round_trip() {
        round_trip(RbMsg::Payload(String::from("m")));
        round_trip(RbMsg::<String>::Present);
        round_trip(RbMsg::Echo(String::from("m")));
    }

    #[test]
    fn ordered_f64_round_trips_and_rejects_nan() {
        round_trip(OrderedF64::new(0.5).unwrap());
        round_trip(OrderedF64::new(-0.0).unwrap());
        let nan_bits = f64::NAN.to_bits().to_bytes();
        assert_eq!(OrderedF64::from_bytes(&nan_bits), None);
    }

    #[test]
    fn parallel_consensus_messages_round_trip() {
        round_trip(ParMsg::<NodeId, u64>::RotorInit);
        round_trip(ParMsg::<NodeId, u64>::RotorEcho(NodeId::new(3)));
        round_trip(ParMsg::<NodeId, u64>::Opinion(NodeId::new(1), Some(7)));
        round_trip(ParMsg::<NodeId, u64>::Opinion(NodeId::new(1), None));
        round_trip(ParMsg::<NodeId, u64>::Input(NodeId::new(2), 9));
        round_trip(ParMsg::<NodeId, u64>::Prefer(NodeId::new(2), None));
        round_trip(ParMsg::<NodeId, u64>::NoPreference(NodeId::new(4)));
        round_trip(ParMsg::<NodeId, u64>::StrongPrefer(NodeId::new(5), Some(0)));
        round_trip(ParMsg::<NodeId, u64>::NoStrongPreference(NodeId::new(6)));
    }

    #[test]
    fn ordering_messages_round_trip() {
        round_trip(OrderMsg::<u64>::Present);
        round_trip(OrderMsg::<u64>::Ack(12));
        round_trip(OrderMsg::<u64>::Absent);
        round_trip(OrderMsg::<u64>::Event(42, 3));
        round_trip(OrderMsg::<u64>::Wave(
            7,
            ParMsg::StrongPrefer(NodeId::new(1), Some(8)),
        ));
        // The service's batch payloads nest a vector inside the event.
        round_trip(OrderMsg::<Vec<u64>>::Event(vec![1, 2, 3], 5));
    }

    #[test]
    fn unknown_variant_tags_are_rejected() {
        assert_eq!(ConsensusMsg::<u64>::from_bytes(&[9]), None);
        assert_eq!(RbMsg::<u64>::from_bytes(&[9]), None);
        assert_eq!(ParMsg::<NodeId, u64>::from_bytes(&[8]), None);
        assert_eq!(OrderMsg::<u64>::from_bytes(&[5]), None);
    }
}
