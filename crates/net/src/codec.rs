//! [`Wire`] implementations for the protocol payloads shipped by
//! `uba-core`, so every bundled algorithm runs over the transport out of
//! the box.
//!
//! Each enum gets a one-byte variant tag followed by the variant's fields;
//! unknown tags are malformed input. User-defined payload types only need
//! their own `Wire` impl — the transport is generic over `P::Msg: Wire`.

use uba_core::consensus::ConsensusMsg;
use uba_core::reliable::RbMsg;
use uba_core::OrderedF64;

use crate::wire::Wire;

const CONSENSUS_ROTOR_INIT: u8 = 0;
const CONSENSUS_ROTOR_ECHO: u8 = 1;
const CONSENSUS_OPINION: u8 = 2;
const CONSENSUS_INPUT: u8 = 3;
const CONSENSUS_PREFER: u8 = 4;
const CONSENSUS_STRONG_PREFER: u8 = 5;

impl<V: Wire> Wire for ConsensusMsg<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ConsensusMsg::RotorInit => out.push(CONSENSUS_ROTOR_INIT),
            ConsensusMsg::RotorEcho(node) => {
                out.push(CONSENSUS_ROTOR_ECHO);
                node.encode(out);
            }
            ConsensusMsg::Opinion(v) => {
                out.push(CONSENSUS_OPINION);
                v.encode(out);
            }
            ConsensusMsg::Input(v) => {
                out.push(CONSENSUS_INPUT);
                v.encode(out);
            }
            ConsensusMsg::Prefer(v) => {
                out.push(CONSENSUS_PREFER);
                v.encode(out);
            }
            ConsensusMsg::StrongPrefer(v) => {
                out.push(CONSENSUS_STRONG_PREFER);
                v.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(input)? {
            CONSENSUS_ROTOR_INIT => ConsensusMsg::RotorInit,
            CONSENSUS_ROTOR_ECHO => ConsensusMsg::RotorEcho(Wire::decode(input)?),
            CONSENSUS_OPINION => ConsensusMsg::Opinion(V::decode(input)?),
            CONSENSUS_INPUT => ConsensusMsg::Input(V::decode(input)?),
            CONSENSUS_PREFER => ConsensusMsg::Prefer(V::decode(input)?),
            CONSENSUS_STRONG_PREFER => ConsensusMsg::StrongPrefer(V::decode(input)?),
            _ => return None,
        })
    }
}

const RB_PAYLOAD: u8 = 0;
const RB_PRESENT: u8 = 1;
const RB_ECHO: u8 = 2;

impl<M: Wire> Wire for RbMsg<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RbMsg::Payload(m) => {
                out.push(RB_PAYLOAD);
                m.encode(out);
            }
            RbMsg::Present => out.push(RB_PRESENT),
            RbMsg::Echo(m) => {
                out.push(RB_ECHO);
                m.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(input)? {
            RB_PAYLOAD => RbMsg::Payload(M::decode(input)?),
            RB_PRESENT => RbMsg::Present,
            RB_ECHO => RbMsg::Echo(M::decode(input)?),
            _ => return None,
        })
    }
}

/// `OrderedF64` travels as the IEEE-754 bit pattern of its float. Decoding
/// re-validates through [`OrderedF64::new`], so a NaN bit pattern on the
/// wire is malformed input — the invariant cannot be smuggled past the
/// constructor by a remote peer.
impl Wire for OrderedF64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.get().encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        OrderedF64::new(f64::decode(input)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_sim::NodeId;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(&bytes).as_ref(), Some(&value));
    }

    #[test]
    fn consensus_messages_round_trip() {
        round_trip(ConsensusMsg::<u64>::RotorInit);
        round_trip(ConsensusMsg::<u64>::RotorEcho(NodeId::new(12)));
        round_trip(ConsensusMsg::Opinion(3u64));
        round_trip(ConsensusMsg::Input(0u64));
        round_trip(ConsensusMsg::Prefer(9u64));
        round_trip(ConsensusMsg::StrongPrefer(u64::MAX));
    }

    #[test]
    fn reliable_broadcast_messages_round_trip() {
        round_trip(RbMsg::Payload(String::from("m")));
        round_trip(RbMsg::<String>::Present);
        round_trip(RbMsg::Echo(String::from("m")));
    }

    #[test]
    fn ordered_f64_round_trips_and_rejects_nan() {
        round_trip(OrderedF64::new(0.5).unwrap());
        round_trip(OrderedF64::new(-0.0).unwrap());
        let nan_bits = f64::NAN.to_bits().to_bytes();
        assert_eq!(OrderedF64::from_bytes(&nan_bits), None);
    }

    #[test]
    fn unknown_variant_tags_are_rejected() {
        assert_eq!(ConsensusMsg::<u64>::from_bytes(&[9]), None);
        assert_eq!(RbMsg::<u64>::from_bytes(&[9]), None);
    }
}
