//! [`run_local_cluster`]: spawn an n-member localhost cluster, one OS
//! thread per member, and collect every member's [`NetReport`].
//!
//! The startup sequence is race-free by construction: every member's
//! listener is **bound before any thread spawns**, so a dialer can never
//! hit a peer whose port does not exist yet (it can still hit one whose
//! accept loop is not running — that is what the dial retry/backoff
//! absorbs). Ports are OS-assigned (`127.0.0.1:0`), so clusters never
//! collide with each other or with anything else on the machine.

use std::collections::BTreeMap;
use std::net::TcpListener;
use std::thread;

use uba_sim::{NodeId, Process};
use uba_trace::Tracer;

use crate::node::{NetConfig, NetError, NetNode, NetReport};
use crate::wire::Wire;

/// Runs one process per cluster member over localhost TCP and returns each
/// member's report, keyed by node id.
///
/// `tracer_for` builds each member's tracer (members run on separate
/// threads, so they cannot share one); pass `|_| NoopTracer` to trace
/// nothing. Processes carry their own ids — duplicate ids are a caller
/// bug and panic.
///
/// # Errors
///
/// The first member failure in id order ([`NetError::RoundLimit`],
/// [`NetError::InvariantViolated`], or a transport [`NetError::Io`]); all
/// threads are joined either way.
///
/// # Panics
///
/// Panics if two processes share an id or a member thread panics.
///
/// # Examples
///
/// ```no_run
/// use uba_core::consensus::EarlyConsensus;
/// use uba_net::{run_local_cluster, NetConfig};
/// use uba_sim::sparse_ids;
/// use uba_trace::NoopTracer;
///
/// let ids = sparse_ids(4, 42);
/// let members = ids.iter().map(|&id| EarlyConsensus::new(id, 1u64));
/// let reports = run_local_cluster(members, NetConfig::default(), |_| NoopTracer)?;
/// for report in reports.values() {
///     assert_eq!(report.output, Some(1));
/// }
/// # Ok::<(), uba_net::NetError>(())
/// ```
pub fn run_local_cluster<P, T>(
    processes: impl IntoIterator<Item = P>,
    config: NetConfig,
    mut tracer_for: impl FnMut(NodeId) -> T,
) -> Result<BTreeMap<NodeId, NetReport<P::Output, T>>, NetError>
where
    P: Process + Send,
    P::Msg: Wire,
    P::Output: Send,
    T: Tracer + Send + 'static,
{
    // Bind every listener first, then build the shared roster.
    let mut members = Vec::new();
    let mut roster = BTreeMap::new();
    for process in processes {
        let id = process.id();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        assert!(
            roster.insert(id, addr).is_none(),
            "duplicate cluster member id {id}"
        );
        members.push((id, process, listener));
    }

    let handles: Vec<_> = members
        .into_iter()
        .map(|(id, process, listener)| {
            let node = NetNode::new(process, config.clone()).with_tracer(tracer_for(id));
            let roster = roster.clone();
            let handle = thread::spawn(move || node.run(listener, &roster));
            (id, handle)
        })
        .collect();

    let mut reports = BTreeMap::new();
    let mut first_error = None;
    for (id, handle) in handles {
        match handle.join().expect("cluster member thread panicked") {
            Ok(report) => {
                reports.insert(id, report);
            }
            Err(err) => {
                if first_error.is_none() {
                    first_error = Some(err);
                }
            }
        }
    }
    match first_error {
        Some(err) => Err(err),
        None => Ok(reports),
    }
}

/// The decisions of a cluster run: each member's output, keyed by id, for
/// members that decided.
pub fn decisions<O: Clone, T>(reports: &BTreeMap<NodeId, NetReport<O, T>>) -> BTreeMap<NodeId, O> {
    reports
        .iter()
        .filter_map(|(&id, report)| report.output.clone().map(|o| (id, o)))
        .collect()
}
