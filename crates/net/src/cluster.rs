//! [`run_local_cluster`]: spawn an n-member localhost cluster, one OS
//! thread per member, and collect every member's [`NetReport`].
//!
//! The startup sequence is race-free by construction: every member's
//! listener is **bound before any thread spawns**, so a dialer can never
//! hit a peer whose port does not exist yet (it can still hit one whose
//! accept loop is not running — that is what the dial retry/backoff
//! absorbs). Ports are OS-assigned (`127.0.0.1:0`), so clusters never
//! collide with each other or with anything else on the machine.
//!
//! [`run_local_cluster_with_restart`] is the crash-recovery drill: every
//! member keeps a durable round journal, one designated victim is killed at
//! the start of a chosen round, and after a configurable downtime it is
//! rebuilt from its journal and rejoins via the backfill protocol
//! (DESIGN.md §9). The T12 experiment and the CI kill-and-rejoin smoke run
//! are built on it.

use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io;
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use uba_sim::{NodeId, Process};
use uba_trace::{RoundJournal, SharedRuntimeMetrics, TraceEvent, Tracer};

use crate::byzantine::{AttackKind, AttackPlan, ByzReport, ByzantineNode};
use crate::node::{NetConfig, NetError, NetNode, NetReport};
use crate::proxy::{FaultProxy, LinkPlan};
use crate::wire::Wire;

/// A member's id paired with its running thread, as the cluster runners
/// collect them for the panic-safe join.
pub(crate) type MemberHandle<O, T> = (
    NodeId,
    thread::JoinHandle<Result<NetReport<O, T>, NetError>>,
);

/// What a proxied cluster run returns: every member's report plus the
/// proxy's link-shaping trace events (drops, delays, partitions, heals)
/// in emission order.
pub type ProxiedRun<O, T> = (BTreeMap<NodeId, NetReport<O, T>>, Vec<TraceEvent>);

/// Joins every member thread and folds the results, panic-safely. Each
/// thread body is wrapped in `catch_unwind`, so a panicking member
/// surfaces as [`NetError::MemberPanicked`] instead of poisoning the
/// join; the surviving members, woken by the shared abort flag the wrapper
/// flips, report [`NetError::Aborted`]. Error priority: a panic beats
/// everything (it is the root cause), any other member failure beats the
/// collateral aborts.
pub(crate) fn collect_reports<O, T>(
    handles: Vec<MemberHandle<O, T>>,
) -> Result<BTreeMap<NodeId, NetReport<O, T>>, NetError> {
    let mut reports = BTreeMap::new();
    let mut panicked = None;
    let mut first_error = None;
    let mut aborted = None;
    for (id, handle) in handles {
        // The catch_unwind wrapper already converts panics; join() itself
        // failing means one escaped anyway (e.g. out of a Drop) — treat it
        // the same way.
        let result = handle
            .join()
            .unwrap_or(Err(NetError::MemberPanicked { id }));
        match result {
            Ok(report) => {
                reports.insert(id, report);
            }
            Err(err @ NetError::MemberPanicked { .. }) => {
                if panicked.is_none() {
                    panicked = Some(err);
                }
            }
            Err(NetError::Aborted) => {
                if aborted.is_none() {
                    aborted = Some(NetError::Aborted);
                }
            }
            Err(err) => {
                if first_error.is_none() {
                    first_error = Some(err);
                }
            }
        }
    }
    if let Some(err) = panicked {
        return Err(err);
    }
    if let Some(err) = first_error {
        return Err(err);
    }
    if let Some(err) = aborted {
        return Err(err);
    }
    Ok(reports)
}

/// Runs one process per cluster member over localhost TCP and returns each
/// member's report, keyed by node id.
///
/// `tracer_for` builds each member's tracer (members run on separate
/// threads, so they cannot share one); pass `|_| NoopTracer` to trace
/// nothing. Processes carry their own ids — duplicate ids are a caller
/// bug and panic.
///
/// # Errors
///
/// The first member failure in id order ([`NetError::RoundLimit`],
/// [`NetError::InvariantViolated`], or a transport [`NetError::Io`]); all
/// threads are joined either way. A member thread that *panics* surfaces
/// as [`NetError::MemberPanicked`] — the panic aborts the surviving
/// members (they bail out at their next barrier check instead of waiting
/// out their timeouts) and the harness reports it as a typed failure
/// rather than poisoning the run.
///
/// # Panics
///
/// Panics if two processes share an id.
///
/// # Examples
///
/// ```no_run
/// use uba_core::consensus::EarlyConsensus;
/// use uba_net::{run_local_cluster, NetConfig};
/// use uba_sim::sparse_ids;
/// use uba_trace::NoopTracer;
///
/// let ids = sparse_ids(4, 42);
/// let members = ids.iter().map(|&id| EarlyConsensus::new(id, 1u64));
/// let reports = run_local_cluster(members, NetConfig::default(), |_| NoopTracer)?;
/// for report in reports.values() {
///     assert_eq!(report.output, Some(1));
/// }
/// # Ok::<(), uba_net::NetError>(())
/// ```
pub fn run_local_cluster<P, T>(
    processes: impl IntoIterator<Item = P>,
    config: NetConfig,
    tracer_for: impl FnMut(NodeId) -> T,
) -> Result<BTreeMap<NodeId, NetReport<P::Output, T>>, NetError>
where
    P: Process + Send,
    P::Msg: Wire,
    P::Output: Send,
    T: Tracer + Send + 'static,
{
    run_local_cluster_with_metrics(processes, config, tracer_for, |_| None)
}

/// [`run_local_cluster`] with a wall-clock runtime-metrics registry per
/// member: `metrics_for` returns the [`SharedRuntimeMetrics`] handle a
/// member should record into (share a clone with a
/// [`serve_metrics`](crate::serve_metrics) endpoint to scrape it live), or
/// `None` to run that member uninstrumented at zero cost.
///
/// # Errors
///
/// As [`run_local_cluster`].
///
/// # Panics
///
/// As [`run_local_cluster`].
pub fn run_local_cluster_with_metrics<P, T>(
    processes: impl IntoIterator<Item = P>,
    config: NetConfig,
    tracer_for: impl FnMut(NodeId) -> T,
    metrics_for: impl FnMut(NodeId) -> Option<SharedRuntimeMetrics>,
) -> Result<BTreeMap<NodeId, NetReport<P::Output, T>>, NetError>
where
    P: Process + Send,
    P::Msg: Wire,
    P::Output: Send,
    T: Tracer + Send + 'static,
{
    run_cluster(processes, config, tracer_for, metrics_for, None).map(|(reports, _)| reports)
}

/// [`run_local_cluster_with_metrics`] behind a WAN [`FaultProxy`]: every
/// member is fronted by a shaping relay applying `plan`, the nodes dial
/// the fronts, and everything above the sockets runs unmodified. Returns
/// the reports **plus** the `net_link_*` trace events the proxy collected
/// (drops, delays, partitions, heals); per-link counters land in
/// `link_metrics`, if attached.
///
/// A zero-impairment `plan` is byte-identical to [`run_local_cluster`]
/// modulo the extra hop — see the [`crate::proxy`] module docs.
///
/// # Errors
///
/// As [`run_local_cluster`]. Note that under impairments that exceed the
/// configured timeouts (a partition outlasting `give_up_after`, say) the
/// cluster can legitimately fail with [`NetError::RoundLimit`].
///
/// # Panics
///
/// Panics if two processes share an id. A panicking member thread is
/// *not* propagated: it aborts the surviving members and surfaces as
/// [`NetError::MemberPanicked`].
pub fn run_local_cluster_with_proxy<P, T>(
    processes: impl IntoIterator<Item = P>,
    config: NetConfig,
    tracer_for: impl FnMut(NodeId) -> T,
    metrics_for: impl FnMut(NodeId) -> Option<SharedRuntimeMetrics>,
    plan: &LinkPlan,
    link_metrics: Option<SharedRuntimeMetrics>,
) -> Result<ProxiedRun<P::Output, T>, NetError>
where
    P: Process + Send,
    P::Msg: Wire,
    P::Output: Send,
    T: Tracer + Send + 'static,
{
    run_cluster(
        processes,
        config,
        tracer_for,
        metrics_for,
        Some((plan, link_metrics)),
    )
}

/// The shared plain-runner body: bind listeners, optionally interpose the
/// fault proxy, spawn one panic-guarded thread per member, fold reports.
fn run_cluster<P, T>(
    processes: impl IntoIterator<Item = P>,
    config: NetConfig,
    mut tracer_for: impl FnMut(NodeId) -> T,
    mut metrics_for: impl FnMut(NodeId) -> Option<SharedRuntimeMetrics>,
    proxy: Option<(&LinkPlan, Option<SharedRuntimeMetrics>)>,
) -> Result<ProxiedRun<P::Output, T>, NetError>
where
    P: Process + Send,
    P::Msg: Wire,
    P::Output: Send,
    T: Tracer + Send + 'static,
{
    // Bind every listener first, then build the shared roster.
    let mut members = Vec::new();
    let mut roster = BTreeMap::new();
    for process in processes {
        let id = process.id();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        assert!(
            roster.insert(id, addr).is_none(),
            "duplicate cluster member id {id}"
        );
        members.push((id, process, listener));
    }

    // With a proxy, the nodes dial the fronts; the real roster stays the
    // relay targets.
    let fault_proxy = match proxy {
        Some((plan, link_metrics)) => Some(FaultProxy::spawn(&roster, plan.clone(), link_metrics)?),
        None => None,
    };
    let dial_roster = fault_proxy
        .as_ref()
        .map_or(&roster, FaultProxy::roster)
        .clone();

    let abort = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = members
        .into_iter()
        .map(|(id, process, listener)| {
            let mut node = NetNode::new(process, config.clone())
                .with_tracer(tracer_for(id))
                .with_abort_flag(Arc::clone(&abort));
            if let Some(runtime) = metrics_for(id) {
                node = node.with_runtime_metrics(runtime);
            }
            let roster = dial_roster.clone();
            let abort = Arc::clone(&abort);
            let handle = thread::spawn(move || {
                match catch_unwind(AssertUnwindSafe(move || node.run(listener, &roster))) {
                    Ok(result) => result,
                    Err(_) => {
                        abort.store(true, Ordering::SeqCst);
                        Err(NetError::MemberPanicked { id })
                    }
                }
            });
            (id, handle)
        })
        .collect();

    let result = collect_reports(handles);
    let events = fault_proxy.map_or_else(Vec::new, |p| {
        let events = p.take_events();
        p.shutdown();
        events
    });
    result.map(|reports| (reports, events))
}

/// Fault-injection script for [`run_local_cluster_with_restart`]: which
/// member dies, when, and how it comes back.
#[derive(Debug, Clone)]
pub struct KillSpec {
    /// The member to kill (must be one of the cluster's ids).
    pub victim: NodeId,
    /// The round at whose *start* the victim dies: its sockets close before
    /// it executes the round, so peers see EOF and round `kill_at` traffic
    /// never leaves the victim.
    pub kill_at: u64,
    /// How long the victim stays down before recovering its journal. Within
    /// one `round_timeout` the rejoin is transparent (peers are still
    /// waiting at the barrier and charge no omission); longer downtimes
    /// degrade to omissions, which the model tolerates but which break the
    /// byte-identical-to-the-simulator property.
    pub restart_delay: Duration,
    /// Directory for the per-member journals (`node-<id>.jsonl`); created
    /// if absent.
    pub journal_dir: PathBuf,
    /// Truncate the victim's journal mid-line before recovery, simulating a
    /// crash that tore the final append. Recovery then resumes one round
    /// earlier and the rejoin must still converge (requires `kill_at` late
    /// enough that at least one entry exists).
    pub tear_journal: bool,
}

/// The journal file for one member under `dir` — shared by the runner, the
/// `cluster` binary, and CI artifact collection.
pub fn journal_path(dir: &Path, id: NodeId) -> PathBuf {
    dir.join(format!("node-{}.jsonl", id.raw()))
}

/// Truncates `path` mid-way into its final line, simulating an append torn
/// by a crash (the fsync never completed).
fn tear_tail(path: &Path) -> io::Result<()> {
    let bytes = std::fs::read(path)?;
    let end = bytes.len().saturating_sub(1); // behead the trailing newline
    let line_start = bytes[..end]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |i| i + 1);
    let keep = line_start + (end - line_start) / 2;
    OpenOptions::new()
        .write(true)
        .open(path)?
        .set_len(keep as u64)
}

/// Runs a cluster like [`run_local_cluster`], but with durable journals and
/// one scripted crash: the `spec.victim` dies at the start of round
/// `spec.kill_at`, sleeps out its downtime, recovers its journal (optionally
/// torn), replays it into a freshly built process, and rejoins the cluster
/// over the `SyncRequest`/`Backfill` protocol.
///
/// `build` must return the member in its **initial** state every time it is
/// called with the same id — it is called once per member plus once more
/// for the victim's second incarnation; determinism of the processes makes
/// the replayed incarnation converge to the crashed one's state.
///
/// The victim's report (and tracer) in the returned map is from the
/// **resumed** incarnation. If the cluster finishes before `kill_at`, no
/// crash happens and the run is an ordinary journaled run.
///
/// # Errors
///
/// As [`run_local_cluster`], plus journal I/O failures.
///
/// # Panics
///
/// Panics if `spec.victim` is not among the built members' ids or on
/// duplicate ids; a panicking member thread surfaces as
/// [`NetError::MemberPanicked`].
pub fn run_local_cluster_with_restart<P, T, F>(
    ids: &[NodeId],
    build: F,
    config: NetConfig,
    tracer_for: impl FnMut(NodeId) -> T,
    spec: &KillSpec,
) -> Result<BTreeMap<NodeId, NetReport<P::Output, T>>, NetError>
where
    P: Process + Send,
    P::Msg: Wire,
    P::Output: Send,
    T: Tracer + Send + 'static,
    F: FnMut(NodeId) -> P,
{
    run_local_cluster_with_restart_and_metrics(ids, build, config, tracer_for, |_| None, spec)
}

/// [`run_local_cluster_with_restart`] with per-member runtime metrics, as in
/// [`run_local_cluster_with_metrics`]. The victim's **second incarnation
/// records into the same registry** as its first — counters survive the
/// crash (the registry lives in this process, not the "crashed" node), so a
/// scrape across the restart shows the reconnects and backfill frames the
/// rejoin cost.
///
/// # Errors
///
/// As [`run_local_cluster_with_restart`].
///
/// # Panics
///
/// As [`run_local_cluster_with_restart`].
pub fn run_local_cluster_with_restart_and_metrics<P, T, F>(
    ids: &[NodeId],
    build: F,
    config: NetConfig,
    tracer_for: impl FnMut(NodeId) -> T,
    metrics_for: impl FnMut(NodeId) -> Option<SharedRuntimeMetrics>,
    spec: &KillSpec,
) -> Result<BTreeMap<NodeId, NetReport<P::Output, T>>, NetError>
where
    P: Process + Send,
    P::Msg: Wire,
    P::Output: Send,
    T: Tracer + Send + 'static,
    F: FnMut(NodeId) -> P,
{
    run_restart_cluster(ids, build, config, tracer_for, metrics_for, spec, None)
        .map(|(reports, _)| reports)
}

/// [`run_local_cluster_with_restart_and_metrics`] behind a WAN
/// [`FaultProxy`], as in [`run_local_cluster_with_proxy`]: the kill, the
/// downtime and the journal rejoin all happen *through* the shaping
/// relays, and the proxy's `net_link_*` trace events are returned
/// alongside the reports. This is the T12-through-proxy configuration —
/// with a zero-impairment plan it must behave exactly like the direct
/// restart drill.
///
/// # Errors
///
/// As [`run_local_cluster_with_restart`].
///
/// # Panics
///
/// Panics if `spec.victim` is not among `ids` or on duplicate ids; a
/// panicking member thread surfaces as [`NetError::MemberPanicked`].
#[allow(clippy::too_many_arguments)]
pub fn run_local_cluster_with_restart_through_proxy<P, T, F>(
    ids: &[NodeId],
    build: F,
    config: NetConfig,
    tracer_for: impl FnMut(NodeId) -> T,
    metrics_for: impl FnMut(NodeId) -> Option<SharedRuntimeMetrics>,
    spec: &KillSpec,
    plan: &LinkPlan,
    link_metrics: Option<SharedRuntimeMetrics>,
) -> Result<ProxiedRun<P::Output, T>, NetError>
where
    P: Process + Send,
    P::Msg: Wire,
    P::Output: Send,
    T: Tracer + Send + 'static,
    F: FnMut(NodeId) -> P,
{
    run_restart_cluster(
        ids,
        build,
        config,
        tracer_for,
        metrics_for,
        spec,
        Some((plan, link_metrics)),
    )
}

/// The shared restart-runner body; see
/// [`run_local_cluster_with_restart`] for the drill it scripts.
#[allow(clippy::too_many_arguments)]
fn run_restart_cluster<P, T, F>(
    ids: &[NodeId],
    mut build: F,
    config: NetConfig,
    mut tracer_for: impl FnMut(NodeId) -> T,
    mut metrics_for: impl FnMut(NodeId) -> Option<SharedRuntimeMetrics>,
    spec: &KillSpec,
    proxy: Option<(&LinkPlan, Option<SharedRuntimeMetrics>)>,
) -> Result<ProxiedRun<P::Output, T>, NetError>
where
    P: Process + Send,
    P::Msg: Wire,
    P::Output: Send,
    T: Tracer + Send + 'static,
    F: FnMut(NodeId) -> P,
{
    assert!(
        ids.contains(&spec.victim),
        "kill victim {} is not a cluster member",
        spec.victim
    );
    std::fs::create_dir_all(&spec.journal_dir)?;

    // Bind every listener first (same race-free startup as the plain
    // runner), then build processes, journals and the shared roster.
    let mut members = Vec::new();
    let mut roster = BTreeMap::new();
    for &id in ids {
        let process = build(id);
        assert_eq!(process.id(), id, "build({id}) returned a different id");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        assert!(
            roster.insert(id, addr).is_none(),
            "duplicate cluster member id {id}"
        );
        let journal = RoundJournal::create(journal_path(&spec.journal_dir, id), id.raw())?;
        members.push((id, process, listener, journal));
    }
    // The victim's second incarnation, built up front so the victim thread
    // owns everything it needs.
    let reborn = build(spec.victim);

    // With a proxy, every dial — including the rejoiner's — goes through
    // the fronts. The victim's rebind reuses its original inner address
    // only for identity; nobody dials a rejoiner (it dials the peers), so
    // the fronts' fixed relay targets stay correct across the restart.
    let fault_proxy = match proxy {
        Some((plan, link_metrics)) => Some(FaultProxy::spawn(&roster, plan.clone(), link_metrics)?),
        None => None,
    };
    let dial_roster = fault_proxy
        .as_ref()
        .map_or(&roster, FaultProxy::roster)
        .clone();

    let abort = Arc::new(AtomicBool::new(false));
    let mut reborn = Some((reborn, tracer_for(spec.victim)));
    let handles: Vec<_> = members
        .into_iter()
        .map(|(id, process, listener, journal)| {
            let runtime = metrics_for(id);
            let mut node = NetNode::new(process, config.clone())
                .with_tracer(tracer_for(id))
                .with_journal(journal)
                .with_abort_flag(Arc::clone(&abort));
            if let Some(rt) = runtime.clone() {
                node = node.with_runtime_metrics(rt);
            }
            let roster = dial_roster.clone();
            let abort = Arc::clone(&abort);
            let handle = if id == spec.victim {
                node = node.kill_at_round(spec.kill_at);
                let (fresh, tracer) = reborn.take().expect("one victim");
                let config = config.clone();
                let spec = spec.clone();
                let abort_flag = Arc::clone(&abort);
                let body = move || match node.run(listener, &roster) {
                    Err(NetError::Killed(_)) => {
                        thread::sleep(spec.restart_delay);
                        let path = journal_path(&spec.journal_dir, id);
                        if spec.tear_journal {
                            tear_tail(&path)?;
                        }
                        let (journal, recovery) = RoundJournal::resume(&path)?;
                        let mut node = NetNode::new(fresh, config)
                            .with_tracer(tracer)
                            .with_journal(journal)
                            .with_abort_flag(abort_flag);
                        if let Some(rt) = runtime {
                            // Same registry as the first incarnation, so
                            // the rejoin's reconnect/backfill cost lands in
                            // the counters a scrape already watches.
                            node = node.with_runtime_metrics(rt);
                        }
                        node.resume(&recovery, &roster)
                    }
                    // Decided before the kill round: nothing to recover.
                    other => other,
                };
                thread::spawn(move || match catch_unwind(AssertUnwindSafe(body)) {
                    Ok(result) => result,
                    Err(_) => {
                        abort.store(true, Ordering::SeqCst);
                        Err(NetError::MemberPanicked { id })
                    }
                })
            } else {
                thread::spawn(move || {
                    match catch_unwind(AssertUnwindSafe(move || node.run(listener, &roster))) {
                        Ok(result) => result,
                        Err(_) => {
                            abort.store(true, Ordering::SeqCst);
                            Err(NetError::MemberPanicked { id })
                        }
                    }
                })
            };
            (id, handle)
        })
        .collect();

    let result = collect_reports(handles);
    let events = fault_proxy.map_or_else(Vec::new, |p| {
        let events = p.take_events();
        p.shutdown();
        events
    });
    result.map(|reports| (reports, events))
}

/// What a mixed honest/hostile cluster run returned: the honest members'
/// reports (with their per-node eviction ledgers) and each Byzantine
/// member's script summary.
#[derive(Debug)]
pub struct ByzantineRun<O, T> {
    /// The honest members' reports, keyed by id.
    pub honest: BTreeMap<NodeId, NetReport<O, T>>,
    /// Each hostile member's observations, keyed by id. A Byzantine thread
    /// that errors or panics contributes a default (all-zero) report — the
    /// attacker's health is never allowed to fail the run.
    pub byzantine: BTreeMap<NodeId, ByzReport>,
}

/// Runs an adversarial localhost cluster: the honest `processes` as in
/// [`run_local_cluster`], plus one scripted [`ByzantineNode`] per id in
/// `byzantine_ids`, all executing the same seeded [`AttackKind`] (so
/// multiple conspirators compute identical equivocation splits, exactly
/// like the simulator's adversary acting for every faulty node).
///
/// The full roster — honest and hostile — is bound before any thread
/// spawns, so the mesh forms exactly as in the benign runners. Honest
/// failures are reported as usual; hostile threads are best-effort (an
/// attacker crashing or erroring is equivalent to it going silent, which
/// the honest side already tolerates).
///
/// # Errors
///
/// As [`run_local_cluster`], for the honest members only.
///
/// # Panics
///
/// Panics if ids collide (among processes, among `byzantine_ids`, or
/// across the two sets).
pub fn run_local_cluster_with_byzantine<P, T>(
    processes: impl IntoIterator<Item = P>,
    byzantine_ids: &[NodeId],
    kind: AttackKind,
    seed: u64,
    config: NetConfig,
    mut tracer_for: impl FnMut(NodeId) -> T,
    mut metrics_for: impl FnMut(NodeId) -> Option<SharedRuntimeMetrics>,
) -> Result<ByzantineRun<P::Output, T>, NetError>
where
    P: Process + Send,
    P::Msg: Wire,
    P::Output: Send,
    T: Tracer + Send + 'static,
{
    // Bind every listener — honest and hostile — before any thread spawns.
    let mut members = Vec::new();
    let mut roster = BTreeMap::new();
    for process in processes {
        let id = process.id();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        assert!(
            roster.insert(id, addr).is_none(),
            "duplicate cluster member id {id}"
        );
        members.push((id, process, listener));
    }
    let mut hostiles = Vec::new();
    for &id in byzantine_ids {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        assert!(
            roster.insert(id, addr).is_none(),
            "duplicate cluster member id {id}"
        );
        let plan = AttackPlan::new(seed, kind.clone(), byzantine_ids.iter().copied());
        hostiles.push((id, ByzantineNode::new(id, plan, config.clone()), listener));
    }

    let abort = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = members
        .into_iter()
        .map(|(id, process, listener)| {
            let mut node = NetNode::new(process, config.clone())
                .with_tracer(tracer_for(id))
                .with_abort_flag(Arc::clone(&abort));
            if let Some(runtime) = metrics_for(id) {
                node = node.with_runtime_metrics(runtime);
            }
            let roster = roster.clone();
            let abort = Arc::clone(&abort);
            let handle = thread::spawn(move || {
                match catch_unwind(AssertUnwindSafe(move || node.run(listener, &roster))) {
                    Ok(result) => result,
                    Err(_) => {
                        abort.store(true, Ordering::SeqCst);
                        Err(NetError::MemberPanicked { id })
                    }
                }
            });
            (id, handle)
        })
        .collect();
    let byz_handles: Vec<_> = hostiles
        .into_iter()
        .map(|(id, node, listener)| {
            let roster = roster.clone();
            let handle = thread::spawn(move || {
                catch_unwind(AssertUnwindSafe(move || node.run(listener, &roster)))
                    .unwrap_or_else(|_| Ok(ByzReport::default()))
                    .unwrap_or_default()
            });
            (id, handle)
        })
        .collect();

    let honest = collect_reports(handles);
    let byzantine = byz_handles
        .into_iter()
        .map(|(id, handle)| (id, handle.join().unwrap_or_default()))
        .collect();
    honest.map(|honest| ByzantineRun { honest, byzantine })
}

/// The decisions of a cluster run: each member's output, keyed by id, for
/// members that decided.
pub fn decisions<O: Clone, T>(reports: &BTreeMap<NodeId, NetReport<O, T>>) -> BTreeMap<NodeId, O> {
    reports
        .iter()
        .filter_map(|(&id, report)| report.output.clone().map(|o| (id, o)))
        .collect()
}
