//! WAN fault-proxy behavior: zero impairment is invisible (proxy ≡ direct
//! TCP, checked against the engine over random seeds), loss is per
//! *direction*, scheduled partitions sever and heal on round boundaries,
//! a lossy-profile cluster still reaches agreement, and a panicking
//! member surfaces as a typed error that promptly aborts the survivors.

use std::collections::BTreeMap;
use std::net::TcpListener;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use uba_core::consensus::EarlyConsensus;
use uba_net::{
    decisions, read_frame, run_local_cluster, run_local_cluster_with_proxy, write_frame,
    FaultProxy, Frame, LinkPlan, LinkSpec, NetConfig, NetError, NetNode, RetryPolicy, WanProfile,
    Wire,
};
use uba_sim::{sparse_ids, Context, NodeId, Process, SyncEngine};
use uba_trace::{metric_name, NoopTracer, RingTracer, SharedRuntimeMetrics, TraceEvent};

/// Broadcasts its round number for `rounds` rounds, then outputs how many
/// messages it received (own broadcasts self-deliver).
struct Counter {
    id: NodeId,
    rounds: u64,
    received: u64,
    out: Option<u64>,
}

impl Counter {
    fn new(id: NodeId, rounds: u64) -> Self {
        Counter {
            id,
            rounds,
            received: 0,
            out: None,
        }
    }
}

impl Process for Counter {
    type Msg = u64;
    type Output = u64;

    fn id(&self) -> NodeId {
        self.id
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>) {
        self.received += ctx.inbox().len() as u64;
        if ctx.round() <= self.rounds {
            ctx.broadcast(ctx.round());
        } else {
            self.out = Some(self.received);
        }
    }

    fn output(&self) -> Option<u64> {
        self.out
    }
}

/// Generous timeouts: these tests assert decisions, not latency.
fn test_config() -> NetConfig {
    NetConfig {
        round_timeout: Duration::from_secs(10),
        setup_timeout: Duration::from_secs(30),
        max_rounds: 200,
        ..NetConfig::default()
    }
}

/// Short timeouts for the scripted fault scenarios.
fn quick_config(give_up_after: u64) -> NetConfig {
    NetConfig {
        round_timeout: Duration::from_millis(200),
        retry: RetryPolicy {
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            budget: Duration::from_secs(5),
            jitter_seed: 0,
        },
        setup_timeout: Duration::from_secs(5),
        max_rounds: 50,
        give_up_after,
        ..NetConfig::default()
    }
}

fn consensus_cluster(seed: u64, n: usize) -> Vec<EarlyConsensus<u64>> {
    let ids = sparse_ids(n, seed);
    ids.iter()
        .enumerate()
        .map(|(i, &id)| EarlyConsensus::new(id, (seed >> (i % 64)) & 1))
        .collect()
}

/// Runs `factory()`'s processes in the engine and over TCP *through a
/// zero-impairment proxy*; returns `(sim_outputs, net_outputs)`.
fn run_proxied<P, F>(
    seed: u64,
    factory: F,
) -> (BTreeMap<NodeId, P::Output>, BTreeMap<NodeId, P::Output>)
where
    P: Process + Send,
    P::Msg: Wire,
    P::Output: Send + Clone,
    F: Fn() -> Vec<P>,
{
    let mut engine = SyncEngine::builder().correct_many(factory()).build();
    let sim = engine
        .run_to_completion(200)
        .expect("simulator twin must complete");
    let plan = LinkPlan::new(seed);
    assert!(plan.is_zero_impairment());
    let (reports, events) = run_local_cluster_with_proxy(
        factory(),
        test_config(),
        |_| NoopTracer,
        |_| None,
        &plan,
        None,
    )
    .expect("proxied run must complete");
    assert!(
        events.is_empty(),
        "a zero-impairment proxy records nothing: {events:?}"
    );
    (sim.outputs, decisions(&reports))
}

#[test]
fn zero_impairment_proxy_matches_the_engine() {
    let (sim, net) = run_proxied(42, || consensus_cluster(42, 4));
    assert_eq!(sim, net);
    assert_eq!(net.len(), 4, "every member decided through the proxy");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Proxy ≡ direct TCP for random seeds: the relay of unimpaired
    /// frames is byte-identical, so the decisions must equal the
    /// engine's — the same property `tests/equivalence.rs` holds for the
    /// direct transport.
    #[test]
    fn zero_impairment_equivalence_over_random_seeds(seed in 0u64..1_000_000) {
        let (sim, net) = run_proxied(seed, || consensus_cluster(seed, 4));
        prop_assert_eq!(&sim, &net, "seed {} diverged through the proxy", seed);
        prop_assert!(net.len() == 4, "someone failed to decide for seed {}", seed);
    }
}

/// Dials `addr` as node `me` and completes the handshake.
fn script_dial(addr: std::net::SocketAddr, me: NodeId) -> std::net::TcpStream {
    let mut stream = std::net::TcpStream::connect(addr).expect("scripted peer dial");
    stream.set_nodelay(true).unwrap();
    write_frame(&mut stream, &Frame::Hello { node: me }).unwrap();
    match read_frame(&mut stream).unwrap() {
        Some(Frame::Hello { .. }) => stream,
        other => panic!("expected Hello back, got {other:?}"),
    }
}

/// Spawns a [`NetNode`] (id 1) behind a [`FaultProxy`] applying `plan`,
/// with the scripted peer (id 0) expected to dial the returned front
/// address. Returns `(front_addr, proxy, node_handle)`.
type NodeResult = Result<uba_net::NetReport<u64, RingTracer>, NetError>;

fn spawn_proxied_node(
    rounds: u64,
    config: NetConfig,
    plan: LinkPlan,
    metrics: Option<SharedRuntimeMetrics>,
) -> (
    std::net::SocketAddr,
    FaultProxy,
    std::thread::JoinHandle<NodeResult>,
) {
    let me = NodeId::new(1);
    let peer = NodeId::new(0);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let proxy = FaultProxy::spawn(&[(me, addr)].into(), plan, metrics).expect("proxy spawns");
    let front = proxy.roster()[&me];
    // The scripted peer has the smaller id, so the node accepts; its
    // roster address is never dialed and can be a placeholder.
    let roster: BTreeMap<NodeId, std::net::SocketAddr> =
        [(me, addr), (peer, "127.0.0.1:1".parse().unwrap())].into();
    let handle = std::thread::spawn(move || {
        NetNode::new(Counter::new(me, rounds), config)
            .with_tracer(RingTracer::new(4096))
            .run(listener, &roster)
    });
    (front, proxy, handle)
}

#[test]
fn loss_is_asymmetric_per_direction() {
    let me = NodeId::new(1);
    let peer = NodeId::new(0);
    // 100% Data loss on peer -> node only; the reverse direction and all
    // control frames are untouched.
    let plan = LinkPlan::new(9).with_link(peer, me, LinkSpec::zero().with_loss_ppm(1_000_000));
    let registry = SharedRuntimeMetrics::new();
    let (front, proxy, handle) =
        spawn_proxied_node(1, quick_config(10), plan, Some(registry.clone()));

    let mut stream = script_dial(front, peer);
    write_frame(
        &mut stream,
        &Frame::Data {
            round: 1,
            payload: 77u64.to_le_bytes().to_vec(),
        },
    )
    .unwrap();
    write_frame(
        &mut stream,
        &Frame::Done {
            round: 1,
            decided: false,
        },
    )
    .unwrap();
    write_frame(
        &mut stream,
        &Frame::Done {
            round: 2,
            decided: true,
        },
    )
    .unwrap();

    // The node's own direction is clean: its round-1 broadcast reaches the
    // scripted peer through the proxy.
    let mut got_data = false;
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        if let Frame::Data { round: 1, payload } = frame {
            assert_eq!(payload, 1u64.to_le_bytes().to_vec());
            got_data = true;
            break;
        }
    }
    assert!(got_data, "node -> peer direction must be unimpaired");

    let report = handle.join().unwrap().expect("run completes");
    // Only the node's own broadcast: the peer's payload was dropped, but
    // its Done markers passed, so no barrier ever timed out.
    assert_eq!(report.output, Some(1));
    assert_eq!(report.timeouts, 0, "control frames are never lossy");

    let events = proxy.take_events();
    proxy.shutdown();
    assert!(
        events.iter().any(|e| e.kind() == "net_link_drop"),
        "the drop is traced: {events:?}"
    );
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counter(&metric_name(
            "net_link_frames_dropped_total",
            &[("link", "0->1")]
        )),
        1,
        "exactly the one Data frame dropped, on the lossy direction"
    );
    assert_eq!(
        snapshot.counter(&metric_name(
            "net_link_frames_dropped_total",
            &[("link", "1->0")]
        )),
        0,
        "the reverse direction dropped nothing"
    );
}

#[test]
fn partition_severs_mid_run_then_heals() {
    let me = NodeId::new(1);
    let peer = NodeId::new(0);
    // Round 2 is cut off (half-open window 2..3); rounds 1 and 3 flow.
    let plan = LinkPlan::new(3).with_partition(2..3, [me]);
    let (front, proxy, handle) = spawn_proxied_node(3, quick_config(10), plan, None);

    let mut stream = script_dial(front, peer);
    for round in 1..=3u64 {
        write_frame(
            &mut stream,
            &Frame::Data {
                round,
                payload: (10 * round).to_le_bytes().to_vec(),
            },
        )
        .unwrap();
        write_frame(
            &mut stream,
            &Frame::Done {
                round,
                decided: false,
            },
        )
        .unwrap();
    }
    write_frame(
        &mut stream,
        &Frame::Done {
            round: 4,
            decided: true,
        },
    )
    .unwrap();

    let report = handle.join().unwrap().expect("run completes");
    // Three own broadcasts + the peer's round-1 and round-3 payloads; the
    // round-2 traffic died at the cut and was charged as an omission.
    assert_eq!(report.output, Some(5));
    assert!(report.timeouts >= 1, "the severed round missed its barrier");

    let events = proxy.take_events();
    proxy.shutdown();
    let kinds: Vec<&str> = events.iter().map(TraceEvent::kind).collect();
    assert!(
        kinds.contains(&"net_link_partition"),
        "the cut is traced: {kinds:?}"
    );
    assert!(
        kinds.contains(&"net_link_heal"),
        "the heal is traced: {kinds:?}"
    );
}

#[test]
fn lossy_profile_cluster_still_agrees() {
    let seed = 42;
    let ids = sparse_ids(4, seed);
    let plan = WanProfile::Lossy.plan(seed, &ids);
    let registry = SharedRuntimeMetrics::new();
    let (reports, events) = run_local_cluster_with_proxy(
        consensus_cluster(seed, 4),
        test_config(),
        |_| NoopTracer,
        |_| None,
        &plan,
        Some(registry.clone()),
    )
    .expect("lossy run must still decide");

    let net = decisions(&reports);
    assert_eq!(net.len(), 4, "termination under 2% loss");
    let mut values: Vec<u64> = net.values().copied().collect();
    values.dedup();
    assert_eq!(values.len(), 1, "agreement under 2% loss");

    // The proxy actually shaped traffic, and its trace matches its
    // counters: one net_link_drop event per dropped frame.
    let snapshot = registry.snapshot();
    let body = snapshot.render_prometheus();
    let forwarded = uba_net::family_sum(&body, "net_link_frames_forwarded_total");
    let dropped = uba_net::family_sum(&body, "net_link_frames_dropped_total");
    assert!(forwarded > 0, "frames transited the proxy");
    let drop_events = events
        .iter()
        .filter(|e| e.kind() == "net_link_drop")
        .count() as u64;
    assert_eq!(dropped, drop_events, "counters and trace agree on drops");
}

/// Broadcasts until `boom_at`, then panics (scripted harness bug).
struct Grenade {
    id: NodeId,
    boom_at: Option<u64>,
}

impl Process for Grenade {
    type Msg = u64;
    type Output = u64;

    fn id(&self) -> NodeId {
        self.id
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>) {
        if self.boom_at == Some(ctx.round()) {
            panic!("scripted member panic");
        }
        ctx.broadcast(ctx.round());
    }

    fn output(&self) -> Option<u64> {
        None
    }
}

#[test]
fn panicking_member_is_a_typed_error_and_aborts_the_survivors_promptly() {
    let ids = sparse_ids(4, 7);
    let victim = ids[2];
    let members = ids.iter().map(|&id| Grenade {
        id,
        boom_at: (id == victim).then_some(2),
    });
    // A 10s barrier: without the abort flag the survivors would sit out
    // (multiple) full timeouts after the victim vanishes — the elapsed
    // bound below is what proves the fast teardown.
    let start = Instant::now();
    let err =
        run_local_cluster(members, test_config(), |_| NoopTracer).expect_err("a member panicked");
    match err {
        NetError::MemberPanicked { id } => assert_eq!(id, victim, "the victim is named"),
        other => panic!("expected MemberPanicked, got {other}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(8),
        "survivors must abort promptly, took {:?}",
        start.elapsed()
    );
}
