//! End-to-end `logd` service tests: a real 3-node TCP cluster under
//! client load, checked for the service's core promise — **every acked
//! submission appears exactly once in exactly one shard's finalized
//! prefix, and all nodes agree on every shard's prefix** (DESIGN.md §12).
//!
//! Plus the scripted client conversations: a submit while an ordering
//! round is in flight, duplicate-submit dedup re-acking the original
//! slot, and a read of a not-yet-finalized prefix.

use std::collections::BTreeMap;
use std::time::Duration;

use uba_net::{shard_of, spawn_log_cluster, LogClient, LogCluster, NetConfig, Record};
use uba_sim::sparse_ids;
use uba_trace::NoopTracer;

/// Service config for tests: generous timeouts (decisions, not latency),
/// and a round pace wide enough that client submissions reliably land
/// inside the ingest window on a loaded CI machine.
fn service_config() -> NetConfig {
    NetConfig {
        round_timeout: Duration::from_secs(10),
        setup_timeout: Duration::from_secs(30),
        max_rounds: 500,
        round_pace: Duration::from_millis(20),
        ..NetConfig::default()
    }
}

fn spawn(seed: u64, nodes: usize, shards: u32, ingest_until: u64) -> LogCluster<NoopTracer> {
    let ids = sparse_ids(nodes, seed);
    spawn_log_cluster(
        &ids,
        shards,
        ingest_until,
        service_config(),
        |_| NoopTracer,
        |_| None,
    )
    .expect("cluster spawns")
}

/// Submits `count` records round-robin across every node's client
/// listener; returns the acked `(shard, key, payload, ingress node)`
/// slots. Stops early (without failing) if ingest closes mid-way — the
/// invariant under test is about *acked* submissions only.
fn submit_load(
    cluster: &LogCluster<NoopTracer>,
    count: usize,
    keys: usize,
) -> Vec<(u32, String, Vec<u8>)> {
    let addrs: Vec<_> = cluster.client_addrs().values().copied().collect();
    let mut clients: Vec<LogClient> = addrs
        .iter()
        .map(|addr| LogClient::connect(addr).expect("client connects"))
        .collect();
    let mut acked = Vec::new();
    for i in 0..count {
        let key = format!("key-{}", i % keys);
        let payload = format!("payload-{i}").into_bytes();
        let slot = i % clients.len();
        let client = &mut clients[slot];
        match client.submit(&key, &payload).expect("submit I/O") {
            Some((shard, _seq)) => acked.push((shard, key, payload)),
            None => break,
        }
    }
    acked
}

/// Reads every shard's sealed prefix from every node and asserts all
/// nodes serve identical prefixes; returns the agreed prefixes.
fn sealed_prefixes(cluster: &LogCluster<NoopTracer>, shards: u32) -> Vec<Vec<Record>> {
    let mut agreed: Vec<Option<Vec<Record>>> = vec![None; shards as usize];
    for (id, addr) in cluster.client_addrs() {
        let mut client = LogClient::connect(addr).expect("reader connects");
        for shard in 0..shards {
            let prefix = client
                .read_sealed_prefix(shard, Duration::from_secs(60))
                .expect("prefix seals");
            match &agreed[shard as usize] {
                None => agreed[shard as usize] = Some(prefix),
                Some(first) => {
                    assert_eq!(
                        first, &prefix,
                        "node {id} disagrees on shard {shard}'s finalized prefix"
                    );
                }
            }
        }
    }
    agreed.into_iter().map(|p| p.expect("read")).collect()
}

/// Every acked submission is in exactly one shard's prefix exactly once,
/// in the shard `shard_of` promised; nothing unacked sneaks in.
fn assert_exactly_once(acked: &[(u32, String, Vec<u8>)], prefixes: &[Vec<Record>], shards: u32) {
    let mut counts: BTreeMap<(String, Vec<u8>), usize> = BTreeMap::new();
    for (shard, prefix) in prefixes.iter().enumerate() {
        for record in prefix {
            assert_eq!(
                shard_of(&record.key, shards),
                shard as u32,
                "record {:?} landed in the wrong shard",
                record.key
            );
            *counts
                .entry((record.key.clone(), record.payload.clone()))
                .or_default() += 1;
        }
    }
    for (shard, key, payload) in acked {
        let n = counts.remove(&(key.clone(), payload.clone())).unwrap_or(0);
        assert_eq!(
            n, 1,
            "acked submission {key:?} (shard {shard}) appears {n} times in the finalized log"
        );
    }
    assert!(
        counts.is_empty(),
        "unacked records in the finalized log: {:?}",
        counts.keys().take(5).collect::<Vec<_>>()
    );
}

fn run_end_to_end(seed: u64, shards: u32) {
    let mut cluster = spawn(seed, 3, shards, 30);
    let acked = submit_load(&cluster, 60, 24);
    assert!(
        !acked.is_empty(),
        "the ingest window closed before any submission was acked"
    );
    let reports = cluster.join_ordering().expect("ordering completes");
    assert_eq!(reports.len(), 3, "every member reports");

    // The members' own outputs agree shard by shard.
    let outputs: Vec<_> = reports.values().map(|r| r.output.clone()).collect();
    for output in &outputs {
        assert_eq!(output, &outputs[0], "member outputs diverge");
    }

    // What clients read over the wire matches, node against node...
    let prefixes = sealed_prefixes(&cluster, shards);
    // ...and matches the members' outputs.
    assert_eq!(
        prefixes,
        outputs[0].clone().expect("members terminated"),
        "served prefixes diverge from the ordering output"
    );
    assert_exactly_once(&acked, &prefixes, shards);
    cluster.shutdown();
}

#[test]
fn three_nodes_one_shard_exactly_once() {
    run_end_to_end(7, 1);
}

#[test]
fn three_nodes_four_shards_exactly_once() {
    run_end_to_end(11, 4);
}

#[test]
fn scripted_client_conversation() {
    // A long ingest window so the scripted conversation happens while
    // ordering rounds are demonstrably in flight.
    let mut cluster = spawn(5, 3, 2, 40);
    let addr = *cluster.client_addrs().values().next().expect("a node");
    let mut client = LogClient::connect(addr).expect("client connects");

    // Read of a not-yet-finalized prefix: answered immediately (no block),
    // unsealed, and without the submission we have not even made yet.
    let page = client.read_prefix(0, 0).expect("read answers");
    assert!(
        !page.sealed,
        "prefix cannot be sealed inside the ingest window"
    );

    // Submit during an in-flight round: acked with the key's shard.
    let (shard, seq) = client
        .submit("alpha", b"one")
        .expect("submit I/O")
        .expect("ingest open");
    assert_eq!(shard, shard_of("alpha", 2));

    // Duplicate submit: re-acked with the *same* slot, not a new one.
    let dup = client
        .submit("alpha", b"one")
        .expect("submit I/O")
        .expect("duplicates are re-acked");
    assert_eq!(dup, (shard, seq), "duplicate got a fresh slot");

    // Same key, new payload: a fresh slot on the same shard.
    let (shard2, seq2) = client
        .submit("alpha", b"two")
        .expect("submit I/O")
        .expect("ingest open");
    assert_eq!(shard2, shard);
    assert_ne!(seq2, seq);

    // The unfinalized read again, now racing the ordering rounds: whatever
    // it serves must be a prefix of the final log.
    let early = client.read_prefix(shard, 0).expect("read answers");

    let _ = cluster.join_ordering().expect("ordering completes");
    let sealed = client
        .read_sealed_prefix(shard, Duration::from_secs(60))
        .expect("prefix seals");
    assert!(
        early.records.len() <= sealed.len() && early.records[..] == sealed[..early.records.len()],
        "an early read served something the final log rewrote"
    );
    // Exactly one record per acked slot, duplicate folded in.
    let alphas: Vec<&Record> = sealed.iter().filter(|r| r.key == "alpha").collect();
    assert_eq!(alphas.len(), 2, "two distinct payloads, duplicate deduped");
    cluster.shutdown();
}
