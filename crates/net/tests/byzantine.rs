//! Hardening tests driving a real [`NetNode`] against scripted hostile
//! peers, plus end-to-end mixed honest/hostile clusters via
//! [`run_local_cluster_with_byzantine`].
//!
//! The attribution contract under test (DESIGN.md §13): *malice* (floods,
//! malformed frames, protocol abuse) is charged as strikes and ends in an
//! eviction — `net_misbehavior_total` counters, `net_byz_*` trace events,
//! a `fault/byzantine_evict` record, and an entry in `NetReport::evicted`;
//! *silence* stays an omission — timeouts and `peer_gone`, never an
//! eviction.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use uba_core::consensus::EarlyConsensus;
use uba_net::{
    read_frame, run_local_cluster_with_byzantine, write_frame, AttackKind, Frame, NetConfig,
    NetNode, RetryPolicy,
};
use uba_sim::{sparse_ids, Context, NodeId, Process};
use uba_trace::{metric_name, RingTracer, SharedRuntimeMetrics, TraceEvent};

/// A minimal networked process: broadcasts its round number for `rounds`
/// rounds, then outputs the total number of messages it received.
struct Counter {
    id: NodeId,
    rounds: u64,
    received: u64,
    out: Option<u64>,
}

impl Counter {
    fn new(id: NodeId, rounds: u64) -> Self {
        Counter {
            id,
            rounds,
            received: 0,
            out: None,
        }
    }
}

impl Process for Counter {
    type Msg = u64;
    type Output = u64;

    fn id(&self) -> NodeId {
        self.id
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>) {
        self.received += ctx.inbox().len() as u64;
        if ctx.round() <= self.rounds {
            ctx.broadcast(ctx.round());
        } else {
            self.out = Some(self.received);
        }
    }

    fn output(&self) -> Option<u64> {
        self.out
    }
}

/// Dials `addr` as node `me` and completes the handshake.
fn script_dial(addr: std::net::SocketAddr, me: NodeId) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("scripted peer dial");
    stream.set_nodelay(true).unwrap();
    write_frame(&mut stream, &Frame::Hello { node: me }).unwrap();
    match read_frame(&mut stream).unwrap() {
        Some(Frame::Hello { .. }) => stream,
        other => panic!("expected Hello back, got {other:?}"),
    }
}

/// Config with short timeouts and a tight ingress quota, so hostile
/// scenarios resolve quickly.
fn hardened_config(give_up_after: u64) -> NetConfig {
    NetConfig {
        round_timeout: Duration::from_millis(200),
        retry: RetryPolicy {
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            budget: Duration::from_secs(5),
            jitter_seed: 0,
        },
        setup_timeout: Duration::from_secs(5),
        max_rounds: 50,
        give_up_after,
        max_frames_per_round: 8,
        ..NetConfig::default()
    }
}

type NodeResult = Result<uba_net::NetReport<u64, RingTracer>, uba_net::NetError>;

/// Starts a [`NetNode`] with a tracer and a metrics registry in a thread;
/// the scripted peer (id 0, so it is the dialer) interacts over the
/// returned address.
fn spawn_node(
    rounds: u64,
    config: NetConfig,
    peer: NodeId,
) -> (
    std::net::SocketAddr,
    SharedRuntimeMetrics,
    std::thread::JoinHandle<NodeResult>,
) {
    let me = NodeId::new(1);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let metrics = SharedRuntimeMetrics::new();
    let rt = metrics.clone();
    let roster: BTreeMap<NodeId, std::net::SocketAddr> =
        [(me, addr), (peer, "127.0.0.1:1".parse().unwrap())].into();
    let handle = std::thread::spawn(move || {
        NetNode::new(Counter::new(me, rounds), config)
            .with_tracer(RingTracer::new(4096))
            .with_runtime_metrics(rt)
            .run(listener, &roster)
    });
    (addr, metrics, handle)
}

fn kinds(tracer: &RingTracer) -> Vec<&'static str> {
    tracer.events().map(TraceEvent::kind).collect()
}

/// The `fault` events' kinds, for the omission-vs-malice attribution
/// checks.
fn fault_kinds(tracer: &RingTracer) -> Vec<&'static str> {
    tracer
        .events()
        .filter_map(|e| match e {
            TraceEvent::Fault { kind, .. } => Some(*kind),
            _ => None,
        })
        .collect()
}

#[test]
fn flooding_peer_is_evicted_within_one_omission_timeout() {
    let peer = NodeId::new(0);
    let config = hardened_config(10);
    let timeout = config.round_timeout;
    let (addr, metrics, handle) = spawn_node(1, config, peer);
    let mut stream = script_dial(addr, peer);

    // Blast well past the 8-frame quota in round 1 and never send Done:
    // an unhardened node would sit out `give_up_after` (10) barriers, but
    // the strike policy must evict the flooder within the round.
    let start = Instant::now();
    for i in 0..32u64 {
        let frame = Frame::Data {
            round: 1,
            payload: i.to_le_bytes().to_vec(),
        };
        if write_frame(&mut stream, &frame).is_err() {
            break; // evicted mid-flood: the socket is already shut
        }
    }

    let report = handle.join().unwrap().expect("honest node finishes alone");
    let elapsed = start.elapsed();
    assert_eq!(report.evicted, vec![0], "the flooder was evicted");
    assert!(
        elapsed < timeout + Duration::from_secs(2),
        "eviction must not cost the give-up budget (took {elapsed:?})"
    );
    assert_eq!(
        report.timeouts, 0,
        "no barrier was ever charged to the evicted flooder"
    );

    let snapshot = metrics.snapshot();
    let floods = snapshot.counter(&metric_name(
        "net_misbehavior_total",
        &[("kind", "flood"), ("peer", "0")],
    ));
    assert!(floods >= 3, "one strike per frame over quota, got {floods}");
    assert_eq!(
        snapshot.counter(&metric_name("net_byz_evictions_total", &[("peer", "0")])),
        1
    );

    let kinds = kinds(&report.tracer);
    assert!(kinds.contains(&"net_byz_misbehavior"), "strikes traced");
    assert!(kinds.contains(&"net_byz_evict"), "eviction traced");
    assert!(
        fault_kinds(&report.tracer).contains(&"byzantine_evict"),
        "the verdict-table fault record distinguishes malice"
    );
}

#[test]
fn stalling_peer_is_charged_as_omission_never_as_malice() {
    // The attribution regression (satellite 4): a peer that handshakes and
    // then withholds every barrier marker is *silent*, which the model
    // already prices as omissions — it must exhaust `give_up_after`, be
    // declared gone, and never appear in the eviction ledger.
    let peer = NodeId::new(0);
    let (addr, metrics, handle) = spawn_node(2, hardened_config(2), peer);
    let _stream = script_dial(addr, peer);

    let report = handle.join().unwrap().expect("node finishes alone");
    assert!(report.evicted.is_empty(), "silence is not malice");
    assert!(report.timeouts >= 2, "each missed barrier is an omission");

    let kinds = kinds(&report.tracer);
    assert!(
        kinds.contains(&"net_timeout"),
        "omissions traced: {kinds:?}"
    );
    assert!(
        kinds.contains(&"net_peer_gone"),
        "give-up traced: {kinds:?}"
    );
    assert!(
        !kinds.contains(&"net_byz_evict") && !kinds.contains(&"net_byz_misbehavior"),
        "no misbehavior machinery fired: {kinds:?}"
    );
    assert!(!fault_kinds(&report.tracer).contains(&"byzantine_evict"));

    let snapshot = metrics.snapshot();
    assert_eq!(
        snapshot
            .counters()
            .filter(|(name, _)| name.starts_with("net_misbehavior_total")
                || name.starts_with("net_byz_evictions_total"))
            .count(),
        0,
        "no misbehavior counters for a merely silent peer"
    );
}

#[test]
fn backfill_spam_is_served_once_then_striked_to_eviction() {
    let peer = NodeId::new(0);
    let (addr, metrics, handle) = spawn_node(3, hardened_config(10), peer);
    let mut stream = script_dial(addr, peer);

    // Participate in round 1 so the node is live, then spam identical
    // SyncRequests: the first per round is the legitimate rejoin path and
    // is answered; every repeat within the round is a strike.
    write_frame(
        &mut stream,
        &Frame::Done {
            round: 1,
            decided: false,
        },
    )
    .unwrap();
    for _ in 0..4 {
        if write_frame(&mut stream, &Frame::SyncRequest { since: 1 }).is_err() {
            break;
        }
    }

    // The first request was answered with the responder's tips before the
    // strikes accumulated (the node's ordinary Data/Done traffic is
    // interleaved on the same stream — skip past it).
    let mut served = false;
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        if matches!(frame, Frame::SyncTips { .. }) {
            served = true;
            break;
        }
    }
    assert!(served, "the first request per round is the rejoin path");

    let report = handle.join().unwrap().expect("node finishes alone");
    assert_eq!(report.evicted, vec![0], "the spammer was evicted");
    let spam = metrics.snapshot().counter(&metric_name(
        "net_misbehavior_total",
        &[("kind", "sync_spam"), ("peer", "0")],
    ));
    assert!(spam >= 3, "each repeat request is a strike, got {spam}");
}

#[test]
fn corrupt_frame_burns_the_link_and_is_charged_as_malice() {
    let peer = NodeId::new(0);
    let (addr, metrics, handle) = spawn_node(1, hardened_config(2), peer);
    let mut stream = script_dial(addr, peer);

    // A valid length prefix followed by a body no codec accepts: the
    // reader reports Corrupt, the node charges `malformed_frame`, and the
    // connection dies. One strike is not an eviction — the subsequent
    // silence is then priced as ordinary omissions.
    stream
        .write_all(&[5, 0, 0, 0, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE])
        .unwrap();
    stream.flush().unwrap();

    let report = handle.join().unwrap().expect("node finishes alone");
    assert!(
        report.evicted.is_empty(),
        "one strike stays below the eviction threshold"
    );
    let malformed = metrics.snapshot().counter(&metric_name(
        "net_misbehavior_total",
        &[("kind", "malformed_frame"), ("peer", "0")],
    ));
    assert_eq!(malformed, 1, "the poison write was attributed");
    let kinds = kinds(&report.tracer);
    assert!(kinds.contains(&"net_byz_misbehavior"), "strike traced");
    assert!(kinds.contains(&"net_peer_gone"), "then ordinary give-up");
}

#[test]
fn oversize_length_prefix_is_charged_without_allocation() {
    let peer = NodeId::new(0);
    let (addr, metrics, handle) = spawn_node(1, hardened_config(2), peer);
    let mut stream = script_dial(addr, peer);

    // A 4 GiB length prefix. The codec must refuse it before allocating
    // (unit-tested in wire.rs); here we assert the refusal is *attributed*
    // as oversize misbehavior rather than treated as a clean close.
    stream.write_all(&0xFFFF_FFFFu32.to_le_bytes()).unwrap();
    stream.flush().unwrap();

    let report = handle.join().unwrap().expect("node finishes alone");
    let oversize = metrics.snapshot().counter(&metric_name(
        "net_misbehavior_total",
        &[("kind", "oversize_frame"), ("peer", "0")],
    ));
    assert_eq!(oversize, 1, "the oversize prefix was attributed");
    let traced = report.tracer.events().any(|e| match e {
        TraceEvent::Net { info, .. } => {
            e.kind() == "net_byz_misbehavior" && info.contains("oversize_frame")
        }
        _ => false,
    });
    assert!(traced, "the strike names the violated bound");
}

#[test]
fn stale_round_replay_is_striked_once_outside_the_window() {
    let peer = NodeId::new(0);
    let config = NetConfig {
        history_rounds: 2,
        ..hardened_config(10)
    };
    let (addr, metrics, handle) = spawn_node(6, config, peer);
    let mut stream = script_dial(addr, peer);

    // Follow the barriers honestly while replaying the round-1 frame every
    // round: inside the 2-round window the copies are dropped as benign
    // lateness, but from round 4 on each replay is a `stale_replay` strike
    // and three of them get the replayer evicted.
    'rounds: for round in 1..=7u64 {
        for _ in 0..if round >= 2 { 3 } else { 0 } {
            let stale = Frame::Data {
                round: 1,
                payload: 99u64.to_le_bytes().to_vec(),
            };
            if write_frame(&mut stream, &stale).is_err() {
                break 'rounds;
            }
        }
        let done = Frame::Done {
            round,
            decided: round >= 7,
        };
        if write_frame(&mut stream, &done).is_err() {
            break 'rounds;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let report = handle.join().unwrap().expect("node finishes");
    assert_eq!(report.evicted, vec![0], "the replayer was evicted");
    let stale = metrics.snapshot().counter(&metric_name(
        "net_misbehavior_total",
        &[("kind", "stale_replay"), ("peer", "0")],
    ));
    assert!(stale >= 3, "replays beyond the window strike, got {stale}");
}

/// Shared cell driver for the end-to-end mixed-cluster tests: n honest
/// consensus members, one scripted Byzantine member, assert honest
/// agreement and return the reports for attack-specific checks.
fn adversarial_cluster(
    kind: AttackKind,
    config: NetConfig,
) -> BTreeMap<NodeId, uba_net::NetReport<u64, RingTracer>> {
    let ids = sparse_ids(5, 41);
    let byz = ids[2];
    let honest: Vec<NodeId> = ids.iter().copied().filter(|&id| id != byz).collect();
    let members = honest
        .iter()
        .enumerate()
        .map(|(i, &id)| EarlyConsensus::new(id, (i % 2) as u64));
    let run = run_local_cluster_with_byzantine(
        members,
        &[byz],
        kind,
        41,
        config,
        |_| RingTracer::new(4096),
        |_| None,
    )
    .expect("honest members complete despite the hostile one");
    let outputs: Vec<Option<u64>> = run.honest.values().map(|r| r.output).collect();
    assert_eq!(outputs.len(), honest.len(), "every honest member reported");
    assert!(
        outputs.windows(2).all(|w| w[0] == w[1] && w[0].is_some()),
        "honest agreement violated: {outputs:?}"
    );
    run.honest
}

#[test]
fn equivocating_member_cannot_break_honest_agreement() {
    let reports = adversarial_cluster(
        AttackKind::Equivocate { a: 0, b: 1 },
        NetConfig {
            round_timeout: Duration::from_secs(2),
            setup_timeout: Duration::from_secs(10),
            max_rounds: 100,
            ..NetConfig::default()
        },
    );
    // Value equivocation is model-allowed lying: it must be absorbed by
    // n > 3f, not punished — no honest node evicts anyone.
    for report in reports.values() {
        assert!(report.evicted.is_empty(), "equivocation is tolerated");
    }
}

#[test]
fn flooding_member_is_evicted_and_honest_agreement_holds() {
    let reports = adversarial_cluster(
        AttackKind::Flood {
            frames_per_round: 64,
        },
        NetConfig {
            round_timeout: Duration::from_secs(2),
            setup_timeout: Duration::from_secs(10),
            max_rounds: 100,
            max_frames_per_round: 16,
            ..NetConfig::default()
        },
    );
    for report in reports.values() {
        assert_eq!(
            report.evicted.len(),
            1,
            "every honest member evicted the flooder"
        );
    }
}

#[test]
fn stalling_member_costs_omissions_but_never_an_eviction() {
    let reports = adversarial_cluster(
        AttackKind::Stall,
        NetConfig {
            round_timeout: Duration::from_millis(300),
            setup_timeout: Duration::from_secs(10),
            max_rounds: 100,
            give_up_after: 2,
            ..NetConfig::default()
        },
    );
    for report in reports.values() {
        assert!(report.evicted.is_empty(), "silence is not malice");
        assert!(report.timeouts >= 1, "the stall was priced as omissions");
    }
}
