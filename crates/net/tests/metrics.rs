//! End-to-end runtime observability: a live cluster's Prometheus endpoints
//! answer scrapes while rounds run, counters only ever grow, and the final
//! exposition carries every advertised series family.
//!
//! The scrape loop races the cluster on purpose — endpoints must serve
//! partial state mid-run without perturbing the round loop (the registry is
//! wall-clock-only and never touches the deterministic event stream, so a
//! scraped run still decides exactly what an unscraped one does).

use std::collections::BTreeMap;
use std::thread;
use std::time::Duration;

use uba_core::consensus::EarlyConsensus;
use uba_net::{
    decisions, family_sum, run_local_cluster_with_metrics, scrape_metrics, series_value,
    serve_metrics, NetConfig,
};
use uba_sim::{sparse_ids, NodeId};
use uba_trace::{NoopTracer, SharedRuntimeMetrics};

/// Generous timeouts: this test asserts observability, not latency.
fn test_config() -> NetConfig {
    NetConfig {
        round_timeout: Duration::from_secs(10),
        setup_timeout: Duration::from_secs(30),
        max_rounds: 200,
        ..NetConfig::default()
    }
}

#[test]
fn live_cluster_scrapes_are_monotonic_and_complete() {
    let ids = sparse_ids(3, 42);
    let registries: BTreeMap<NodeId, SharedRuntimeMetrics> = ids
        .iter()
        .map(|&id| (id, SharedRuntimeMetrics::new()))
        .collect();
    let servers: BTreeMap<NodeId, _> = registries
        .iter()
        .map(|(&id, registry)| {
            let server = serve_metrics("127.0.0.1:0", registry.clone()).expect("bind endpoint");
            (id, server)
        })
        .collect();
    let addrs: Vec<_> = servers.values().map(|s| s.addr()).collect();

    let cluster = {
        let ids = ids.clone();
        let registries = registries.clone();
        thread::spawn(move || {
            let members = ids
                .iter()
                .enumerate()
                .map(|(i, &id)| EarlyConsensus::new(id, (i % 2) as u64));
            run_local_cluster_with_metrics(
                members,
                test_config(),
                |_| NoopTracer,
                |id| registries.get(&id).cloned(),
            )
        })
    };

    // Scrape all endpoints while the cluster runs: every counter we watch
    // must be non-decreasing between consecutive scrapes of one node.
    let mut last_rounds = vec![0u64; addrs.len()];
    let mut last_frames = vec![0u64; addrs.len()];
    for _ in 0..20 {
        for (i, &addr) in addrs.iter().enumerate() {
            let body = scrape_metrics(addr).expect("endpoint answers mid-run");
            let rounds = series_value(&body, "net_rounds_total").unwrap_or(0);
            let frames = family_sum(&body, "net_frames_sent_total");
            assert!(
                rounds >= last_rounds[i],
                "net_rounds_total went backwards on node {i}: {} -> {rounds}",
                last_rounds[i]
            );
            assert!(
                frames >= last_frames[i],
                "net_frames_sent_total went backwards on node {i}: {} -> {frames}",
                last_frames[i]
            );
            last_rounds[i] = rounds;
            last_frames[i] = frames;
        }
        thread::sleep(Duration::from_millis(5));
    }

    let reports = cluster
        .join()
        .expect("cluster thread")
        .expect("cluster run completes");
    assert_eq!(decisions(&reports).len(), 3, "every member decided");

    // The final exposition from each node carries the full advertised
    // vocabulary: round counter, latency histogram, every phase series,
    // per-peer frame/byte counters, and the history-depth gauges.
    for (id, server) in servers {
        let body = scrape_metrics(server.addr()).expect("final scrape");
        let rounds = series_value(&body, "net_rounds_total").expect("rounds counter");
        assert!(rounds >= 1, "node {id} recorded no rounds");
        assert_eq!(
            series_value(&body, "net_round_micros_count"),
            Some(rounds),
            "one round-latency observation per round"
        );
        for phase in ["step", "send", "deliver", "barrier", "journal"] {
            let series = format!("net_round_phase_micros{{phase=\"{phase}\",le=\"+Inf\"}}");
            // The phase histogram renders with `le` spliced after `phase`.
            let bucket = format!("net_round_phase_micros_bucket{{phase=\"{phase}\",le=\"+Inf\"}}");
            assert!(
                series_value(&body, &bucket).is_some() || series_value(&body, &series).is_some(),
                "node {id} missing phase series for {phase:?}:\n{body}"
            );
        }
        assert!(
            family_sum(&body, "net_frames_sent_total") > 0,
            "node {id} sent no counted frames"
        );
        assert!(
            family_sum(&body, "net_bytes_sent_total") > family_sum(&body, "net_frames_sent_total"),
            "every frame is more than one byte"
        );
        assert!(
            family_sum(&body, "net_frames_received_total") > 0,
            "node {id} received no counted frames"
        );
        assert_eq!(
            series_value(&body, "net_history_rounds_limit"),
            Some(test_config().history_rounds as u64)
        );
        assert!(series_value(&body, "net_history_rounds_retained").is_some());
        server.shutdown();
    }
}

#[test]
fn uninstrumented_nodes_cost_nothing_and_instrumented_runs_still_decide() {
    // Mixed cluster: only one member carries a registry; the run must
    // still decide unanimously and the registry must fill in.
    let ids = sparse_ids(4, 7);
    let observed = ids[0];
    let registry = SharedRuntimeMetrics::new();
    let handle = registry.clone();
    let members = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| EarlyConsensus::new(id, (i % 2) as u64));
    let reports = run_local_cluster_with_metrics(
        members,
        test_config(),
        |_| NoopTracer,
        |id| (id == observed).then(|| handle.clone()),
    )
    .expect("cluster run completes");
    assert_eq!(decisions(&reports).len(), 4);

    let snapshot = registry.snapshot();
    assert!(snapshot.counter("net_rounds_total") >= 1);
    let body = snapshot.render_prometheus();
    assert!(body.contains("net_round_micros_bucket"));
}
