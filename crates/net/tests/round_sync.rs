//! Transport-behavior tests driving a real [`NetNode`] against *scripted*
//! raw-TCP peers: a peer that misses the barrier (timeout → omission), a
//! peer that duplicates frames (dropped per the model's per-round rule),
//! and a peer that drops its connection mid-run and redials (reconnect).

use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use uba_net::{read_frame, write_frame, Frame, NetConfig, NetNode, RetryPolicy};
use uba_sim::{Context, NodeId, Process};
use uba_trace::{RingTracer, TraceEvent};

/// A minimal networked process: broadcasts its round number for `rounds`
/// rounds, then outputs the total number of messages it received.
struct Counter {
    id: NodeId,
    rounds: u64,
    received: u64,
    out: Option<u64>,
}

impl Counter {
    fn new(id: NodeId, rounds: u64) -> Self {
        Counter {
            id,
            rounds,
            received: 0,
            out: None,
        }
    }
}

impl Process for Counter {
    type Msg = u64;
    type Output = u64;

    fn id(&self) -> NodeId {
        self.id
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>) {
        self.received += ctx.inbox().len() as u64;
        if ctx.round() <= self.rounds {
            ctx.broadcast(ctx.round());
        } else {
            self.out = Some(self.received);
        }
    }

    fn output(&self) -> Option<u64> {
        self.out
    }
}

/// Dials `addr` as node `me` and completes the handshake.
fn script_dial(addr: std::net::SocketAddr, me: NodeId) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("scripted peer dial");
    stream.set_nodelay(true).unwrap();
    write_frame(&mut stream, &Frame::Hello { node: me }).unwrap();
    match read_frame(&mut stream).unwrap() {
        Some(Frame::Hello { .. }) => stream,
        other => panic!("expected Hello back, got {other:?}"),
    }
}

/// Config with short timeouts so fault scenarios finish quickly.
fn quick_config(give_up_after: u64) -> NetConfig {
    NetConfig {
        round_timeout: Duration::from_millis(200),
        retry: RetryPolicy {
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            budget: Duration::from_secs(5),
            jitter_seed: 0,
        },
        setup_timeout: Duration::from_secs(5),
        max_rounds: 50,
        give_up_after,
        ..NetConfig::default()
    }
}

/// What [`spawn_node`]'s background thread resolves to.
type NodeResult = Result<uba_net::NetReport<u64, RingTracer>, uba_net::NetError>;

/// Starts a [`NetNode`] in a thread; the scripted peer (id 0, so it is the
/// dialer) interacts over the returned address.
fn spawn_node(
    rounds: u64,
    config: NetConfig,
    peer: NodeId,
) -> (std::net::SocketAddr, std::thread::JoinHandle<NodeResult>) {
    let me = NodeId::new(1);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // The scripted peer has the smaller id, so the node accepts; its roster
    // address is never dialed and can be a placeholder.
    let roster: BTreeMap<NodeId, std::net::SocketAddr> =
        [(me, addr), (peer, "127.0.0.1:1".parse().unwrap())].into();
    let handle = std::thread::spawn(move || {
        NetNode::new(Counter::new(me, rounds), config)
            .with_tracer(RingTracer::new(4096))
            .run(listener, &roster)
    });
    (addr, handle)
}

fn kinds(tracer: &RingTracer) -> Vec<&'static str> {
    tracer.events().map(TraceEvent::kind).collect()
}

#[test]
fn silent_peer_becomes_an_omission_then_gone() {
    let peer = NodeId::new(0);
    let (addr, handle) = spawn_node(2, quick_config(2), peer);
    // Handshake, then go silent forever: every barrier times out until the
    // give-up budget declares the peer gone, after which the node finishes
    // alone.
    let _stream = script_dial(addr, peer);
    let report = handle.join().unwrap().expect("node should finish alone");
    assert_eq!(report.output, Some(2), "only its own two broadcasts");
    assert!(report.timeouts >= 2, "peer charged once per missed barrier");
    let kinds = kinds(&report.tracer);
    assert!(kinds.contains(&"net_timeout"), "timeout traced: {kinds:?}");
    assert!(
        kinds.contains(&"net_peer_gone"),
        "give-up traced: {kinds:?}"
    );
}

/// Like [`Counter`], but burns wall-clock inside `on_round`, pushing the
/// node past its own barrier deadline before it even starts waiting.
struct SlowCounter {
    inner: Counter,
    busy: Duration,
}

impl Process for SlowCounter {
    type Msg = u64;
    type Output = u64;

    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>) {
        std::thread::sleep(self.busy);
        self.inner.on_round(ctx);
    }

    fn output(&self) -> Option<u64> {
        self.inner.output()
    }
}

#[test]
fn omission_trace_reports_actual_elapsed_time_not_the_configured_timeout() {
    // Regression: the omission trace used to stamp the *configured*
    // `round_timeout` as the waited duration. A step that overruns the
    // deadline (or any WAN-delayed barrier) then produced a postmortem
    // claiming a 200ms wait that actually lasted twice that.
    let me = NodeId::new(1);
    let peer = NodeId::new(0);
    let config = quick_config(1); // 200ms barrier, give up after 1 silence
    let busy = Duration::from_millis(450);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let roster: BTreeMap<NodeId, std::net::SocketAddr> =
        [(me, addr), (peer, "127.0.0.1:1".parse().unwrap())].into();
    let handle = std::thread::spawn(move || {
        let process = SlowCounter {
            inner: Counter::new(me, 1),
            busy,
        };
        NetNode::new(process, config)
            .with_tracer(RingTracer::new(4096))
            .run(listener, &roster)
    });
    // Handshake, then silence: round 1's barrier is already expired when
    // the slow step ends, so the omission is charged ~450ms after the
    // round started — more than twice the configured timeout.
    let _stream = script_dial(addr, peer);
    let report = handle.join().unwrap().expect("node finishes alone");
    let waited_ms: u128 = report
        .tracer
        .events()
        .find_map(|event| match event {
            TraceEvent::Net { info, .. } if event.kind() == "net_timeout" => {
                let ms = info.strip_prefix("silent at barrier after ")?;
                ms.strip_suffix("ms")?.parse().ok()
            }
            _ => None,
        })
        .expect("an omission was traced");
    assert!(
        waited_ms >= 400,
        "trace must report the ~450ms actually elapsed, got {waited_ms}ms"
    );
}

#[test]
fn duplicate_frames_on_the_wire_are_delivered_once() {
    let peer = NodeId::new(0);
    let (addr, handle) = spawn_node(1, quick_config(10), peer);
    let mut stream = script_dial(addr, peer);

    // Round 1: the same payload twice, then the barrier marker.
    let payload = 77u64.to_le_bytes().to_vec();
    for _ in 0..2 {
        write_frame(
            &mut stream,
            &Frame::Data {
                round: 1,
                payload: payload.clone(),
            },
        )
        .unwrap();
    }
    write_frame(
        &mut stream,
        &Frame::Done {
            round: 1,
            decided: false,
        },
    )
    .unwrap();
    // Round 2: nothing to send; the node decides here, and so do we.
    write_frame(
        &mut stream,
        &Frame::Done {
            round: 2,
            decided: true,
        },
    )
    .unwrap();

    let report = handle.join().unwrap().expect("run completes");
    // Own broadcast + ONE copy of the peer's duplicated payload.
    assert_eq!(report.output, Some(2));
    assert_eq!(report.timeouts, 0, "the scripted peer made every barrier");
    let kinds = kinds(&report.tracer);
    assert!(
        kinds.contains(&"duplicate_drop"),
        "duplicate traced: {kinds:?}"
    );
}

#[test]
fn mid_frame_disconnect_is_an_omission_then_reconnect_resumes() {
    let peer = NodeId::new(0);
    let (addr, handle) = spawn_node(2, quick_config(10), peer);

    // The first connection dies halfway through a Data frame: encode the
    // full frame, send only a prefix of it, then drop the socket. The
    // truncated frame must never be delivered — the reader sees a torn
    // stream and closes the link, and the missed barrier is charged as an
    // ordinary omission, never a panic.
    let mut first = script_dial(addr, peer);
    let mut encoded = Vec::new();
    write_frame(
        &mut encoded,
        &Frame::Data {
            round: 1,
            payload: 10u64.to_le_bytes().to_vec(),
        },
    )
    .unwrap();
    use std::io::Write;
    first.write_all(&encoded[..encoded.len() / 2]).unwrap();
    first.flush().unwrap();
    drop(first);

    // Let the round-1 barrier expire, then redial: the acceptor installs a
    // fresh higher-generation link and the peer participates normally in
    // round 2 (the node is waiting at that barrier until ~2 timeouts in).
    std::thread::sleep(Duration::from_millis(250));
    let mut second = script_dial(addr, peer);
    write_frame(
        &mut second,
        &Frame::Data {
            round: 2,
            payload: 20u64.to_le_bytes().to_vec(),
        },
    )
    .unwrap();
    write_frame(
        &mut second,
        &Frame::Done {
            round: 2,
            decided: false,
        },
    )
    .unwrap();
    write_frame(
        &mut second,
        &Frame::Done {
            round: 3,
            decided: true,
        },
    )
    .unwrap();

    let report = handle.join().unwrap().expect("run completes without panic");
    // Two own broadcasts + the reconnected peer's round-2 payload; the torn
    // round-1 payload is gone for good.
    assert_eq!(report.output, Some(3));
    assert!(report.timeouts >= 1, "torn round charged as an omission");
    let kinds = kinds(&report.tracer);
    assert!(kinds.contains(&"net_timeout"), "omission traced: {kinds:?}");
    let connects = report
        .tracer
        .events()
        .filter(|e| e.kind() == "net_connect")
        .count();
    assert!(connects >= 2, "reconnect traced, saw {connects}");
}

#[test]
fn reconnecting_peer_keeps_its_identity_across_links() {
    let peer = NodeId::new(0);
    let (addr, handle) = spawn_node(2, quick_config(10), peer);

    // First connection: participate in round 1 only.
    let mut first = script_dial(addr, peer);
    write_frame(
        &mut first,
        &Frame::Data {
            round: 1,
            payload: 10u64.to_le_bytes().to_vec(),
        },
    )
    .unwrap();
    write_frame(
        &mut first,
        &Frame::Done {
            round: 1,
            decided: false,
        },
    )
    .unwrap();
    drop(first); // connection lost mid-run

    // Redial: the acceptor installs a fresh link for the same id, and the
    // frames keep being attributed to peer 0.
    let mut second = script_dial(addr, peer);
    write_frame(
        &mut second,
        &Frame::Data {
            round: 2,
            payload: 20u64.to_le_bytes().to_vec(),
        },
    )
    .unwrap();
    write_frame(
        &mut second,
        &Frame::Done {
            round: 2,
            decided: false,
        },
    )
    .unwrap();
    write_frame(
        &mut second,
        &Frame::Done {
            round: 3,
            decided: true,
        },
    )
    .unwrap();

    let report = handle.join().unwrap().expect("run completes");
    // Two own broadcasts + one delivery per connection.
    assert_eq!(report.output, Some(4));
    let connects = report
        .tracer
        .events()
        .filter(|e| e.kind() == "net_connect")
        .count();
    assert!(connects >= 2, "both links traced, saw {connects}");
}
