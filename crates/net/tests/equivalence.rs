//! Sim-vs-net decision equivalence: a healthy localhost TCP cluster must
//! decide exactly what the [`SyncEngine`] decides for the same processes.
//!
//! This is the transport's core correctness claim (see DESIGN.md §8): for
//! fault-free runs the round synchronizer reproduces the engine's delivery
//! semantics *exactly* — same inbox contents, same inbox order, same round
//! numbering — so the deterministic protocol logic must produce the same
//! outputs. The property test randomizes seeds (hence ids and inputs); any
//! divergence would pinpoint a transport bug, not protocol flakiness.

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::prelude::*;
use uba_core::consensus::EarlyConsensus;
use uba_core::reliable::ReliableBroadcast;
use uba_net::{decisions, run_local_cluster, NetConfig, Wire};
use uba_sim::{sparse_ids, NodeId, Process, SyncEngine};
use uba_trace::NoopTracer;

/// Generous timeouts: equivalence tests assert *decisions*, not latency,
/// and must not flake on a loaded CI machine.
fn test_config() -> NetConfig {
    NetConfig {
        round_timeout: Duration::from_secs(10),
        setup_timeout: Duration::from_secs(30),
        max_rounds: 200,
        ..NetConfig::default()
    }
}

/// Runs `factory()`'s processes in the simulator and over TCP; returns
/// `(sim_outputs, net_outputs)`.
fn run_both<P, F>(factory: F) -> (BTreeMap<NodeId, P::Output>, BTreeMap<NodeId, P::Output>)
where
    P: Process + Send,
    P::Msg: Wire,
    P::Output: Send + Clone,
    F: Fn() -> Vec<P>,
{
    let mut engine = SyncEngine::builder().correct_many(factory()).build();
    let sim = engine
        .run_to_completion(200)
        .expect("simulator twin must complete");
    let reports = run_local_cluster(factory(), test_config(), |_| NoopTracer)
        .expect("network run must complete");
    (sim.outputs, decisions(&reports))
}

fn consensus_cluster(seed: u64, n: usize) -> Vec<EarlyConsensus<u64>> {
    let ids = sparse_ids(n, seed);
    ids.iter()
        .enumerate()
        .map(|(i, &id)| EarlyConsensus::new(id, (seed >> (i % 64)) & 1))
        .collect()
}

#[test]
fn fixed_seed_consensus_matches_the_engine() {
    let (sim, net) = run_both(|| consensus_cluster(42, 4));
    assert_eq!(sim, net);
    assert_eq!(net.len(), 4, "every member decided");
}

#[test]
fn reliable_broadcast_matches_the_engine() {
    let ids = sparse_ids(5, 11);
    let sender = ids[2];
    let factory = || {
        ids.iter()
            .map(|&id| {
                let own = (id == sender).then(|| String::from("payload"));
                ReliableBroadcast::new(id, sender, own).with_horizon(6)
            })
            .collect::<Vec<_>>()
    };
    let (sim, net) = run_both(factory);
    assert_eq!(sim, net);
    // Sanity: the accepted map is non-trivial (the broadcast happened).
    assert!(net.values().all(|m| m.len() == 1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A healthy 4-node TCP cluster decides exactly like the engine, for
    /// random seeds (ids and inputs both derive from the seed).
    #[test]
    fn consensus_equivalence_over_random_seeds(seed in 0u64..1_000_000) {
        let (sim, net) = run_both(|| consensus_cluster(seed, 4));
        prop_assert_eq!(&sim, &net, "seed {} diverged", seed);
        prop_assert!(net.len() == 4, "someone failed to decide for seed {}", seed);
        // Agreement itself, independently of the twin run.
        let mut values: Vec<u64> = net.values().copied().collect();
        values.dedup();
        prop_assert!(values.len() == 1, "network run violated agreement");
    }
}
