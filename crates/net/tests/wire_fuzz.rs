//! Fuzz-style property tests for the frame codec: arbitrary bytes must
//! never panic the reader or make it over-allocate, truncation must never
//! yield a successful parse, and every valid frame must round-trip.

use proptest::collection::vec;
use proptest::prelude::*;
use uba_net::{read_frame, write_frame, Frame, MAX_FRAME};
use uba_sim::NodeId;

/// Builds one frame from sampled primitives (the vendored proptest has no
/// `prop_oneof`, so variant selection is an explicit index).
fn build_frame(
    selector: u8,
    a: u64,
    b: u64,
    flag: bool,
    bytes: Vec<u8>,
    nested: Vec<Vec<u8>>,
) -> Frame {
    match selector % 10 {
        0 => Frame::Hello {
            node: NodeId::new(a),
        },
        1 => Frame::Data {
            round: a,
            payload: bytes,
        },
        2 => Frame::Done {
            round: a,
            decided: flag,
        },
        3 => Frame::SyncRequest { since: a },
        4 => Frame::SyncTips {
            current_round: a,
            oldest_retained: b,
            decided: flag,
        },
        5 => Frame::Backfill {
            round: a,
            done: flag,
            decided: !flag,
            payloads: nested,
        },
        6 => Frame::Submit {
            // Any valid UTF-8 key must survive the wire; lossy conversion
            // turns the sampled bytes into one.
            key: String::from_utf8_lossy(&bytes).into_owned(),
            payload: nested.into_iter().next().unwrap_or_default(),
        },
        7 => Frame::SubmitAck {
            shard: a as u32,
            seq: b,
        },
        8 => Frame::ReadPrefix {
            shard: a as u32,
            from: b,
        },
        _ => Frame::PrefixChunk {
            shard: a as u32,
            from: b,
            sealed: flag,
            records: nested,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_the_reader(bytes in vec(0u8..=255, 0..64)) {
        // Drain the "stream" like the connection reader does: frames until
        // clean EOF or an error. Every outcome but a panic is acceptable.
        let mut reader = &bytes[..];
        while let Ok(Some(_)) = read_frame(&mut reader) {}
    }

    #[test]
    fn arbitrary_bodies_never_panic_the_decoder(body in vec(0u8..=255, 0..48)) {
        // decode_body is private; drive it through a well-formed length
        // prefix so only the body bytes are under test.
        let mut stream = Vec::with_capacity(4 + body.len());
        stream.extend_from_slice(&(body.len() as u32).to_le_bytes());
        stream.extend_from_slice(&body);
        let _ = read_frame(&mut &stream[..]);
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_before_allocating(
        excess in 1u64..=u32::MAX as u64 - MAX_FRAME as u64,
    ) {
        // The length prefix is attacker-controlled; the reader must refuse
        // it without allocating the claimed buffer (this property OOMs the
        // test run if the guard regresses to allocate-first).
        let len = MAX_FRAME + excess as u32;
        let mut stream = Vec::new();
        stream.extend_from_slice(&len.to_le_bytes());
        stream.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut &stream[..]).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn valid_frames_round_trip(
        selector in 0u8..10,
        a in 0u64..=u64::MAX,
        b in 0u64..=u64::MAX,
        flag in 0u8..2,
        bytes in vec(0u8..=255, 0..32),
        nested in vec(vec(0u8..=255, 0..16), 0..6),
    ) {
        let frame = build_frame(selector, a, b, flag == 1, bytes, nested);
        let mut stream = Vec::new();
        write_frame(&mut stream, &frame).unwrap();
        let mut reader = &stream[..];
        prop_assert_eq!(read_frame(&mut reader).unwrap(), Some(frame));
        prop_assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn truncation_never_parses(
        selector in 0u8..10,
        a in 0u64..=u64::MAX,
        b in 0u64..=u64::MAX,
        flag in 0u8..2,
        bytes in vec(0u8..=255, 0..32),
        nested in vec(vec(0u8..=255, 0..16), 0..6),
        cut in 1usize..64,
    ) {
        let frame = build_frame(selector, a, b, flag == 1, bytes, nested);
        let mut stream = Vec::new();
        write_frame(&mut stream, &frame).unwrap();
        let keep = stream.len().saturating_sub(cut.min(stream.len()));
        match read_frame(&mut &stream[..keep]) {
            Ok(None) => prop_assert_eq!(keep, 0, "only an empty prefix is a clean EOF"),
            Ok(Some(_)) => prop_assert!(false, "a truncated frame parsed"),
            Err(_) => {}
        }
    }

    #[test]
    fn garbage_prefixed_to_a_valid_frame_never_misattributes(
        garbage in vec(0u8..=255, 1..12),
        round in 0u64..1000,
    ) {
        // A stream that starts with garbage either errors out or yields
        // frames that are NOT silently equal to the appended valid one
        // read at the wrong offset — the reader must never resynchronize
        // mid-stream (TCP gives it a clean byte stream; anything else is
        // corruption, surfaced as an error or EOF).
        let mut stream = garbage.clone();
        write_frame(&mut stream, &Frame::Done { round, decided: false }).unwrap();
        let mut reader = &stream[..];
        while let Ok(Some(_)) = read_frame(&mut reader) {}
    }
}
