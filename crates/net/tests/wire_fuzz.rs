//! Fuzz-style property tests for the frame codec: arbitrary bytes must
//! never panic the reader or make it over-allocate, truncation must never
//! yield a successful parse, and every valid frame must round-trip.
//!
//! The second block points the same hostility at *live endpoints*: a
//! [`NetNode`] and a [`serve_clients`] log service fed arbitrary
//! adversarial byte streams — truncated, interleaved, duplicated frames,
//! raw garbage — must only ever answer with typed errors and disconnects,
//! never a panic or a hang.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use proptest::collection::vec;
use proptest::prelude::*;
use uba_net::{
    read_frame, serve_clients, write_frame, Frame, LogIngress, NetConfig, NetNode, RetryPolicy,
    MAX_FRAME,
};
use uba_sim::{Context, NodeId, Process};
use uba_trace::NoopTracer;

/// Builds one frame from sampled primitives (the vendored proptest has no
/// `prop_oneof`, so variant selection is an explicit index).
fn build_frame(
    selector: u8,
    a: u64,
    b: u64,
    flag: bool,
    bytes: Vec<u8>,
    nested: Vec<Vec<u8>>,
) -> Frame {
    match selector % 10 {
        0 => Frame::Hello {
            node: NodeId::new(a),
        },
        1 => Frame::Data {
            round: a,
            payload: bytes,
        },
        2 => Frame::Done {
            round: a,
            decided: flag,
        },
        3 => Frame::SyncRequest { since: a },
        4 => Frame::SyncTips {
            current_round: a,
            oldest_retained: b,
            decided: flag,
        },
        5 => Frame::Backfill {
            round: a,
            done: flag,
            decided: !flag,
            payloads: nested,
        },
        6 => Frame::Submit {
            // Any valid UTF-8 key must survive the wire; lossy conversion
            // turns the sampled bytes into one.
            key: String::from_utf8_lossy(&bytes).into_owned(),
            payload: nested.into_iter().next().unwrap_or_default(),
        },
        7 => Frame::SubmitAck {
            shard: a as u32,
            seq: b,
        },
        8 => Frame::ReadPrefix {
            shard: a as u32,
            from: b,
        },
        _ => Frame::PrefixChunk {
            shard: a as u32,
            from: b,
            sealed: flag,
            records: nested,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_the_reader(bytes in vec(0u8..=255, 0..64)) {
        // Drain the "stream" like the connection reader does: frames until
        // clean EOF or an error. Every outcome but a panic is acceptable.
        let mut reader = &bytes[..];
        while let Ok(Some(_)) = read_frame(&mut reader) {}
    }

    #[test]
    fn arbitrary_bodies_never_panic_the_decoder(body in vec(0u8..=255, 0..48)) {
        // decode_body is private; drive it through a well-formed length
        // prefix so only the body bytes are under test.
        let mut stream = Vec::with_capacity(4 + body.len());
        stream.extend_from_slice(&(body.len() as u32).to_le_bytes());
        stream.extend_from_slice(&body);
        let _ = read_frame(&mut &stream[..]);
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_before_allocating(
        excess in 1u64..=u32::MAX as u64 - MAX_FRAME as u64,
    ) {
        // The length prefix is attacker-controlled; the reader must refuse
        // it without allocating the claimed buffer (this property OOMs the
        // test run if the guard regresses to allocate-first).
        let len = MAX_FRAME + excess as u32;
        let mut stream = Vec::new();
        stream.extend_from_slice(&len.to_le_bytes());
        stream.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut &stream[..]).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn valid_frames_round_trip(
        selector in 0u8..10,
        a in 0u64..=u64::MAX,
        b in 0u64..=u64::MAX,
        flag in 0u8..2,
        bytes in vec(0u8..=255, 0..32),
        nested in vec(vec(0u8..=255, 0..16), 0..6),
    ) {
        let frame = build_frame(selector, a, b, flag == 1, bytes, nested);
        let mut stream = Vec::new();
        write_frame(&mut stream, &frame).unwrap();
        let mut reader = &stream[..];
        prop_assert_eq!(read_frame(&mut reader).unwrap(), Some(frame));
        prop_assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn truncation_never_parses(
        selector in 0u8..10,
        a in 0u64..=u64::MAX,
        b in 0u64..=u64::MAX,
        flag in 0u8..2,
        bytes in vec(0u8..=255, 0..32),
        nested in vec(vec(0u8..=255, 0..16), 0..6),
        cut in 1usize..64,
    ) {
        let frame = build_frame(selector, a, b, flag == 1, bytes, nested);
        let mut stream = Vec::new();
        write_frame(&mut stream, &frame).unwrap();
        let keep = stream.len().saturating_sub(cut.min(stream.len()));
        match read_frame(&mut &stream[..keep]) {
            Ok(None) => prop_assert_eq!(keep, 0, "only an empty prefix is a clean EOF"),
            Ok(Some(_)) => prop_assert!(false, "a truncated frame parsed"),
            Err(_) => {}
        }
    }

    #[test]
    fn garbage_prefixed_to_a_valid_frame_never_misattributes(
        garbage in vec(0u8..=255, 1..12),
        round in 0u64..1000,
    ) {
        // A stream that starts with garbage either errors out or yields
        // frames that are NOT silently equal to the appended valid one
        // read at the wrong offset — the reader must never resynchronize
        // mid-stream (TCP gives it a clean byte stream; anything else is
        // corruption, surfaced as an error or EOF).
        let mut stream = garbage.clone();
        write_frame(&mut stream, &Frame::Done { round, decided: false }).unwrap();
        let mut reader = &stream[..];
        while let Ok(Some(_)) = read_frame(&mut reader) {}
    }
}

/// A one-round broadcast process for the live-node fuzz below.
struct OneShot {
    id: NodeId,
    out: Option<u64>,
}

impl Process for OneShot {
    type Msg = u64;
    type Output = u64;

    fn id(&self) -> NodeId {
        self.id
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>) {
        if ctx.round() == 1 {
            ctx.broadcast(1);
        } else {
            self.out = Some(ctx.inbox().len() as u64);
        }
    }

    fn output(&self) -> Option<u64> {
        self.out
    }
}

/// One adversarial stream built from sampled segments: valid frames,
/// duplicated frames, truncated frames, and raw garbage, interleaved in
/// sampled order (the vendored proptest has no tuple strategies, so the
/// segment list arrives as parallel vectors).
fn hostile_stream(selectors: &[u8], rounds: &[u64], garbage: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    for (i, selector) in selectors.iter().enumerate() {
        let round = rounds.get(i).copied().unwrap_or(i as u64);
        match selector % 5 {
            0 => write_frame(
                &mut out,
                &Frame::Data {
                    round: round % 6,
                    payload: round.to_le_bytes().to_vec(),
                },
            )
            .unwrap(),
            1 => {
                // The same frame twice back to back.
                let mut one = Vec::new();
                write_frame(
                    &mut one,
                    &Frame::Data {
                        round: round % 6,
                        payload: round.to_le_bytes().to_vec(),
                    },
                )
                .unwrap();
                out.extend_from_slice(&one);
                out.extend_from_slice(&one);
            }
            2 => {
                // A frame cut off halfway; everything after is torn.
                let mut one = Vec::new();
                write_frame(
                    &mut one,
                    &Frame::Done {
                        round: round % 6,
                        decided: false,
                    },
                )
                .unwrap();
                out.extend_from_slice(&one[..one.len() / 2]);
            }
            3 => out.extend_from_slice(garbage),
            _ => write_frame(
                &mut out,
                &Frame::Done {
                    round: round % 6,
                    decided: true,
                },
            )
            .unwrap(),
        }
    }
    out
}

proptest! {
    // Each case stands up real sockets; a handful of cases per run keeps
    // the suite fast while seed rotation covers the space over time.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn adversarial_streams_never_panic_a_live_node(
        selectors in vec(0u8..=255, 0..8),
        rounds in vec(0u64..=20, 0..8),
        garbage in vec(0u8..=255, 0..12),
    ) {
        let me = NodeId::new(1);
        let peer = NodeId::new(0);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let roster: BTreeMap<NodeId, std::net::SocketAddr> =
            [(me, addr), (peer, "127.0.0.1:1".parse().unwrap())].into();
        let config = NetConfig {
            round_timeout: Duration::from_millis(100),
            retry: RetryPolicy {
                initial_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(20),
                budget: Duration::from_secs(2),
                jitter_seed: 0,
            },
            setup_timeout: Duration::from_secs(2),
            max_rounds: 30,
            give_up_after: 1,
            ..NetConfig::default()
        };
        let handle = std::thread::spawn(move || {
            NetNode::new(OneShot { id: me, out: None }, config)
                .with_tracer(NoopTracer)
                .run(listener, &roster)
        });

        // Handshake honestly, then pour the hostile stream in and hang up.
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, &Frame::Hello { node: peer }).unwrap();
        let _ = read_frame(&mut stream);
        let bytes = hostile_stream(&selectors, &rounds, &garbage);
        let _ = stream.write_all(&bytes);
        let _ = stream.flush();
        drop(stream);

        // The node must finish its run alone — every hostile byte resolved
        // into a typed outcome (drop, strike, omission, eviction), never a
        // panic (which would surface as Err on join) or a hang.
        let report = handle.join().expect("NetNode must not panic");
        prop_assert!(report.is_ok(), "typed error escaped: {:?}", report.err());
    }

    #[test]
    fn adversarial_clients_never_take_down_the_log_service(
        garbage in vec(0u8..=255, 1..64),
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = serve_clients(listener, LogIngress::new(2), 1, None, NoopTracer).unwrap();
        let addr = server.addr();

        // A hostile client writes garbage and hangs up; the handler must
        // resolve it into a typed disconnect.
        let mut bad = TcpStream::connect(addr).unwrap();
        let _ = bad.write_all(&garbage);
        let _ = bad.flush();
        drop(bad);

        // The service survives: a well-formed client still gets acked.
        let mut good = TcpStream::connect(addr).unwrap();
        write_frame(
            &mut good,
            &Frame::Submit {
                key: String::from("fuzz"),
                payload: vec![1, 2, 3],
            },
        )
        .unwrap();
        match read_frame(&mut good) {
            Ok(Some(Frame::SubmitAck { .. })) => {}
            other => prop_assert!(false, "service did not survive garbage: {other:?}"),
        }
        drop(good);
        server.shutdown();
    }
}
