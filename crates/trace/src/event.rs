//! The trace event vocabulary.
//!
//! One [`TraceEvent`] is emitted for every observable step of an engine run:
//! round boundaries, message traffic (sends, deliveries, duplicate drops),
//! adversary activity, churn, injected faults, monitor verdicts, and
//! per-node algorithm state transitions. Node identifiers appear as raw
//! `u64` values so the vocabulary stays independent of the simulator crate;
//! payloads are carried as their `Debug` rendering, produced only when a
//! tracer is actually attached.

/// A point-in-time snapshot of one node's algorithm state, reported through
/// the engine's observe hook (see `uba-core::observe`).
///
/// Every field is optional: an algorithm reports whatever it has. The engine
/// diffs consecutive snapshots per node and emits a
/// [`TraceEvent::NodeState`] only when something changed, so the trace
/// records *transitions*, not steady state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeSnapshot {
    /// Protocol-level phase counter (e.g. consensus phases executed,
    /// approximate-agreement iterations completed).
    pub phase: Option<u64>,
    /// The node's current estimate/opinion, rendered via `Debug`.
    pub estimate: Option<String>,
    /// The node's participant estimate `n_v`, once frozen/known.
    pub n_v: Option<u64>,
    /// The node's final output, rendered via `Debug`, once decided.
    pub decided: Option<String>,
}

impl NodeSnapshot {
    /// An empty snapshot (nothing reported yet).
    pub fn new() -> Self {
        Self::default()
    }
}

/// One structured event of an engine run.
///
/// Rounds are 1-based engine rounds (ticks, for the delayed engine). A
/// delivery is attributed to the round its message was *sent* in — it
/// physically arrives at the start of the next round — matching the
/// round-attribution of the engine's statistics.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A round started executing (after churn and fault application).
    RoundBegin {
        /// The 1-based round.
        round: u64,
    },
    /// A round finished executing.
    RoundEnd {
        /// The 1-based round.
        round: u64,
        /// Deliveries recorded during the round (messages sent this round
        /// that will arrive next round).
        deliveries: u64,
    },
    /// A node performed one send operation (broadcast or point-to-point).
    /// The message may still be suppressed by a fault before delivery; a
    /// send records intent, not receipt.
    Send {
        /// Round of the send.
        round: u64,
        /// Sender id.
        from: u64,
        /// Destination id; `None` means broadcast to every present node.
        to: Option<u64>,
        /// `Debug` rendering of the payload.
        payload: String,
        /// Whether the sender was adversary-controlled.
        adversary: bool,
    },
    /// A message was accepted for delivery at the start of the next round.
    Deliver {
        /// Round the message was sent in.
        round: u64,
        /// Sender id.
        from: u64,
        /// Recipient id.
        to: u64,
        /// `Debug` rendering of the payload.
        payload: String,
        /// Whether the sender was adversary-controlled.
        adversary: bool,
    },
    /// A duplicate `(sender, payload)` pair addressed to the same recipient
    /// within one round was discarded, as the model demands.
    DuplicateDrop {
        /// Round of the duplicate send.
        round: u64,
        /// Sender id.
        from: u64,
        /// Recipient id.
        to: u64,
        /// `Debug` rendering of the discarded payload.
        payload: String,
    },
    /// The rushing adversary committed its traffic for the round.
    Adversary {
        /// Round of the adversary step.
        round: u64,
        /// Number of send operations the adversary performed.
        sends: u64,
    },
    /// A node joined the system through the churn schedule.
    ChurnJoin {
        /// Round of the join.
        round: u64,
        /// The joining node.
        node: u64,
        /// Whether it joined as an adversary-controlled node.
        faulty: bool,
    },
    /// A node left the system through the churn schedule.
    ChurnLeave {
        /// Round of the leave.
        round: u64,
        /// The leaving node.
        node: u64,
    },
    /// A benign fault from the fault plan fired.
    Fault {
        /// Round the fault applies to.
        round: u64,
        /// Fault kind: `crash`, `recover`, `silence-send`, `drop-inbound`,
        /// `drop-link`, `restart` (a crash-restart replayed from the
        /// recorded inbox history — the churn schedule's simulator twin of
        /// the net layer's journal rejoin), or `byzantine_evict` (a peer
        /// disconnected for attributable wire misbehavior, as opposed to
        /// the omission-charged silence of a timeout).
        kind: &'static str,
        /// The node the fault is charged to.
        node: u64,
        /// The second endpoint, for link faults.
        peer: Option<u64>,
    },
    /// An online monitor reached a verdict. Engines emit this only on
    /// violation (a passing round is the steady state); it is therefore the
    /// final event of a run aborted by an invariant violation.
    MonitorVerdict {
        /// Round the verdict applies to.
        round: u64,
        /// Name of the monitored property (e.g. `"consensus agreement"`).
        monitor: String,
        /// Whether the property held.
        ok: bool,
        /// Ids of the offending nodes, when the monitor attributes blame.
        nodes: Vec<u64>,
        /// Human-readable details, one entry per violation.
        details: Vec<String>,
    },
    /// A node's observed algorithm state changed (see [`NodeSnapshot`]).
    NodeState {
        /// Round at the end of which the new state was observed.
        round: u64,
        /// The node.
        node: u64,
        /// The new snapshot.
        state: NodeSnapshot,
    },
    /// A transport-level event from a real network transport (`uba-net`):
    /// connection management and round-synchronizer progress. The simulator
    /// engines never emit this variant; it exists so a networked run and a
    /// simulated run share one trace vocabulary and one metrics pipeline.
    Net {
        /// Round (or connection-setup pseudo-round 0) the event belongs to.
        round: u64,
        /// What happened on the transport.
        kind: NetEventKind,
        /// The reporting node.
        node: u64,
        /// The peer involved, when the event concerns one.
        peer: Option<u64>,
        /// Free-form detail: an address, an attempt count, a frame round.
        /// Empty when there is nothing to add.
        info: String,
    },
}

/// The transport-level event kinds a real network transport reports (the
/// [`TraceEvent::Net`] variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEventKind {
    /// A connection to a peer was established (dialed or accepted).
    Connect,
    /// A dial attempt failed and will be retried after a backoff.
    Retry,
    /// The round barrier timed out waiting for a peer; the peer is treated
    /// as silent for the round (an omission, in the fault model's terms).
    Timeout,
    /// A frame for an already-advanced round arrived and was dropped (the
    /// networked analogue of a message lost to a receive omission).
    LateDrop,
    /// The round barrier released and the node advanced to the next round.
    RoundAdvance,
    /// A peer was presumed gone (connection closed or too many consecutive
    /// silent rounds) and removed from the barrier's expectations.
    PeerGone,
    /// A node came back from a crash: it recovered its round journal and
    /// resumed the round loop at the recorded round (the `info` field says
    /// whether the journal tail was torn).
    Resume,
    /// A `SyncRequest` frame was sent (a recovering node asking its peers to
    /// backfill the rounds it missed) or received (a peer about to answer).
    SyncRequest,
    /// A `SyncTips` frame was received: the responding peer's view of the
    /// cluster position (its current round, the oldest round it can still
    /// backfill, and whether it already decided).
    SyncTips,
    /// A `Backfill` frame was sent or applied: one round's worth of the
    /// responder's own past traffic replayed to a recovering peer.
    Backfill,
    /// A previously silent or declared-gone peer was re-admitted to the
    /// barrier's expectations after it announced itself with a
    /// `SyncRequest`.
    Rejoin,
    /// A WAN fault proxy dropped one frame on a link, per its seeded loss
    /// draw (the networked analogue of a `drop-link` fault for a single
    /// message).
    LinkDrop,
    /// A WAN fault proxy began delaying a link's frames for a round (base
    /// latency and/or jitter). Emitted once per (link, round), not per
    /// frame — the per-frame counts live in the runtime metrics.
    LinkDelay,
    /// A WAN fault proxy throttled a link for a round: its bandwidth cap
    /// added serialization delay on top of the base latency. Emitted once
    /// per (link, round).
    LinkThrottle,
    /// A scheduled partition severed a link for a round: every `Data`/`Done`
    /// frame of that round was discarded. Emitted once per (link, round) in
    /// the partition window.
    LinkPartition,
    /// The first frame crossed a link again after a partition window ended —
    /// the heal, observed from the proxy's side.
    LinkHeal,
    /// A `logd` service node accepted a client `Submit` frame and assigned it
    /// a `(shard, seq)` slot (the `info` field carries `shard=<s> seq=<q>`).
    ClientSubmit,
    /// A `logd` service node sealed one shard's pending submissions into the
    /// batch proposed for the next ordering round (`info` carries the batch
    /// size).
    ShardBatch,
    /// A `logd` service node answered a client `ReadPrefix` with a
    /// `PrefixChunk` of its finalized shard prefix (`info` carries the range
    /// served).
    PrefixRead,
    /// A peer violated the wire protocol in a way no honest node can
    /// (malformed/oversized frame, out-of-window round, post-`Done` data
    /// injection, barrier equivocation, ingress-quota flood, backfill
    /// abuse); the `info` field names the misbehavior kind and the strike
    /// count. Distinct from [`Timeout`](Self::Timeout): this is attributable
    /// malice, not silence.
    Misbehavior,
    /// A peer exhausted its strike budget and was evicted: link torn down,
    /// removed from the barrier's expectations, all further traffic from it
    /// ignored. Distinct from [`PeerGone`](Self::PeerGone), which charges
    /// benign silence.
    ByzEvict,
}

impl NetEventKind {
    /// Short machine-readable name (the suffix of the JSONL `ev` field).
    pub fn as_str(self) -> &'static str {
        match self {
            NetEventKind::Connect => "connect",
            NetEventKind::Retry => "retry",
            NetEventKind::Timeout => "timeout",
            NetEventKind::LateDrop => "late_drop",
            NetEventKind::RoundAdvance => "round_advance",
            NetEventKind::PeerGone => "peer_gone",
            NetEventKind::Resume => "resume",
            NetEventKind::SyncRequest => "sync_request",
            NetEventKind::SyncTips => "sync_tips",
            NetEventKind::Backfill => "backfill",
            NetEventKind::Rejoin => "rejoin",
            NetEventKind::LinkDrop => "link_drop",
            NetEventKind::LinkDelay => "link_delay",
            NetEventKind::LinkThrottle => "link_throttle",
            NetEventKind::LinkPartition => "link_partition",
            NetEventKind::LinkHeal => "link_heal",
            NetEventKind::ClientSubmit => "client_submit",
            NetEventKind::ShardBatch => "shard_batch",
            NetEventKind::PrefixRead => "prefix_read",
            NetEventKind::Misbehavior => "byz_misbehavior",
            NetEventKind::ByzEvict => "byz_evict",
        }
    }
}

impl TraceEvent {
    /// Short machine-readable event kind (the `ev` field of the JSONL
    /// encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RoundBegin { .. } => "round_begin",
            TraceEvent::RoundEnd { .. } => "round_end",
            TraceEvent::Send { .. } => "send",
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::DuplicateDrop { .. } => "duplicate_drop",
            TraceEvent::Adversary { .. } => "adversary",
            TraceEvent::ChurnJoin { .. } => "churn_join",
            TraceEvent::ChurnLeave { .. } => "churn_leave",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::MonitorVerdict { .. } => "monitor_verdict",
            TraceEvent::NodeState { .. } => "node_state",
            TraceEvent::Net { kind, .. } => match kind {
                NetEventKind::Connect => "net_connect",
                NetEventKind::Retry => "net_retry",
                NetEventKind::Timeout => "net_timeout",
                NetEventKind::LateDrop => "net_late_drop",
                NetEventKind::RoundAdvance => "net_round_advance",
                NetEventKind::PeerGone => "net_peer_gone",
                NetEventKind::Resume => "net_resume",
                NetEventKind::SyncRequest => "net_sync_request",
                NetEventKind::SyncTips => "net_sync_tips",
                NetEventKind::Backfill => "net_backfill",
                NetEventKind::Rejoin => "net_rejoin",
                NetEventKind::LinkDrop => "net_link_drop",
                NetEventKind::LinkDelay => "net_link_delay",
                NetEventKind::LinkThrottle => "net_link_throttle",
                NetEventKind::LinkPartition => "net_link_partition",
                NetEventKind::LinkHeal => "net_link_heal",
                NetEventKind::ClientSubmit => "net_client_submit",
                NetEventKind::ShardBatch => "net_shard_batch",
                NetEventKind::PrefixRead => "net_prefix_read",
                NetEventKind::Misbehavior => "net_byz_misbehavior",
                NetEventKind::ByzEvict => "net_byz_evict",
            },
        }
    }

    /// The round the event belongs to.
    pub fn round(&self) -> u64 {
        match *self {
            TraceEvent::RoundBegin { round }
            | TraceEvent::RoundEnd { round, .. }
            | TraceEvent::Send { round, .. }
            | TraceEvent::Deliver { round, .. }
            | TraceEvent::DuplicateDrop { round, .. }
            | TraceEvent::Adversary { round, .. }
            | TraceEvent::ChurnJoin { round, .. }
            | TraceEvent::ChurnLeave { round, .. }
            | TraceEvent::Fault { round, .. }
            | TraceEvent::MonitorVerdict { round, .. }
            | TraceEvent::NodeState { round, .. }
            | TraceEvent::Net { round, .. } => round,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_and_round_are_consistent() {
        let ev = TraceEvent::Deliver {
            round: 4,
            from: 1,
            to: 2,
            payload: "x".into(),
            adversary: false,
        };
        assert_eq!(ev.kind(), "deliver");
        assert_eq!(ev.round(), 4);
        let ev = TraceEvent::MonitorVerdict {
            round: 9,
            monitor: "agreement".into(),
            ok: false,
            nodes: vec![1, 2],
            details: vec!["split".into()],
        };
        assert_eq!(ev.kind(), "monitor_verdict");
        assert_eq!(ev.round(), 9);
    }

    #[test]
    fn net_kinds_have_distinct_event_names() {
        use std::collections::BTreeSet;
        let kinds = [
            NetEventKind::Connect,
            NetEventKind::Retry,
            NetEventKind::Timeout,
            NetEventKind::LateDrop,
            NetEventKind::RoundAdvance,
            NetEventKind::PeerGone,
            NetEventKind::Resume,
            NetEventKind::SyncRequest,
            NetEventKind::SyncTips,
            NetEventKind::Backfill,
            NetEventKind::Rejoin,
            NetEventKind::LinkDrop,
            NetEventKind::LinkDelay,
            NetEventKind::LinkThrottle,
            NetEventKind::LinkPartition,
            NetEventKind::LinkHeal,
            NetEventKind::ClientSubmit,
            NetEventKind::ShardBatch,
            NetEventKind::PrefixRead,
            NetEventKind::Misbehavior,
            NetEventKind::ByzEvict,
        ];
        let names: BTreeSet<&str> = kinds
            .iter()
            .map(|&kind| {
                TraceEvent::Net {
                    round: 1,
                    kind,
                    node: 1,
                    peer: None,
                    info: String::new(),
                }
                .kind()
            })
            .collect();
        assert_eq!(names.len(), kinds.len(), "one counter per net kind");
        assert!(names.iter().all(|n| n.starts_with("net_")));
    }

    #[test]
    fn snapshot_diffing_uses_equality() {
        let a = NodeSnapshot {
            phase: Some(1),
            ..NodeSnapshot::new()
        };
        let b = NodeSnapshot {
            phase: Some(1),
            ..NodeSnapshot::new()
        };
        assert_eq!(a, b);
        let c = NodeSnapshot {
            phase: Some(2),
            ..NodeSnapshot::new()
        };
        assert_ne!(a, c);
    }
}
