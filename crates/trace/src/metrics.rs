//! A metrics registry derived from the trace event stream.
//!
//! [`Metrics`] is itself a [`Tracer`]: attach it (alone or fanned out next
//! to a collector) and it folds the event stream into named counters and
//! fixed-bucket histograms — deliveries per round, `n_v` snapshots, and
//! rounds-to-decide distributions — without a second instrumentation path.
//! Everything is stored in `BTreeMap`s so rendering is deterministic.

use std::collections::BTreeMap;
use std::fmt;

use crate::event::TraceEvent;
use crate::tracer::Tracer;

/// A fixed-bucket histogram over `u64` samples.
///
/// Buckets are defined by their inclusive upper bounds plus an implicit
/// overflow bucket; bounds are fixed at construction, so merging and
/// rendering are deterministic.
///
/// # Examples
///
/// ```
/// use uba_trace::Histogram;
///
/// let mut h = Histogram::new(&[1, 10, 100]);
/// h.record(0);
/// h.record(7);
/// h.record(1_000);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.buckets(), vec![(Some(1), 1), (Some(10), 1), (Some(100), 0), (None, 1)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds (sorted and
    /// deduplicated) plus an overflow bucket.
    pub fn new(bounds: &[u64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; buckets],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The buckets as `(inclusive upper bound, count)`; `None` is overflow.
    pub fn buckets(&self) -> Vec<(Option<u64>, u64)> {
        self.bounds
            .iter()
            .map(|&b| Some(b))
            .chain(std::iter::once(None))
            .zip(self.counts.iter().copied())
            .collect()
    }

    /// Folds another histogram's samples into this one, bucket by bucket.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms were built with different bounds — a
    /// merge across incompatible bucket layouts has no meaning.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "merging histograms with different bucket bounds"
        );
        for (slot, &count) in self.counts.iter_mut().zip(&other.counts) {
            *slot += count;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} max={}",
            self.count,
            self.mean(),
            self.max
        )?;
        for (bound, count) in self.buckets() {
            match bound {
                Some(b) => write!(f, " ≤{b}:{count}")?,
                None => write!(f, " >:{count}")?,
            }
        }
        Ok(())
    }
}

/// Default bucket bounds for per-round delivery counts.
const DELIVERY_BUCKETS: &[u64] = &[0, 10, 25, 50, 100, 250, 500, 1000];
/// Default bucket bounds for round numbers (decision rounds).
const ROUND_BUCKETS: &[u64] = &[2, 5, 7, 10, 15, 25, 50, 100];
/// Default bucket bounds for participant estimates.
const N_V_BUCKETS: &[u64] = &[1, 3, 6, 10, 15, 25, 50, 100];

/// Counters and histograms folded from a trace event stream.
///
/// # Examples
///
/// ```
/// use uba_trace::{Metrics, TraceEvent, Tracer};
///
/// let mut m = Metrics::new();
/// m.record(TraceEvent::RoundBegin { round: 1 });
/// m.record(TraceEvent::RoundEnd { round: 1, deliveries: 9 });
/// assert_eq!(m.counter("round_begin"), 1);
/// assert_eq!(m.histogram("deliveries_per_round").unwrap().mean(), 9.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    /// Nodes already counted in `rounds_to_decide` (a node decides once).
    decided: BTreeMap<u64, u64>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Value of the named counter (0 if never incremented). Counter names
    /// are the event kinds plus `sends_adversary` / `delivers_adversary`.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram: `deliveries_per_round`, `rounds_to_decide`, or
    /// `n_v`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Round in which each node was first observed decided.
    pub fn decided_rounds(&self) -> &BTreeMap<u64, u64> {
        &self.decided
    }

    fn bump(&mut self, name: &'static str) {
        *self.counters.entry(name).or_insert(0) += 1;
    }

    fn sample(&mut self, name: &'static str, bounds: &[u64], value: u64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .record(value);
    }

    /// Folds one event into the registry (the [`Tracer`] impl calls this).
    pub fn observe(&mut self, event: &TraceEvent) {
        self.bump(event.kind());
        match event {
            TraceEvent::RoundEnd { deliveries, .. } => {
                self.sample("deliveries_per_round", DELIVERY_BUCKETS, *deliveries);
            }
            TraceEvent::Send {
                adversary: true, ..
            } => self.bump("sends_adversary"),
            TraceEvent::Deliver {
                adversary: true, ..
            } => self.bump("delivers_adversary"),
            TraceEvent::NodeState { round, node, state } => {
                if let Some(n_v) = state.n_v {
                    self.sample("n_v", N_V_BUCKETS, n_v);
                }
                if state.decided.is_some() && !self.decided.contains_key(node) {
                    self.decided.insert(*node, *round);
                    self.sample("rounds_to_decide", ROUND_BUCKETS, *round);
                }
            }
            _ => {}
        }
    }

    /// Renders the registry as one schema-versioned JSON object with fully
    /// deterministic output: `BTreeMap` iteration gives sorted keys, and
    /// histogram buckets appear in bound order (`null` is the overflow
    /// bucket). Counter names are `'static` identifiers from the event
    /// vocabulary, so no string escaping is required — asserted in debug
    /// builds.
    ///
    /// # Examples
    ///
    /// ```
    /// use uba_trace::{Metrics, TraceEvent};
    ///
    /// let mut m = Metrics::new();
    /// m.observe(&TraceEvent::RoundBegin { round: 1 });
    /// let json = m.to_json();
    /// assert!(json.starts_with("{\"schema\":\"uba-metrics-v1\""));
    /// assert!(json.contains("\"round_begin\":1"));
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"uba-metrics-v1\",\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            debug_assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "counter name {name:?} needs escaping"
            );
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, histogram)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                histogram.count(),
                histogram.sum(),
                histogram.max()
            ));
            for (j, (bound, count)) in histogram.buckets().into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match bound {
                    Some(b) => out.push_str(&format!("[{b},{count}]")),
                    None => out.push_str(&format!("[null,{count}]")),
                }
            }
            out.push_str("]}");
        }
        out.push_str("},\"decided_rounds\":{");
        for (i, (node, round)) in self.decided.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{node}\":{round}"));
        }
        out.push_str("}}");
        out
    }

    /// Compact multi-line summary: every counter, then every histogram.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("{name}={value} "));
        }
        out.push('\n');
        for (name, histogram) in &self.histograms {
            out.push_str(&format!("{name}: {histogram}\n"));
        }
        out
    }
}

impl Tracer for Metrics {
    fn record(&mut self, event: TraceEvent) {
        self.observe(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NodeSnapshot;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[5, 1, 5]); // unsorted + dup on purpose
        for v in [0, 1, 2, 6, 100] {
            h.record(v);
        }
        assert_eq!(h.buckets(), vec![(Some(1), 2), (Some(5), 1), (None, 2)]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.8).abs() < 1e-9);
    }

    #[test]
    fn metrics_counts_kinds_and_adversary_traffic() {
        let mut m = Metrics::new();
        m.observe(&TraceEvent::Send {
            round: 1,
            from: 1,
            to: None,
            payload: "x".into(),
            adversary: true,
        });
        m.observe(&TraceEvent::Send {
            round: 1,
            from: 2,
            to: None,
            payload: "y".into(),
            adversary: false,
        });
        assert_eq!(m.counter("send"), 2);
        assert_eq!(m.counter("sends_adversary"), 1);
        assert_eq!(m.counter("never_seen"), 0);
    }

    #[test]
    fn rounds_to_decide_counts_each_node_once() {
        let mut m = Metrics::new();
        let decided = |round, node| TraceEvent::NodeState {
            round,
            node,
            state: NodeSnapshot {
                decided: Some("1".into()),
                n_v: Some(4),
                ..NodeSnapshot::new()
            },
        };
        m.observe(&decided(7, 1));
        m.observe(&decided(8, 1)); // same node again: not re-counted
        m.observe(&decided(12, 2));
        let h = m.histogram("rounds_to_decide").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(m.decided_rounds()[&1], 7);
        assert_eq!(m.decided_rounds()[&2], 12);
        assert_eq!(m.histogram("n_v").unwrap().count(), 3);
    }

    #[test]
    fn histogram_merge_adds_bucketwise() {
        let mut a = Histogram::new(&[5, 10]);
        let mut b = Histogram::new(&[5, 10]);
        a.record(3);
        b.record(7);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.buckets(), vec![(Some(5), 1), (Some(10), 1), (None, 1)]);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 110);
        assert_eq!(a.max(), 100);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[5]);
        a.merge(&Histogram::new(&[6]));
    }

    #[test]
    fn to_json_is_schema_versioned_and_deterministic() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        for m in [&mut a, &mut b] {
            m.observe(&TraceEvent::RoundBegin { round: 1 });
            m.observe(&TraceEvent::RoundEnd {
                round: 1,
                deliveries: 3,
            });
            m.observe(&TraceEvent::NodeState {
                round: 2,
                node: 9,
                state: NodeSnapshot {
                    decided: Some("1".into()),
                    n_v: Some(4),
                    ..NodeSnapshot::new()
                },
            });
        }
        let json = a.to_json();
        assert_eq!(json, b.to_json());
        assert!(json.starts_with("{\"schema\":\"uba-metrics-v1\""));
        assert!(json.contains("\"round_begin\":1"));
        assert!(json.contains("\"deliveries_per_round\":{\"count\":1"));
        assert!(json.contains("\"decided_rounds\":{\"9\":2}"));
        assert!(json.contains("[null,0]"), "overflow bucket rendered");
    }

    #[test]
    fn summary_is_deterministic() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        for m in [&mut a, &mut b] {
            m.observe(&TraceEvent::RoundBegin { round: 1 });
            m.observe(&TraceEvent::RoundEnd {
                round: 1,
                deliveries: 3,
            });
        }
        assert_eq!(a.summary(), b.summary());
        assert!(a.summary().contains("deliveries_per_round"));
    }
}
