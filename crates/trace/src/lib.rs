//! # uba-trace — deterministic event tracing and metrics
//!
//! A zero-dependency observability layer for the `uba` engines. The crate
//! provides three things:
//!
//! 1. **An event vocabulary** ([`TraceEvent`]): round boundaries, sends,
//!    deliveries, duplicate drops, adversary activity, churn, injected
//!    faults, monitor verdicts, per-node algorithm state transitions
//!    ([`NodeSnapshot`]), and transport-level events from real network
//!    transports ([`NetEventKind`]: connects, dial retries, barrier
//!    timeouts, round advances). Node ids are raw `u64`s so the vocabulary
//!    stays below the simulator in the dependency graph.
//! 2. **Tracers** ([`Tracer`]): the no-op default ([`NoopTracer`], free on
//!    the hot path), a bounded ring-buffer collector ([`RingTracer`],
//!    keeping the last *N* events of a long run), a JSONL writer
//!    ([`JsonlTracer`], behind the default `jsonl` feature), plus the
//!    [`Fanout`] and [`SharedTracer`] combinators used to wire one event
//!    stream into several consumers.
//! 3. **A metrics registry** ([`Metrics`]): counters per event kind and
//!    fixed-bucket [`Histogram`]s (deliveries per round, `n_v` growth,
//!    rounds to decide) folded directly from the event stream.
//! 4. **A durable round journal** ([`RoundJournal`]): an append-only,
//!    fsync-on-commit JSONL record of a networked node's per-round state,
//!    with crash-safe torn-tail recovery — the persistence half of the
//!    `uba-net` crash-recovery rejoin protocol.
//! 5. **A wall-clock runtime registry** ([`RuntimeMetrics`] behind the
//!    thread-safe [`SharedRuntimeMetrics`] handle, with [`Stopwatch`] and
//!    RAII [`Span`] timers): monotonic-clock timing histograms in
//!    microseconds plus transport counters and gauges, rendered in the
//!    Prometheus text exposition format.
//!
//! Everything in the **event stream** is deterministic for a fixed seed:
//! events carry no wall-clock timestamps, maps are ordered, and the JSONL
//! encoding uses a fixed key order — two runs of the same seeded experiment
//! produce byte-identical traces, so `diff` localises divergence. The
//! runtime registry is the one deliberate exception: it measures wall-clock
//! time and real transport volume, and for exactly that reason it is **not**
//! a [`Tracer`] and never feeds the event stream — the two registries must
//! never mix (DESIGN.md §10).
//!
//! ## Feature flags
//!
//! * `jsonl` *(default)* — the JSON encoder ([`to_json`]), [`JsonlTracer`],
//!   and [`RingTracer::to_jsonl`]. With `--no-default-features` the crate
//!   is the pure in-memory core: vocabulary, no-op/ring tracers, metrics.
//!
//! ## Example
//!
//! ```
//! use uba_trace::{Fanout, Metrics, RingTracer, SharedTracer, TraceEvent, Tracer};
//!
//! // A postmortem window and a metrics registry fed from one stream.
//! let handle = SharedTracer::new(Fanout(RingTracer::new(1024), Metrics::new()));
//! let mut tracer = handle.clone(); // this clone goes to the engine
//!
//! tracer.record(TraceEvent::RoundBegin { round: 1 });
//! tracer.record(TraceEvent::RoundEnd { round: 1, deliveries: 6 });
//!
//! handle.with(|fan| {
//!     assert_eq!(fan.0.len(), 2);
//!     assert_eq!(fan.1.counter("round_end"), 1);
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod journal;
#[cfg(feature = "jsonl")]
mod json;
mod metrics;
mod runtime;
mod tracer;

pub use event::{NetEventKind, NodeSnapshot, TraceEvent};
pub use journal::{JournalEntry, JournalRecovery, RoundJournal};
#[cfg(feature = "jsonl")]
pub use json::to_json;
pub use metrics::{Histogram, Metrics};
pub use runtime::{
    metric_name, RuntimeMetrics, SharedRuntimeMetrics, Span, Stopwatch, TIMING_BUCKETS_US,
};
#[cfg(feature = "jsonl")]
pub use tracer::JsonlTracer;
pub use tracer::{Fanout, NoopTracer, RingTracer, SharedTracer, Tracer};
