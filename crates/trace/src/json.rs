//! Minimal, dependency-free JSONL encoding of [`TraceEvent`]s.
//!
//! Each event renders as exactly one line of JSON with a fixed key order,
//! so traces of deterministic runs are byte-identical across runs — the
//! property the postmortem workflow relies on (`diff` two traces to see
//! where executions diverge).

use crate::event::{NodeSnapshot, TraceEvent};

/// Appends `s` to `out` as a JSON string literal (with escaping).
fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_field_u64(out: &mut String, key: &str, value: u64) {
    out.push(',');
    push_str_escaped(out, key);
    out.push(':');
    out.push_str(&value.to_string());
}

fn push_field_str(out: &mut String, key: &str, value: &str) {
    out.push(',');
    push_str_escaped(out, key);
    out.push(':');
    push_str_escaped(out, value);
}

fn push_field_bool(out: &mut String, key: &str, value: bool) {
    out.push(',');
    push_str_escaped(out, key);
    out.push(':');
    out.push_str(if value { "true" } else { "false" });
}

fn push_field_str_list(out: &mut String, key: &str, values: &[String]) {
    out.push(',');
    push_str_escaped(out, key);
    out.push_str(":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_escaped(out, v);
    }
    out.push(']');
}

fn push_field_u64_list(out: &mut String, key: &str, values: &[u64]) {
    out.push(',');
    push_str_escaped(out, key);
    out.push_str(":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

fn push_snapshot(out: &mut String, state: &NodeSnapshot) {
    if let Some(phase) = state.phase {
        push_field_u64(out, "phase", phase);
    }
    if let Some(estimate) = &state.estimate {
        push_field_str(out, "estimate", estimate);
    }
    if let Some(n_v) = state.n_v {
        push_field_u64(out, "n_v", n_v);
    }
    if let Some(decided) = &state.decided {
        push_field_str(out, "decided", decided);
    }
}

/// Renders one event as a single JSON line (no trailing newline).
///
/// # Examples
///
/// ```
/// use uba_trace::{to_json, TraceEvent};
///
/// let line = to_json(&TraceEvent::RoundBegin { round: 3 });
/// assert_eq!(line, r#"{"ev":"round_begin","round":3}"#);
/// ```
pub fn to_json(event: &TraceEvent) -> String {
    let mut out = String::with_capacity(96);
    out.push('{');
    push_str_escaped(&mut out, "ev");
    out.push(':');
    push_str_escaped(&mut out, event.kind());
    push_field_u64(&mut out, "round", event.round());
    match event {
        TraceEvent::RoundBegin { .. } => {}
        TraceEvent::RoundEnd { deliveries, .. } => {
            push_field_u64(&mut out, "deliveries", *deliveries);
        }
        TraceEvent::Send {
            from,
            to,
            payload,
            adversary,
            ..
        } => {
            push_field_u64(&mut out, "from", *from);
            match to {
                Some(to) => push_field_u64(&mut out, "to", *to),
                None => push_field_str(&mut out, "to", "*"),
            }
            push_field_str(&mut out, "payload", payload);
            push_field_bool(&mut out, "adversary", *adversary);
        }
        TraceEvent::Deliver {
            from,
            to,
            payload,
            adversary,
            ..
        } => {
            push_field_u64(&mut out, "from", *from);
            push_field_u64(&mut out, "to", *to);
            push_field_str(&mut out, "payload", payload);
            push_field_bool(&mut out, "adversary", *adversary);
        }
        TraceEvent::DuplicateDrop {
            from, to, payload, ..
        } => {
            push_field_u64(&mut out, "from", *from);
            push_field_u64(&mut out, "to", *to);
            push_field_str(&mut out, "payload", payload);
        }
        TraceEvent::Adversary { sends, .. } => {
            push_field_u64(&mut out, "sends", *sends);
        }
        TraceEvent::ChurnJoin { node, faulty, .. } => {
            push_field_u64(&mut out, "node", *node);
            push_field_bool(&mut out, "faulty", *faulty);
        }
        TraceEvent::ChurnLeave { node, .. } => {
            push_field_u64(&mut out, "node", *node);
        }
        TraceEvent::Fault {
            kind, node, peer, ..
        } => {
            push_field_str(&mut out, "kind", kind);
            push_field_u64(&mut out, "node", *node);
            if let Some(peer) = peer {
                push_field_u64(&mut out, "peer", *peer);
            }
        }
        TraceEvent::MonitorVerdict {
            monitor,
            ok,
            nodes,
            details,
            ..
        } => {
            push_field_str(&mut out, "monitor", monitor);
            push_field_bool(&mut out, "ok", *ok);
            push_field_u64_list(&mut out, "nodes", nodes);
            push_field_str_list(&mut out, "details", details);
        }
        TraceEvent::NodeState { node, state, .. } => {
            push_field_u64(&mut out, "node", *node);
            push_snapshot(&mut out, state);
        }
        TraceEvent::Net {
            node, peer, info, ..
        } => {
            push_field_u64(&mut out, "node", *node);
            if let Some(peer) = peer {
                push_field_u64(&mut out, "peer", *peer);
            }
            if !info.is_empty() {
                push_field_str(&mut out, "info", info);
            }
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let line = to_json(&TraceEvent::Send {
            round: 1,
            from: 7,
            to: None,
            payload: "say \"hi\"\\\n\u{1}".to_string(),
            adversary: true,
        });
        assert_eq!(
            line,
            r#"{"ev":"send","round":1,"from":7,"to":"*","payload":"say \"hi\"\\\n\u0001","adversary":true}"#
        );
    }

    #[test]
    fn monitor_verdict_lists_nodes_and_details() {
        let line = to_json(&TraceEvent::MonitorVerdict {
            round: 5,
            monitor: "consensus agreement".into(),
            ok: false,
            nodes: vec![3, 9],
            details: vec!["N3 decided 1 but N9 decided 0".into()],
        });
        assert_eq!(
            line,
            r#"{"ev":"monitor_verdict","round":5,"monitor":"consensus agreement","ok":false,"nodes":[3,9],"details":["N3 decided 1 but N9 decided 0"]}"#
        );
    }

    #[test]
    fn net_event_renders_kind_in_ev_and_skips_empty_fields() {
        use crate::event::NetEventKind;
        let line = to_json(&TraceEvent::Net {
            round: 3,
            kind: NetEventKind::Timeout,
            node: 7,
            peer: Some(9),
            info: "barrier 150ms".into(),
        });
        assert_eq!(
            line,
            r#"{"ev":"net_timeout","round":3,"node":7,"peer":9,"info":"barrier 150ms"}"#
        );
        let line = to_json(&TraceEvent::Net {
            round: 0,
            kind: NetEventKind::Connect,
            node: 7,
            peer: None,
            info: String::new(),
        });
        assert_eq!(line, r#"{"ev":"net_connect","round":0,"node":7}"#);
    }

    #[test]
    fn node_state_skips_absent_fields() {
        let line = to_json(&TraceEvent::NodeState {
            round: 8,
            node: 4,
            state: NodeSnapshot {
                phase: Some(2),
                estimate: None,
                n_v: Some(10),
                decided: None,
            },
        });
        assert_eq!(
            line,
            r#"{"ev":"node_state","round":8,"node":4,"phase":2,"n_v":10}"#
        );
    }
}
