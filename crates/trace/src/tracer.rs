//! Tracer implementations: no-op, bounded ring buffer, JSONL writer, and
//! the combinators engines and harnesses compose them with.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::event::TraceEvent;

/// A sink for [`TraceEvent`]s.
///
/// Engines call [`enabled`](Tracer::enabled) before constructing an event,
/// so a disabled tracer costs neither allocation nor `Debug` formatting on
/// the hot path; [`record`](Tracer::record) consumes the event.
pub trait Tracer {
    /// Whether the engine should construct and record events at all.
    /// Defaults to `true`; only [`NoopTracer`] returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&mut self, event: TraceEvent);
}

impl Tracer for Box<dyn Tracer> {
    fn enabled(&self) -> bool {
        self.as_ref().enabled()
    }

    fn record(&mut self, event: TraceEvent) {
        self.as_mut().record(event)
    }
}

/// The do-nothing tracer: [`enabled`](Tracer::enabled) is `false`, so
/// engines skip event construction entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}
}

/// A bounded in-memory collector: keeps the **last** `capacity` events,
/// counting (but discarding) older ones.
///
/// This is the `--trace-last-n` backend: a long run keeps a fixed-size
/// postmortem window instead of an unbounded trace.
///
/// # Examples
///
/// ```
/// use uba_trace::{RingTracer, TraceEvent, Tracer};
///
/// let mut ring = RingTracer::new(2);
/// for round in 1..=3 {
///     ring.record(TraceEvent::RoundBegin { round });
/// }
/// assert_eq!(ring.len(), 2);
/// assert_eq!(ring.dropped(), 1);
/// assert_eq!(ring.events().next(), Some(&TraceEvent::RoundBegin { round: 2 }));
/// ```
#[derive(Debug, Clone)]
pub struct RingTracer {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingTracer {
    /// Creates a collector keeping the last `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingTracer {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events that fell out of the window.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained window as JSONL (one event per line, trailing
    /// newline after each). A dropped prefix is noted on the first line.
    #[cfg(feature = "jsonl")]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "{{\"ev\":\"window\",\"dropped\":{}}}\n",
                self.dropped
            ));
        }
        for event in &self.buf {
            out.push_str(&crate::json::to_json(event));
            out.push('\n');
        }
        out
    }
}

impl Tracer for RingTracer {
    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }
}

/// Writes each event as one JSON line, immediately, into any
/// [`std::io::Write`] sink.
///
/// Write errors are counted ([`errors`](JsonlTracer::errors)) rather than
/// propagated — a tracing failure must never abort the traced run.
#[cfg(feature = "jsonl")]
#[derive(Debug)]
pub struct JsonlTracer<W: std::io::Write> {
    writer: W,
    lines: u64,
    errors: u64,
}

#[cfg(feature = "jsonl")]
impl<W: std::io::Write> JsonlTracer<W> {
    /// Creates a tracer writing to `writer`.
    pub fn new(writer: W) -> Self {
        JsonlTracer {
            writer,
            lines: 0,
            errors: 0,
        }
    }

    /// Lines successfully written.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Write errors swallowed so far.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Borrows the underlying writer.
    pub fn get_ref(&self) -> &W {
        &self.writer
    }

    /// Consumes the tracer, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

#[cfg(feature = "jsonl")]
impl JsonlTracer<Vec<u8>> {
    /// A tracer collecting the JSONL into an in-memory buffer.
    pub fn in_memory() -> Self {
        JsonlTracer::new(Vec::new())
    }

    /// The collected JSONL as a string.
    pub fn to_jsonl(&self) -> String {
        String::from_utf8_lossy(&self.writer).into_owned()
    }
}

#[cfg(feature = "jsonl")]
impl<W: std::io::Write> Tracer for JsonlTracer<W> {
    fn record(&mut self, event: TraceEvent) {
        let line = crate::json::to_json(&event);
        match writeln!(self.writer, "{line}") {
            Ok(()) => self.lines += 1,
            Err(_) => self.errors += 1,
        }
    }
}

/// Duplicates every event into two tracers (e.g. a postmortem collector and
/// a [`Metrics`](crate::Metrics) registry).
#[derive(Debug, Clone, Default)]
pub struct Fanout<A, B>(pub A, pub B);

impl<A: Tracer, B: Tracer> Tracer for Fanout<A, B> {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn record(&mut self, event: TraceEvent) {
        if self.0.enabled() {
            self.0.record(event.clone());
        }
        if self.1.enabled() {
            self.1.record(event);
        }
    }
}

/// A cloneable handle around a tracer, so a harness can keep access to the
/// collected events after handing the tracer to an engine builder (which
/// takes ownership).
///
/// # Examples
///
/// ```
/// use uba_trace::{RingTracer, SharedTracer, TraceEvent, Tracer};
///
/// let handle = SharedTracer::new(RingTracer::new(16));
/// let mut for_engine = handle.clone();
/// for_engine.record(TraceEvent::RoundBegin { round: 1 });
/// assert_eq!(handle.with(|ring| ring.len()), 1);
/// ```
#[derive(Debug, Default)]
pub struct SharedTracer<T>(Rc<RefCell<T>>);

impl<T> Clone for SharedTracer<T> {
    fn clone(&self) -> Self {
        SharedTracer(Rc::clone(&self.0))
    }
}

impl<T: Tracer> SharedTracer<T> {
    /// Wraps `inner` in a shared handle.
    pub fn new(inner: T) -> Self {
        SharedTracer(Rc::new(RefCell::new(inner)))
    }

    /// Runs `f` with shared access to the inner tracer.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from within `record` (never happens in
    /// engine use: engines call `record` and return).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.0.borrow())
    }
}

impl<T: Tracer> Tracer for SharedTracer<T> {
    fn enabled(&self) -> bool {
        self.0.borrow().enabled()
    }

    fn record(&mut self, event: TraceEvent) {
        self.0.borrow_mut().record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled() {
        let mut noop = NoopTracer;
        assert!(!noop.enabled());
        noop.record(TraceEvent::RoundBegin { round: 1 });
    }

    #[test]
    fn ring_keeps_the_last_n() {
        let mut ring = RingTracer::new(3);
        for round in 1..=10 {
            ring.record(TraceEvent::RoundBegin { round });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        let rounds: Vec<u64> = ring.events().map(TraceEvent::round).collect();
        assert_eq!(rounds, vec![8, 9, 10]);
    }

    #[test]
    fn ring_capacity_zero_is_clamped_to_one() {
        let mut ring = RingTracer::new(0);
        ring.record(TraceEvent::RoundBegin { round: 1 });
        ring.record(TraceEvent::RoundBegin { round: 2 });
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
    }

    #[cfg(feature = "jsonl")]
    #[test]
    fn jsonl_tracer_writes_one_line_per_event() {
        let mut tracer = JsonlTracer::in_memory();
        tracer.record(TraceEvent::RoundBegin { round: 1 });
        tracer.record(TraceEvent::RoundEnd {
            round: 1,
            deliveries: 4,
        });
        let text = tracer.to_jsonl();
        assert_eq!(tracer.lines(), 2);
        assert_eq!(
            text,
            "{\"ev\":\"round_begin\",\"round\":1}\n{\"ev\":\"round_end\",\"round\":1,\"deliveries\":4}\n"
        );
    }

    #[cfg(feature = "jsonl")]
    #[test]
    fn ring_jsonl_notes_the_dropped_prefix() {
        let mut ring = RingTracer::new(1);
        ring.record(TraceEvent::RoundBegin { round: 1 });
        ring.record(TraceEvent::RoundBegin { round: 2 });
        let text = ring.to_jsonl();
        assert!(text.starts_with("{\"ev\":\"window\",\"dropped\":1}\n"));
        assert!(text.contains("\"round\":2"));
    }

    #[test]
    fn fanout_duplicates_and_shared_exposes() {
        let a = SharedTracer::new(RingTracer::new(8));
        let b = SharedTracer::new(RingTracer::new(8));
        let mut fan = Fanout(a.clone(), b.clone());
        fan.record(TraceEvent::RoundBegin { round: 1 });
        assert_eq!(a.with(RingTracer::len), 1);
        assert_eq!(b.with(RingTracer::len), 1);
    }

    #[test]
    fn boxed_tracer_forwards() {
        let shared = SharedTracer::new(RingTracer::new(4));
        let mut boxed: Box<dyn Tracer> = Box::new(shared.clone());
        assert!(boxed.enabled());
        boxed.record(TraceEvent::RoundBegin { round: 2 });
        assert_eq!(shared.with(RingTracer::len), 1);
    }
}
