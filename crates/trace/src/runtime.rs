//! Wall-clock runtime metrics: timing spans and a thread-safe registry.
//!
//! This module is the **second** registry of the crate, deliberately kept
//! apart from the deterministic [`Metrics`](crate::Metrics) registry that
//! folds the trace event stream. The event stream must stay byte-identical
//! per seed, so nothing in it may depend on the clock; runtime metrics are
//! the opposite — they exist *only* to measure wall-clock time and real
//! transport volume. The two never mix: a [`RuntimeMetrics`] is not a
//! [`Tracer`](crate::Tracer), cannot be fanned into the event stream, and
//! no engine writes trace events from it (DESIGN.md §10).
//!
//! The registry is shared across threads (a cluster node's round loop, its
//! reader threads, and an HTTP exposition endpoint all touch it), so the
//! working handle is [`SharedRuntimeMetrics`], a cheap-to-clone
//! `Arc<Mutex<_>>`. All series live in `BTreeMap`s keyed by the full
//! metric name (labels included), so rendering is deterministic given the
//! same contents.
//!
//! # Examples
//!
//! ```
//! use uba_trace::SharedRuntimeMetrics;
//!
//! let rt = SharedRuntimeMetrics::new();
//! rt.inc("net_frames_sent_total{peer=\"5\"}");
//! rt.set_gauge("net_history_rounds_retained", 64);
//! {
//!     let _span = rt.span("net_round_phase_micros{phase=\"send\"}");
//!     // ... timed work; the span records on drop ...
//! }
//! let text = rt.render_prometheus();
//! assert!(text.contains("net_frames_sent_total{peer=\"5\"} 1"));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::Histogram;

/// Default bucket bounds for microsecond timing histograms: roughly
/// log-spaced from 10µs to 5s, matching localhost round latencies at the
/// low end and barrier timeouts at the high end.
pub const TIMING_BUCKETS_US: &[u64] = &[
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    500_000, 1_000_000, 5_000_000,
];

/// A started monotonic clock; the read side of a [`Span`], usable directly
/// when the measured region does not nest lexically.
///
/// # Examples
///
/// ```
/// use uba_trace::Stopwatch;
///
/// let sw = Stopwatch::start();
/// let micros = sw.elapsed_micros();
/// assert!(micros < 1_000_000);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Time elapsed since [`start`](Self::start).
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed microseconds, saturated into `u64` (584 millennia of
    /// headroom — the cast is for histogram convenience, not a real limit).
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Builds a full metric name from a base and label pairs, with Prometheus
/// label-value escaping (`\` → `\\`, `"` → `\"`, newline → `\n`) applied.
///
/// # Examples
///
/// ```
/// use uba_trace::metric_name;
///
/// assert_eq!(metric_name("up", &[]), "up");
/// assert_eq!(
///     metric_name("net_bytes_sent_total", &[("peer", "17")]),
///     "net_bytes_sent_total{peer=\"17\"}"
/// );
/// ```
pub fn metric_name(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut out = String::with_capacity(base.len() + 16 * labels.len());
    out.push_str(base);
    out.push('{');
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        push_escaped_label(&mut out, value);
        out.push('"');
    }
    out.push('}');
    out
}

/// Escapes a label value per the Prometheus text format 0.0.4.
fn push_escaped_label(out: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

/// Splits a full metric name into its base (family) and the inner label
/// list (without braces), if any.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(open) => {
            let labels = name[open + 1..].strip_suffix('}').unwrap_or("");
            (&name[..open], Some(labels))
        }
        None => (name, None),
    }
}

/// Wall-clock counters, gauges, and microsecond timing histograms.
///
/// Keys are full metric names — base plus optional `{label="value"}` pairs
/// built with [`metric_name`] — so one map holds every series of a family
/// and `BTreeMap` ordering makes [`render_prometheus`](Self::render_prometheus)
/// deterministic for a given registry state.
#[derive(Debug, Clone, Default)]
pub struct RuntimeMetrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    timings: BTreeMap<String, Histogram>,
}

impl RuntimeMetrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(slot) = self.counters.get_mut(name) {
            *slot = slot.saturating_add(delta);
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Increments the named counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        if let Some(slot) = self.gauges.get_mut(name) {
            *slot = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Records one microsecond sample into the named timing histogram
    /// (created on first use with [`TIMING_BUCKETS_US`]).
    pub fn observe_micros(&mut self, name: &str, micros: u64) {
        if let Some(histogram) = self.timings.get_mut(name) {
            histogram.record(micros);
        } else {
            let mut histogram = Histogram::new(TIMING_BUCKETS_US);
            histogram.record(micros);
            self.timings.insert(name.to_string(), histogram);
        }
    }

    /// Value of the named counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of the named gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The named timing histogram, if any sample was recorded.
    pub fn timing(&self, name: &str) -> Option<&Histogram> {
        self.timings.get(name)
    }

    /// Iterates all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates all timing histograms in name order.
    pub fn timings(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.timings.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// other's value, histograms merge sample-by-sample via their bucket
    /// counts (both sides use [`TIMING_BUCKETS_US`], so bounds agree).
    pub fn merge(&mut self, other: &RuntimeMetrics) {
        for (name, &value) in &other.counters {
            self.add(name, value);
        }
        for (name, &value) in &other.gauges {
            self.set_gauge(name, value);
        }
        for (name, histogram) in &other.timings {
            let slot = self
                .timings
                .entry(name.clone())
                .or_insert_with(|| Histogram::new(TIMING_BUCKETS_US));
            slot.merge(histogram);
        }
    }

    /// Renders the registry in the Prometheus text exposition format 0.0.4:
    /// one `# TYPE` header per family, cumulative `le` buckets plus `_sum`
    /// and `_count` for histograms, series in lexicographic name order.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";
        for (name, &value) in &self.counters {
            let (family, _) = split_labels(name);
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} counter");
                last_family = family;
            }
            let _ = writeln!(out, "{name} {value}");
        }
        last_family = "";
        for (name, &value) in &self.gauges {
            let (family, _) = split_labels(name);
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} gauge");
                last_family = family;
            }
            let _ = writeln!(out, "{name} {value}");
        }
        last_family = "";
        for (name, histogram) in &self.timings {
            let (family, labels) = split_labels(name);
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} histogram");
                last_family = family;
            }
            let mut cumulative = 0u64;
            for (bound, count) in histogram.buckets() {
                cumulative += count;
                let le = match bound {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                match labels {
                    Some(inner) if !inner.is_empty() => {
                        let _ =
                            writeln!(out, "{family}_bucket{{{inner},le=\"{le}\"}} {cumulative}");
                    }
                    _ => {
                        let _ = writeln!(out, "{family}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                }
            }
            let suffix = |s: &str| match labels {
                Some(inner) if !inner.is_empty() => format!("{family}{s}{{{inner}}}"),
                _ => format!("{family}{s}"),
            };
            let _ = writeln!(out, "{} {}", suffix("_sum"), histogram.sum());
            let _ = writeln!(out, "{} {}", suffix("_count"), histogram.count());
        }
        out
    }
}

/// A cheap-to-clone, thread-safe handle to a [`RuntimeMetrics`] registry.
///
/// Every writer (round loop, reader threads, engines) and every reader
/// (HTTP exposition, bench report) holds a clone; a poisoned lock is
/// recovered rather than propagated, because dropping metrics on a panic
/// elsewhere would only hide the postmortem.
#[derive(Debug, Clone, Default)]
pub struct SharedRuntimeMetrics(Arc<Mutex<RuntimeMetrics>>);

impl SharedRuntimeMetrics {
    /// Creates a handle to a fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with the registry locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut RuntimeMetrics) -> R) -> R {
        let mut guard = self.0.lock().unwrap_or_else(|poison| poison.into_inner());
        f(&mut guard)
    }

    /// Adds `delta` to the named counter.
    pub fn add(&self, name: &str, delta: u64) {
        self.with(|m| m.add(name, delta));
    }

    /// Increments the named counter by one.
    pub fn inc(&self, name: &str) {
        self.with(|m| m.inc(name));
    }

    /// Sets the named gauge.
    pub fn set_gauge(&self, name: &str, value: u64) {
        self.with(|m| m.set_gauge(name, value));
    }

    /// Records one microsecond sample into the named timing histogram.
    pub fn observe_micros(&self, name: &str, micros: u64) {
        self.with(|m| m.observe_micros(name, micros));
    }

    /// Starts a timing span that records its elapsed microseconds into the
    /// named histogram when dropped.
    pub fn span(&self, name: impl Into<String>) -> Span {
        Span {
            registry: self.clone(),
            name: name.into(),
            stopwatch: Stopwatch::start(),
        }
    }

    /// A point-in-time copy of the registry.
    pub fn snapshot(&self) -> RuntimeMetrics {
        self.with(|m| m.clone())
    }

    /// Renders the current registry state in Prometheus text format.
    pub fn render_prometheus(&self) -> String {
        self.with(|m| m.render_prometheus())
    }
}

/// An RAII timing span: created via [`SharedRuntimeMetrics::span`], it
/// records the wall-clock microseconds between construction and drop into
/// its histogram.
#[derive(Debug)]
pub struct Span {
    registry: SharedRuntimeMetrics,
    name: String,
    stopwatch: Stopwatch,
}

impl Span {
    /// Elapsed microseconds so far (the span keeps running).
    pub fn elapsed_micros(&self) -> u64 {
        self.stopwatch.elapsed_micros()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let micros = self.stopwatch.elapsed_micros();
        self.registry.observe_micros(&self.name, micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_timings_round_trip() {
        let mut m = RuntimeMetrics::new();
        m.inc("a_total");
        m.add("a_total", 2);
        m.set_gauge("g", 7);
        m.set_gauge("g", 9);
        m.observe_micros("t_micros", 40);
        assert_eq!(m.counter("a_total"), 3);
        assert_eq!(m.gauge("g"), Some(9));
        assert_eq!(m.timing("t_micros").unwrap().count(), 1);
        assert_eq!(m.counter("never"), 0);
    }

    #[test]
    fn metric_name_escapes_label_values() {
        let name = metric_name("m", &[("k", "a\\b\"c\nd")]);
        assert_eq!(name, "m{k=\"a\\\\b\\\"c\\nd\"}");
        let mut m = RuntimeMetrics::new();
        m.inc(&name);
        let text = m.render_prometheus();
        assert!(text.contains("m{k=\"a\\\\b\\\"c\\nd\"} 1"), "got: {text}");
    }

    #[test]
    fn prometheus_counters_share_one_type_header_per_family() {
        let mut m = RuntimeMetrics::new();
        m.inc(&metric_name("net_frames_sent_total", &[("peer", "2")]));
        m.inc(&metric_name("net_frames_sent_total", &[("peer", "1")]));
        m.inc("net_reconnects_total");
        let text = m.render_prometheus();
        assert_eq!(
            text.matches("# TYPE net_frames_sent_total counter").count(),
            1
        );
        assert_eq!(
            text.matches("# TYPE net_reconnects_total counter").count(),
            1
        );
        // Label sets are rendered in deterministic (sorted) order.
        let one = text.find("peer=\"1\"").unwrap();
        let two = text.find("peer=\"2\"").unwrap();
        assert!(one < two);
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative_with_inf() {
        let mut m = RuntimeMetrics::new();
        // TIMING_BUCKETS_US starts 10, 25, 50, ...
        m.observe_micros("t_micros", 5); // le=10
        m.observe_micros("t_micros", 11); // le=25
        m.observe_micros("t_micros", 9_999_999); // overflow
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE t_micros histogram"));
        assert!(text.contains("t_micros_bucket{le=\"10\"} 1"), "got: {text}");
        assert!(text.contains("t_micros_bucket{le=\"25\"} 2"));
        assert!(text.contains("t_micros_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("t_micros_sum 10000015"));
        assert!(text.contains("t_micros_count 3"));
    }

    #[test]
    fn prometheus_histogram_with_labels_splices_le() {
        let mut m = RuntimeMetrics::new();
        m.observe_micros(&metric_name("phase_micros", &[("phase", "send")]), 3);
        let text = m.render_prometheus();
        assert!(
            text.contains("phase_micros_bucket{phase=\"send\",le=\"10\"} 1"),
            "got: {text}"
        );
        assert!(text.contains("phase_micros_sum{phase=\"send\"} 3"));
        assert!(text.contains("phase_micros_count{phase=\"send\"} 1"));
    }

    #[test]
    fn rendering_is_deterministic_and_insertion_order_independent() {
        let mut a = RuntimeMetrics::new();
        let mut b = RuntimeMetrics::new();
        for m in [&mut a, &mut b] {
            m.observe_micros("t_micros", 100);
        }
        a.inc("x_total");
        a.inc("b_total");
        b.inc("b_total");
        b.inc("x_total");
        assert_eq!(a.render_prometheus(), b.render_prometheus());
        assert_eq!(a.render_prometheus(), a.render_prometheus());
    }

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let mut a = RuntimeMetrics::new();
        let mut b = RuntimeMetrics::new();
        a.add("c_total", 2);
        b.add("c_total", 3);
        a.observe_micros("t_micros", 5);
        b.observe_micros("t_micros", 500);
        b.set_gauge("g", 1);
        a.merge(&b);
        assert_eq!(a.counter("c_total"), 5);
        assert_eq!(a.timing("t_micros").unwrap().count(), 2);
        assert_eq!(a.timing("t_micros").unwrap().sum(), 505);
        assert_eq!(a.gauge("g"), Some(1));
    }

    #[test]
    fn shared_handle_spans_record_on_drop() {
        let rt = SharedRuntimeMetrics::new();
        {
            let _span = rt.span("work_micros");
        }
        let snapshot = rt.snapshot();
        assert_eq!(snapshot.timing("work_micros").unwrap().count(), 1);
    }

    #[test]
    fn shared_handle_is_usable_across_threads() {
        let rt = SharedRuntimeMetrics::new();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rt = rt.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        rt.inc("hits_total");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(rt.snapshot().counter("hits_total"), 400);
    }
}
