//! A durable per-node round journal for crash-recovery.
//!
//! A networked node (`uba-net`) appends one [`JournalEntry`] per committed
//! round: the round number, whether the node had decided by the end of it,
//! and the inbox the barrier released for the *next* round (sender id plus
//! raw payload bytes, in delivery order). Each append is flushed and
//! fsync'd before the node proceeds, so after a crash the journal holds a
//! prefix of the run that is complete up to — at worst — a torn final line.
//!
//! Recovery ([`RoundJournal::recover`]) parses the file back, tolerating
//! exactly one torn line at the end (a write cut short by the crash): the
//! torn tail is dropped and reported via [`JournalRecovery::torn`], and
//! [`RoundJournal::resume`] truncates it so appends continue from the last
//! complete entry. Garbage anywhere *before* the final line is corruption,
//! not a crash artifact, and fails with [`std::io::ErrorKind::InvalidData`].
//!
//! The format is JSONL with a fixed key order, one self-contained line per
//! entry, so a journal is greppable and diffable like every other trace
//! artifact. Payload bytes are hex-encoded; the journal layer knows nothing
//! about message types (ids are raw `u64`s, payloads are opaque bytes),
//! keeping this crate below the simulator in the dependency order.
//!
//! ```text
//! {"v":1,"node":7}
//! {"round":1,"decided":false,"inbox":[[3,"0a00"],[7,"0b01"]]}
//! {"round":2,"decided":true,"inbox":[[3,"0c02"]]}
//! ```
//!
//! # Examples
//!
//! ```no_run
//! use uba_trace::{JournalEntry, RoundJournal};
//!
//! let mut journal = RoundJournal::create("node-7.journal", 7)?;
//! journal.append(&JournalEntry {
//!     round: 1,
//!     decided: false,
//!     inbox: vec![(3, vec![0x0a]), (7, vec![0x0b])],
//! })?;
//!
//! let recovery = RoundJournal::recover("node-7.journal")?;
//! assert_eq!(recovery.node, 7);
//! assert_eq!(recovery.entries.len(), 1);
//! assert!(!recovery.torn);
//! # std::io::Result::Ok(())
//! ```

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Journal format version written in the header line.
const JOURNAL_VERSION: u64 = 1;

/// One committed round: what the node needs to re-execute the run
/// deterministically past this point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The 1-based round this entry commits.
    pub round: u64,
    /// Whether the node had decided (terminated) by the end of the round.
    pub decided: bool,
    /// The inbox released by this round's barrier — the messages that will
    /// be consumed at the start of round `round + 1` — as
    /// `(sender id, payload bytes)` in delivery order.
    pub inbox: Vec<(u64, Vec<u8>)>,
}

/// The result of reading a journal back after a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecovery {
    /// The node id recorded in the journal header.
    pub node: u64,
    /// Complete entries, in round order.
    pub entries: Vec<JournalEntry>,
    /// Whether a torn (incomplete or unterminated) final line was dropped.
    pub torn: bool,
}

impl JournalRecovery {
    /// The last committed round, or `None` for an empty journal.
    pub fn last_round(&self) -> Option<u64> {
        self.entries.last().map(|e| e.round)
    }

    /// The first round at which the node was recorded decided, if any.
    pub fn decided_round(&self) -> Option<u64> {
        self.entries.iter().find(|e| e.decided).map(|e| e.round)
    }
}

/// An append-only, fsync-on-commit round journal (see the module docs).
#[derive(Debug)]
pub struct RoundJournal {
    file: File,
    path: PathBuf,
    node: u64,
    last_round: Option<u64>,
}

impl RoundJournal {
    /// Creates (or truncates) the journal at `path` for `node`, writing and
    /// syncing the header line.
    pub fn create(path: impl AsRef<Path>, node: u64) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        writeln!(file, "{{\"v\":{JOURNAL_VERSION},\"node\":{node}}}")?;
        file.sync_data()?;
        Ok(RoundJournal {
            file,
            path,
            node,
            last_round: None,
        })
    }

    /// The node id this journal belongs to.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// The path the journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The last round committed through this handle (or recovered by
    /// [`resume`](RoundJournal::resume)).
    pub fn last_round(&self) -> Option<u64> {
        self.last_round
    }

    /// Appends one entry, flushes, and fsyncs before returning — the commit
    /// point of a round. Rounds must advance by exactly one per append.
    pub fn append(&mut self, entry: &JournalEntry) -> io::Result<()> {
        if let Some(last) = self.last_round {
            if entry.round != last + 1 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "journal round must advance by one: last {last}, got {}",
                        entry.round
                    ),
                ));
            }
        }
        let mut line = String::with_capacity(64 + entry.inbox.len() * 24);
        line.push_str(&format!(
            "{{\"round\":{},\"decided\":{},\"inbox\":[",
            entry.round, entry.decided
        ));
        for (i, (from, payload)) in entry.inbox.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push('[');
            line.push_str(&from.to_string());
            line.push_str(",\"");
            push_hex(&mut line, payload);
            line.push_str("\"]");
        }
        line.push_str("]}");
        writeln!(self.file, "{line}")?;
        self.file.flush()?;
        self.file.sync_data()?;
        self.last_round = Some(entry.round);
        Ok(())
    }

    /// Reads a journal back, tolerating a torn final line (see module docs).
    pub fn recover(path: impl AsRef<Path>) -> io::Result<JournalRecovery> {
        let mut bytes = Vec::new();
        File::open(path.as_ref())?.read_to_end(&mut bytes)?;
        parse_journal(&bytes)
    }

    /// Recovers the journal, truncates any torn tail, and reopens it for
    /// appending — the restart path: replay the entries, then keep
    /// journaling into the same file.
    pub fn resume(path: impl AsRef<Path>) -> io::Result<(Self, JournalRecovery)> {
        let path = path.as_ref().to_path_buf();
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let recovery = parse_journal(&bytes)?;
        let keep = complete_prefix_len(&bytes, 1 + recovery.entries.len());
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(keep as u64)?;
        file.sync_data()?;
        let mut file = file;
        use std::io::Seek;
        file.seek(io::SeekFrom::End(0))?;
        let journal = RoundJournal {
            file,
            path,
            node: recovery.node,
            last_round: recovery.last_round(),
        };
        Ok((journal, recovery))
    }
}

/// Byte length of the first `lines` newline-terminated lines of `bytes`.
fn complete_prefix_len(bytes: &[u8], lines: usize) -> usize {
    let mut seen = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            seen += 1;
            if seen == lines {
                return i + 1;
            }
        }
    }
    bytes.len()
}

fn push_hex(out: &mut String, bytes: &[u8]) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0x0f) as usize] as char);
    }
}

fn corrupt(detail: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt journal: {detail}"),
    )
}

/// Parses the whole journal; only the final line may fail to parse (torn).
fn parse_journal(bytes: &[u8]) -> io::Result<JournalRecovery> {
    let text = String::from_utf8_lossy(bytes);
    let terminated = text.ends_with('\n');
    let mut lines: Vec<&str> = text.split('\n').collect();
    if terminated {
        lines.pop(); // the empty segment after the final newline
    }
    if lines.is_empty() {
        return Err(corrupt("empty file"));
    }
    let node = parse_header(lines[0]).ok_or_else(|| corrupt("unreadable header"))?;
    let body = &lines[1..];
    let mut entries: Vec<JournalEntry> = Vec::new();
    let mut torn = false;
    for (i, line) in body.iter().enumerate() {
        let last = i + 1 == body.len();
        // A complete append always ends in a newline; an unterminated final
        // line is a write the crash cut short, whether or not it happens to
        // parse, so it is dropped as torn.
        let parsed = if last && !terminated {
            None
        } else {
            parse_entry(line)
        };
        match parsed {
            Some(entry) => {
                if let Some(prev) = entries.last() {
                    if entry.round != prev.round + 1 {
                        return Err(corrupt(&format!(
                            "round {} follows round {}",
                            entry.round, prev.round
                        )));
                    }
                }
                entries.push(entry);
            }
            None if last => {
                torn = true;
            }
            None => return Err(corrupt(&format!("unreadable line {}", i + 2))),
        }
    }
    Ok(JournalRecovery {
        node,
        entries,
        torn,
    })
}

/// A strict cursor over one journal line.
struct Cursor<'a>(&'a str);

impl<'a> Cursor<'a> {
    fn lit(&mut self, token: &str) -> Option<()> {
        self.0 = self.0.strip_prefix(token)?;
        Some(())
    }

    fn u64(&mut self) -> Option<u64> {
        let digits = self.0.len()
            - self
                .0
                .trim_start_matches(|c: char| c.is_ascii_digit())
                .len();
        if digits == 0 || digits > 20 {
            return None;
        }
        let (num, rest) = self.0.split_at(digits);
        self.0 = rest;
        num.parse().ok()
    }

    fn bool(&mut self) -> Option<bool> {
        if self.lit("true").is_some() {
            Some(true)
        } else if self.lit("false").is_some() {
            Some(false)
        } else {
            None
        }
    }

    fn hex(&mut self) -> Option<Vec<u8>> {
        let len = self.0.len()
            - self
                .0
                .trim_start_matches(|c: char| c.is_ascii_hexdigit() && !c.is_ascii_uppercase())
                .len();
        if !len.is_multiple_of(2) {
            return None;
        }
        let (hex, rest) = self.0.split_at(len);
        self.0 = rest;
        let digit = |c: u8| match c {
            b'0'..=b'9' => c - b'0',
            b'a'..=b'f' => c - b'a' + 10,
            _ => unreachable!(),
        };
        Some(
            hex.as_bytes()
                .chunks(2)
                .map(|pair| (digit(pair[0]) << 4) | digit(pair[1]))
                .collect(),
        )
    }

    fn done(&self) -> bool {
        self.0.is_empty()
    }
}

fn parse_header(line: &str) -> Option<u64> {
    let mut c = Cursor(line);
    c.lit("{\"v\":")?;
    let version = c.u64()?;
    if version != JOURNAL_VERSION {
        return None;
    }
    c.lit(",\"node\":")?;
    let node = c.u64()?;
    c.lit("}")?;
    c.done().then_some(node)
}

fn parse_entry(line: &str) -> Option<JournalEntry> {
    let mut c = Cursor(line);
    c.lit("{\"round\":")?;
    let round = c.u64()?;
    c.lit(",\"decided\":")?;
    let decided = c.bool()?;
    c.lit(",\"inbox\":[")?;
    let mut inbox = Vec::new();
    if c.lit("]").is_none() {
        loop {
            c.lit("[")?;
            let from = c.u64()?;
            c.lit(",\"")?;
            let payload = c.hex()?;
            c.lit("\"]")?;
            inbox.push((from, payload));
            if c.lit(",").is_none() {
                break;
            }
        }
        c.lit("]")?;
    }
    c.lit("}")?;
    if !c.done() {
        return None;
    }
    Some(JournalEntry {
        round,
        decided,
        inbox,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("uba-journal-{}-{name}.jsonl", std::process::id()));
        dir
    }

    fn entry(round: u64, decided: bool) -> JournalEntry {
        JournalEntry {
            round,
            decided,
            inbox: vec![(3, vec![0x0a, round as u8]), (9, Vec::new())],
        }
    }

    #[test]
    fn append_and_recover_round_trip() {
        let path = temp_path("roundtrip");
        let mut journal = RoundJournal::create(&path, 7).unwrap();
        journal.append(&entry(1, false)).unwrap();
        journal.append(&entry(2, true)).unwrap();
        let recovery = RoundJournal::recover(&path).unwrap();
        assert_eq!(recovery.node, 7);
        assert_eq!(recovery.entries, vec![entry(1, false), entry(2, true)]);
        assert!(!recovery.torn);
        assert_eq!(recovery.last_round(), Some(2));
        assert_eq!(recovery.decided_round(), Some(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_enforces_consecutive_rounds() {
        let path = temp_path("monotonic");
        let mut journal = RoundJournal::create(&path, 1).unwrap();
        journal.append(&entry(1, false)).unwrap();
        let err = journal.append(&entry(3, false)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_dropped() {
        let path = temp_path("torn");
        let mut journal = RoundJournal::create(&path, 7).unwrap();
        journal.append(&entry(1, false)).unwrap();
        journal.append(&entry(2, false)).unwrap();
        // Cut the last line mid-way, as a crash during the write would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        let recovery = RoundJournal::recover(&path).unwrap();
        assert!(recovery.torn);
        assert_eq!(recovery.entries, vec![entry(1, false)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unterminated_but_parseable_final_line_is_still_torn() {
        let path = temp_path("unterminated");
        let mut journal = RoundJournal::create(&path, 7).unwrap();
        journal.append(&entry(1, false)).unwrap();
        journal.append(&entry(2, false)).unwrap();
        // Drop only the trailing newline: the line parses, but a complete
        // append always ends in a newline, so it cannot be trusted.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        let recovery = RoundJournal::recover(&path).unwrap();
        assert!(recovery.torn);
        assert_eq!(recovery.entries, vec![entry(1, false)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_tail_is_torn_but_garbage_mid_file_is_corruption() {
        let path = temp_path("garbage");
        let mut journal = RoundJournal::create(&path, 7).unwrap();
        journal.append(&entry(1, false)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"round\":2,\xff garbage\n");
        std::fs::write(&path, &bytes).unwrap();
        let recovery = RoundJournal::recover(&path).unwrap();
        assert!(recovery.torn);
        assert_eq!(recovery.entries.len(), 1);

        // The same garbage followed by a valid line is corruption.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"round\":2,\"decided\":false,\"inbox\":[]}\n");
        std::fs::write(&path, &bytes).unwrap();
        let err = RoundJournal::recover(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_consecutive_rounds_are_corruption() {
        let path = temp_path("skip");
        let mut journal = RoundJournal::create(&path, 7).unwrap();
        journal.append(&entry(1, false)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"round\":3,\"decided\":false,\"inbox\":[]}\n");
        bytes.extend_from_slice(b"{\"round\":4,\"decided\":false,\"inbox\":[]}\n");
        std::fs::write(&path, &bytes).unwrap();
        let err = RoundJournal::recover(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_truncates_the_torn_tail_and_continues() {
        let path = temp_path("resume");
        let mut journal = RoundJournal::create(&path, 7).unwrap();
        journal.append(&entry(1, false)).unwrap();
        journal.append(&entry(2, false)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let (mut journal, recovery) = RoundJournal::resume(&path).unwrap();
        assert!(recovery.torn);
        assert_eq!(recovery.last_round(), Some(1));
        assert_eq!(journal.last_round(), Some(1));
        // Appending continues right after the surviving prefix.
        journal.append(&entry(2, true)).unwrap();
        let recovery = RoundJournal::recover(&path).unwrap();
        assert!(!recovery.torn);
        assert_eq!(recovery.entries, vec![entry(1, false), entry(2, true)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hex_round_trips_all_byte_values() {
        let path = temp_path("hex");
        let mut journal = RoundJournal::create(&path, 7).unwrap();
        let payload: Vec<u8> = (0..=255).collect();
        journal
            .append(&JournalEntry {
                round: 1,
                decided: false,
                inbox: vec![(1, payload.clone())],
            })
            .unwrap();
        let recovery = RoundJournal::recover(&path).unwrap();
        assert_eq!(recovery.entries[0].inbox[0].1, payload);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn uppercase_hex_is_rejected() {
        assert!(parse_entry("{\"round\":1,\"decided\":false,\"inbox\":[[1,\"AB\"]]}").is_none());
        assert!(parse_entry("{\"round\":1,\"decided\":false,\"inbox\":[[1,\"abc\"]]}").is_none());
    }

    #[test]
    fn header_rejects_unknown_versions() {
        assert_eq!(parse_header("{\"v\":1,\"node\":9}"), Some(9));
        assert_eq!(parse_header("{\"v\":2,\"node\":9}"), None);
        assert_eq!(parse_header("{\"v\":1,\"node\":9} "), None);
    }
}
