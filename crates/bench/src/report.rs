//! `bench-report` — the committed performance trajectory.
//!
//! Re-runs the T11-class workloads (the deterministic sim/net equivalence
//! cells) with the wall-clock runtime registry attached, folds the
//! resulting metrics into two schema-versioned JSON documents —
//! `BENCH_sim.json` (engine-side) and `BENCH_net.json` (transport-side) at
//! the repository root — and compares fresh runs against the committed
//! documents with explicit tolerances.
//!
//! Every workload records two kinds of fields, and the split is the whole
//! design:
//!
//! * **exact** — seed-determined protocol facts (rounds to decide, deciders,
//!   envelopes delivered, duplicate drops, frames/bytes on the wire for a
//!   healthy run). A mismatch is a behavioural change, never noise, and
//!   fails the check outright.
//! * **measured** — wall-clock microseconds. Machine- and load-dependent,
//!   so the check only fails on an order-of-magnitude regression
//!   (`new > old * 10 + 1000`); committed values are a trajectory to read,
//!   not a contract to pin.
//!
//! The JSON is hand-rolled and hand-parsed like everything else in the
//! workspace (no dependencies): sorted keys, no floats, so regenerating on
//! the same machine produces byte-stable diffs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use uba_net::run_local_cluster_with_metrics;
use uba_sim::{NodeId, Process, SyncEngine};
use uba_trace::{NoopTracer, RuntimeMetrics, SharedRuntimeMetrics};

use crate::experiments::t11_net::{
    consensus_cluster, net_config, reliable_cluster, CONSENSUS_CELLS, RELIABLE_CELLS,
};
use crate::experiments::t13_wan;
use crate::experiments::t14_logd;
use crate::experiments::t15_byzantine;
use crate::Table;

/// Schema tag of the committed documents; bump on field changes.
pub const BENCH_SCHEMA: &str = "uba-bench-v1";

/// Measured (wall-clock) fields may regress this far before the check
/// fails: an order of magnitude, plus an absolute floor so microsecond
/// jitter on near-zero values never trips it.
const MEASURED_FACTOR: u64 = 10;
const MEASURED_SLACK_US: u64 = 1_000;

/// One benchmarked workload: a named cell plus its exact and measured
/// fields (both sorted for stable JSON).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Cell name, e.g. `consensus-n4-seed42`.
    pub name: String,
    /// Seed-determined fields, compared exactly.
    pub exact: BTreeMap<&'static str, u64>,
    /// Wall-clock fields, compared with tolerance.
    pub measured: BTreeMap<&'static str, u64>,
}

/// A full report: one kind (`sim` or `net`), many workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchReport {
    /// Which side of the stack was measured: `"sim"` or `"net"`.
    pub kind: &'static str,
    /// The workloads, in cell order.
    pub workloads: Vec<Workload>,
}

/// The repository root, resolved from this crate's manifest.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The committed document path for one report kind.
pub fn bench_path(kind: &str) -> PathBuf {
    repo_root().join(format!("BENCH_{kind}.json"))
}

/// The deterministic workload cells: `(algo, n, seed)` — the same cells
/// experiment T11 locks against the engine.
fn cells() -> Vec<(&'static str, usize, u64)> {
    CONSENSUS_CELLS
        .iter()
        .map(|&(n, seed)| ("consensus", n, seed))
        .chain(
            RELIABLE_CELLS
                .iter()
                .map(|&(n, seed)| ("reliable", n, seed)),
        )
        .collect()
}

/// Runs every cell on the [`SyncEngine`] with the runtime registry attached
/// and folds the `sim_*` metrics into a report.
pub fn run_sim_report() -> BenchReport {
    let workloads = cells()
        .into_iter()
        .map(|(algo, n, seed)| {
            let registry = SharedRuntimeMetrics::new();
            let (decided, rounds) = match algo {
                "consensus" => run_sim_cell(consensus_cluster(seed, n), &registry),
                "reliable" => run_sim_cell(reliable_cluster(seed, n), &registry),
                other => unreachable!("unknown algo {other}"),
            };
            let snapshot = registry.snapshot();
            let mut exact = BTreeMap::new();
            exact.insert("decided", decided);
            exact.insert("rounds", rounds);
            exact.insert(
                "envelopes_delivered",
                snapshot.counter("sim_envelopes_delivered_total"),
            );
            exact.insert(
                "duplicate_drops",
                snapshot.counter("sim_duplicate_drops_total"),
            );
            Workload {
                name: format!("{algo}-n{n}-seed{seed}"),
                exact,
                measured: timing_fields(&snapshot, "sim_round_micros"),
            }
        })
        .collect();
    BenchReport {
        kind: "sim",
        workloads,
    }
}

fn run_sim_cell<P: Process>(processes: Vec<P>, registry: &SharedRuntimeMetrics) -> (u64, u64) {
    let mut engine = SyncEngine::builder()
        .correct_many(processes)
        .runtime_metrics(registry.clone())
        .build();
    let completion = engine
        .run_to_completion(200)
        .expect("bench workload must complete");
    (
        completion.outputs.len() as u64,
        completion.last_decided_round(),
    )
}

/// Runs every cell over localhost TCP with one registry per member and
/// folds the merged `net_*` metrics into a report. The T11 equivalence
/// cells come first; the T13 fault-soak cells (seeded WAN impairment
/// through the [`FaultProxy`](uba_net::FaultProxy)) follow, committing the
/// decision-latency trajectory under loss and partitions.
pub fn run_net_report() -> BenchReport {
    let mut workloads: Vec<Workload> = cells()
        .into_iter()
        .map(|(algo, n, seed)| {
            let (merged, decided, rounds) = match algo {
                "consensus" => run_net_cell(|| consensus_cluster(seed, n)),
                "reliable" => run_net_cell(|| reliable_cluster(seed, n)),
                other => unreachable!("unknown algo {other}"),
            };
            let mut exact = BTreeMap::new();
            exact.insert("decided", decided);
            exact.insert("rounds", rounds);
            exact.insert("frames_sent", prefix_sum(&merged, "net_frames_sent_total"));
            exact.insert("bytes_sent", prefix_sum(&merged, "net_bytes_sent_total"));
            Workload {
                name: format!("{algo}-n{n}-seed{seed}"),
                exact,
                measured: timing_fields(&merged, "net_round_micros"),
            }
        })
        .collect();
    workloads.extend(run_t13_workloads());
    workloads.extend(run_t14_workloads());
    workloads.extend(run_t15_workloads());
    BenchReport {
        kind: "net",
        workloads,
    }
}

/// The T13 fault-soak workloads: the impaired profiles of the T13 grid.
/// Protocol facts (everyone decided, on one value) are exact; drop and
/// sever counts ride with the wall-clock fields because a slow machine's
/// reconnects could reshuffle the per-link frame indices the loss draws
/// key on.
fn run_t13_workloads() -> Vec<Workload> {
    t13_wan::CELLS
        .iter()
        .filter(|spec| matches!(spec.profile, "lossy" | "partition"))
        .map(|spec| {
            let cell = t13_wan::run_spec(spec);
            let algo = if spec.algo == "consensus" {
                "consensus"
            } else {
                "reliable"
            };
            let mut exact = BTreeMap::new();
            exact.insert("decided", cell.decided);
            exact.insert("agreement", u64::from(cell.agreement()));
            let mut measured = BTreeMap::new();
            measured.insert("round_micros_mean", cell.mean_us);
            measured.insert("round_micros_max", cell.max_us);
            measured.insert("frames_dropped", cell.dropped);
            measured.insert("frames_severed", cell.severed);
            Workload {
                name: format!("t13-{}-{algo}-n{}-seed{}", spec.profile, spec.n, spec.seed),
                exact,
                measured,
            }
        })
        .collect()
}

/// The T14 log-service workloads: the full shard grid of the T14 cells.
/// The service's promise (every submission acked, every ack ordered
/// exactly once, identical prefixes everywhere) is exact; ack latencies
/// and per-record run cost are wall-clock and ride in the tolerance-
/// checked measured fields.
fn run_t14_workloads() -> Vec<Workload> {
    t14_logd::CELLS
        .iter()
        .map(|spec| {
            let cell = t14_logd::run_spec(spec);
            let mut exact = BTreeMap::new();
            exact.insert("submitted", cell.submitted);
            exact.insert("acked", cell.acked);
            exact.insert("ordered", cell.ordered);
            exact.insert("agreement", u64::from(cell.agreement));
            exact.insert("exactly_once", u64::from(cell.exactly_once));
            let mut measured = BTreeMap::new();
            measured.insert("ack_micros_mean", cell.ack_mean_us);
            measured.insert("ack_micros_p99", cell.ack_p99_us);
            measured.insert("micros_per_record", cell.micros_per_record());
            measured.insert("load_micros", cell.load_micros);
            Workload {
                name: format!(
                    "t14-logd-n{}-shards{}-seed{}",
                    spec.n, spec.shards, spec.seed
                ),
                exact,
                measured,
            }
        })
        .collect()
}

/// The T15 Byzantine workloads: the full attack grid of the T15 cells.
/// The defense's promise — every honest member decided on one value, the
/// equivocation cell sim-identical, evictions exactly where the threat
/// model places them (zero for tolerated/omission scripts, one per honest
/// member for the flood) — is exact; strike totals and wall-clock ride in
/// the tolerance-checked measured fields (a slow machine can reshuffle how
/// many violating frames land before the eviction cuts the link).
fn run_t15_workloads() -> Vec<Workload> {
    t15_byzantine::CELLS
        .iter()
        .map(|spec| {
            let cell = t15_byzantine::run_spec(spec);
            let mut exact = BTreeMap::new();
            exact.insert("decided", cell.decided);
            exact.insert("agreement", u64::from(cell.agreement()));
            match spec.attack {
                "equivocate" => {
                    exact.insert("sim_match", u64::from(cell.matches_sim()));
                    exact.insert("evictions", cell.evictions);
                }
                "stall" => {
                    exact.insert("evictions", cell.evictions);
                }
                "flood" => {
                    exact.insert("evictions", cell.evictions);
                }
                _ => {}
            }
            let mut measured = BTreeMap::new();
            measured.insert("round_micros_mean", cell.mean_us);
            measured.insert("round_micros_max", cell.max_us);
            measured.insert("strikes", cell.misbehavior);
            measured.insert("timeouts", cell.timeouts);
            if !matches!(spec.attack, "equivocate" | "stall" | "flood") {
                measured.insert("evictions", cell.evictions);
            }
            Workload {
                name: format!(
                    "t15-{}-n{}-f{}-seed{}",
                    spec.attack,
                    spec.n_correct + spec.f,
                    spec.f,
                    spec.seed
                ),
                exact,
                measured,
            }
        })
        .collect()
}

fn run_net_cell<P, F>(factory: F) -> (RuntimeMetrics, u64, u64)
where
    P: Process + Send,
    P::Msg: uba_net::Wire,
    P::Output: Send,
    F: Fn() -> Vec<P>,
{
    let registries: BTreeMap<NodeId, SharedRuntimeMetrics> = factory()
        .iter()
        .map(|p| (p.id(), SharedRuntimeMetrics::new()))
        .collect();
    let reports = run_local_cluster_with_metrics(
        factory(),
        net_config(),
        |_| NoopTracer,
        |id| registries.get(&id).cloned(),
    )
    .expect("bench cluster must complete");
    let mut merged = RuntimeMetrics::new();
    for registry in registries.values() {
        merged.merge(&registry.snapshot());
    }
    let decided = reports.values().filter(|r| r.output.is_some()).count() as u64;
    let rounds = reports.values().map(|r| r.rounds).max().unwrap_or(0);
    (merged, decided, rounds)
}

/// `{base}_mean` / `{base}_max` from one timing histogram (0s if absent).
fn timing_fields(metrics: &RuntimeMetrics, base: &str) -> BTreeMap<&'static str, u64> {
    let mut fields = BTreeMap::new();
    let (mean, max) = metrics.timing(base).map_or((0, 0), |h| {
        let mean = if h.count() == 0 {
            0
        } else {
            h.sum() / h.count()
        };
        (mean, h.max())
    });
    fields.insert("round_micros_mean", mean);
    fields.insert("round_micros_max", max);
    fields
}

/// Sums every counter whose name starts with `prefix` (a labelled family).
fn prefix_sum(metrics: &RuntimeMetrics, prefix: &str) -> u64 {
    metrics
        .counters()
        .filter(|(name, _)| name.starts_with(prefix))
        .map(|(_, v)| v)
        .sum()
}

impl BenchReport {
    /// Renders the committed JSON document: sorted keys inside each
    /// workload, workloads in cell order, two-space indent, trailing
    /// newline — byte-stable across regenerations of identical data.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{BENCH_SCHEMA}\",");
        let _ = writeln!(out, "  \"kind\": \"{}\",", self.kind);
        out.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": \"{}\",", w.name);
            out.push_str("      \"exact\": {");
            push_fields(&mut out, &w.exact);
            out.push_str("},\n");
            out.push_str("      \"measured\": {");
            push_fields(&mut out, &w.measured);
            out.push_str("}\n");
            out.push_str(if i + 1 == self.workloads.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The human-readable table of one report.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            format!("bench-report ({})", self.kind),
            &["workload", "field", "value"],
        );
        for w in &self.workloads {
            for (field, value) in &w.exact {
                table.row(&[w.name.as_str(), field, &value.to_string()]);
            }
            for (field, value) in &w.measured {
                table.row(&[
                    w.name.as_str(),
                    &format!("{field} (measured)"),
                    &value.to_string(),
                ]);
            }
        }
        table
    }

    /// Compares `self` (a fresh run) against a committed JSON document.
    /// Exact fields must match; measured fields may drift but not regress
    /// past the order-of-magnitude tolerance. Returns the list of
    /// violations (empty = pass).
    ///
    /// # Errors
    ///
    /// Returns `Err` when the committed document cannot be parsed at all
    /// (corrupt JSON, wrong schema tag, wrong kind).
    pub fn check_against(&self, committed: &str) -> Result<Vec<String>, String> {
        let doc = parse_report(committed)?;
        if doc.kind != self.kind {
            return Err(format!(
                "committed kind {:?} does not match fresh run {:?}",
                doc.kind, self.kind
            ));
        }
        let mut violations = Vec::new();
        let committed_by_name: BTreeMap<&str, &ParsedWorkload> =
            doc.workloads.iter().map(|w| (w.name.as_str(), w)).collect();
        for fresh in &self.workloads {
            let Some(old) = committed_by_name.get(fresh.name.as_str()) else {
                violations.push(format!(
                    "workload {:?} missing from committed file",
                    fresh.name
                ));
                continue;
            };
            for (&field, &new) in &fresh.exact {
                match old.exact.get(field) {
                    Some(&expected) if expected == new => {}
                    Some(&expected) => violations.push(format!(
                        "{}: exact field {field} changed: committed {expected}, fresh {new}",
                        fresh.name
                    )),
                    None => violations.push(format!(
                        "{}: exact field {field} missing from committed file",
                        fresh.name
                    )),
                }
            }
            for (&field, &new) in &fresh.measured {
                match old.measured.get(field) {
                    Some(&expected) if new <= expected * MEASURED_FACTOR + MEASURED_SLACK_US => {}
                    Some(&expected) => violations.push(format!(
                        "{}: measured field {field} regressed: committed {expected}us, \
                         fresh {new}us (> {MEASURED_FACTOR}x + {MEASURED_SLACK_US}us)",
                        fresh.name
                    )),
                    None => violations.push(format!(
                        "{}: measured field {field} missing from committed file",
                        fresh.name
                    )),
                }
            }
        }
        for name in committed_by_name.keys() {
            if !self.workloads.iter().any(|w| w.name == *name) {
                violations.push(format!("committed workload {name:?} no longer runs"));
            }
        }
        Ok(violations)
    }
}

fn push_fields(out: &mut String, fields: &BTreeMap<&'static str, u64>) {
    for (i, (field, value)) in fields.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}\"{field}\": {value}");
    }
}

/// A committed workload as parsed back from disk (owned field names).
#[derive(Debug)]
struct ParsedWorkload {
    name: String,
    exact: BTreeMap<String, u64>,
    measured: BTreeMap<String, u64>,
}

#[derive(Debug)]
struct ParsedReport {
    kind: String,
    workloads: Vec<ParsedWorkload>,
}

/// Strict parser for exactly the subset of JSON [`BenchReport::to_json`]
/// emits: objects, arrays, strings without escapes, and unsigned integers.
/// Same hand-rolled-cursor idiom as the trace crate's journal parser.
fn parse_report(text: &str) -> Result<ParsedReport, String> {
    let mut cur = Cursor {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let root = cur.value()?;
    cur.skip_ws();
    if cur.pos != cur.bytes.len() {
        return Err(format!("trailing bytes at offset {}", cur.pos));
    }
    let Value::Object(root) = root else {
        return Err("root is not an object".into());
    };
    match root.get("schema") {
        Some(Value::String(s)) if s == BENCH_SCHEMA => {}
        other => return Err(format!("unsupported schema {other:?}")),
    }
    let kind = match root.get("kind") {
        Some(Value::String(s)) => s.clone(),
        other => return Err(format!("missing kind, found {other:?}")),
    };
    let Some(Value::Array(items)) = root.get("workloads") else {
        return Err("missing workloads array".into());
    };
    let mut workloads = Vec::new();
    for item in items {
        let Value::Object(fields) = item else {
            return Err("workload is not an object".into());
        };
        let name = match fields.get("name") {
            Some(Value::String(s)) => s.clone(),
            other => return Err(format!("workload without name: {other:?}")),
        };
        workloads.push(ParsedWorkload {
            name,
            exact: number_map(fields.get("exact"))?,
            measured: number_map(fields.get("measured"))?,
        });
    }
    Ok(ParsedReport { kind, workloads })
}

fn number_map(value: Option<&Value>) -> Result<BTreeMap<String, u64>, String> {
    let Some(Value::Object(fields)) = value else {
        return Err(format!("expected an object of numbers, found {value:?}"));
    };
    fields
        .iter()
        .map(|(k, v)| match v {
            Value::Number(n) => Ok((k.clone(), *n)),
            other => Err(format!("field {k:?} is not a number: {other:?}")),
        })
        .collect()
}

/// The minimal JSON value tree the parser produces.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    String(String),
    Number(u64),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}",
                byte as char, self.pos
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?
                        .to_string();
                    self.pos += 1;
                    return Ok(s);
                }
                // The writer never emits escapes (names are ascii idents);
                // reject rather than mis-parse.
                b'\\' => return Err(format!("unsupported escape at offset {}", self.pos)),
                _ => self.pos += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map(Value::Number)
            .map_err(|e| format!("bad number at offset {start}: {e}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected , or ] but found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(format!("expected , or }} but found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            kind: "net",
            workloads: vec![Workload {
                name: "consensus-n4-seed42".into(),
                exact: BTreeMap::from([("rounds", 7), ("decided", 4)]),
                measured: BTreeMap::from([("round_micros_mean", 400)]),
            }],
        }
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let report = sample();
        let json = report.to_json();
        let parsed = parse_report(&json).expect("parses");
        assert_eq!(parsed.kind, "net");
        assert_eq!(parsed.workloads.len(), 1);
        assert_eq!(parsed.workloads[0].exact.get("rounds"), Some(&7));
        assert_eq!(
            parsed.workloads[0].measured.get("round_micros_mean"),
            Some(&400)
        );
        // Identical data renders byte-identically.
        assert_eq!(json, report.to_json());
    }

    #[test]
    fn check_passes_against_its_own_output() {
        let report = sample();
        let violations = report.check_against(&report.to_json()).expect("parses");
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn check_fails_on_exact_drift_and_measured_regression() {
        let mut fresh = sample();
        let committed = fresh.to_json();
        fresh.workloads[0].exact.insert("rounds", 9);
        fresh.workloads[0].measured.insert(
            "round_micros_mean",
            400 * MEASURED_FACTOR + MEASURED_SLACK_US + 1,
        );
        let violations = fresh.check_against(&committed).expect("parses");
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("exact field rounds changed"));
        assert!(violations[1].contains("regressed"));
    }

    #[test]
    fn check_tolerates_measured_improvement_and_drift_within_tolerance() {
        let mut fresh = sample();
        let committed = fresh.to_json();
        fresh.workloads[0].measured.insert("round_micros_mean", 1); // much faster
        assert!(fresh.check_against(&committed).unwrap().is_empty());
        fresh.workloads[0]
            .measured
            .insert("round_micros_mean", 4_000); // 10x window
        assert!(fresh.check_against(&committed).unwrap().is_empty());
    }

    #[test]
    fn check_rejects_wrong_schema_or_kind() {
        let report = sample();
        assert!(report
            .check_against("{\"schema\": \"uba-bench-v0\", \"kind\": \"net\", \"workloads\": []}")
            .is_err());
        let sim = BenchReport {
            kind: "sim",
            workloads: vec![],
        };
        assert!(sim.check_against(&report.to_json()).is_err());
    }

    #[test]
    fn missing_and_extra_workloads_are_violations() {
        let report = sample();
        let empty = BenchReport {
            kind: "net",
            workloads: vec![],
        };
        let against_empty = report.check_against(&empty.to_json()).unwrap();
        assert!(against_empty[0].contains("missing from committed file"));
        let against_full = empty.check_against(&report.to_json()).unwrap();
        assert!(against_full[0].contains("no longer runs"));
    }
}
