//! Shared command-line parsing for the `experiments` and `soak` bins.
//!
//! Both bins take the same tracing and parallelism flags; parsing lives here
//! so the defaults exist exactly once and the error paths are unit-testable
//! without spawning a process. A flag given as the *last* argument with no
//! value is reported as "missing value", not smuggled through as `""`.

use std::fmt;
use std::path::PathBuf;

use crate::experiments::t10_faults::{Algo, HEALTHY_SEEDS};
use crate::ALL_EXPERIMENTS;

/// Default postmortem ring window (`--trace-last-n`): large enough to keep
/// every event of a shrunk minimal case, small enough that a pathological
/// run stays bounded. Shared by both bins — the only definition.
pub const DEFAULT_TRACE_LAST_N: usize = 65_536;

/// Why the command line was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A flag that requires a value was the last argument.
    MissingValue {
        /// The flag missing its value.
        flag: &'static str,
    },
    /// A flag's value failed to parse or was out of range.
    InvalidValue {
        /// The offending flag.
        flag: &'static str,
        /// The value as given.
        value: String,
        /// What the flag expects.
        expected: &'static str,
    },
    /// An argument that is neither a known flag nor a known positional.
    Unknown {
        /// The argument as given.
        arg: String,
        /// What positionals/flags this bin accepts.
        expected: &'static str,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingValue { flag } => write!(f, "missing value for {flag}"),
            CliError::InvalidValue {
                flag,
                value,
                expected,
            } => write!(f, "{flag} expects {expected}, got {value:?}"),
            CliError::Unknown { arg, expected } => {
                write!(f, "unknown argument {arg:?}; expected {expected}")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Pulls the value of `flag` from the argument stream, rejecting a missing
/// (or empty) value explicitly.
fn require_value(
    flag: &'static str,
    args: &mut impl Iterator<Item = String>,
) -> Result<String, CliError> {
    match args.next() {
        Some(v) if !v.is_empty() => Ok(v),
        _ => Err(CliError::MissingValue { flag }),
    }
}

/// Parses a `--trace-last-n` value: a positive event count (a zero-length
/// postmortem window would silently drop every event).
fn parse_trace_last_n(value: &str) -> Result<usize, CliError> {
    match value.parse::<usize>() {
        Ok(0) | Err(_) => Err(CliError::InvalidValue {
            flag: "--trace-last-n",
            value: value.to_string(),
            expected: "a positive event count (0 would drop every event)",
        }),
        Ok(n) => Ok(n),
    }
}

/// Parses a `--jobs` value: a positive worker count.
fn parse_jobs(value: &str) -> Result<usize, CliError> {
    match value.parse::<usize>() {
        Ok(0) | Err(_) => Err(CliError::InvalidValue {
            flag: "--jobs",
            value: value.to_string(),
            expected: "a positive worker count",
        }),
        Ok(n) => Ok(n),
    }
}

/// Parsed command line of the `soak` bin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakArgs {
    /// Sampled fault plans per `(algorithm, sweep)`.
    pub seeds: u64,
    /// Whether to include the over-budget (`f >= n/3`) sweep.
    pub broken: bool,
    /// Algorithm subset (empty = all).
    pub algos: Vec<Algo>,
    /// Directory for postmortem trace dumps.
    pub trace_out: PathBuf,
    /// Postmortem ring window size.
    pub trace_last_n: usize,
    /// Worker threads for the seed sweep.
    pub jobs: usize,
}

impl Default for SoakArgs {
    fn default() -> Self {
        SoakArgs {
            seeds: HEALTHY_SEEDS,
            broken: false,
            algos: Vec::new(),
            trace_out: PathBuf::from("."),
            trace_last_n: DEFAULT_TRACE_LAST_N,
            jobs: 1,
        }
    }
}

/// Parses the `soak` bin's arguments (pass `std::env::args().skip(1)`).
pub fn parse_soak_args(mut args: impl Iterator<Item = String>) -> Result<SoakArgs, CliError> {
    let mut parsed = SoakArgs::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                let value = require_value("--seeds", &mut args)?;
                parsed.seeds = value.parse().map_err(|_| CliError::InvalidValue {
                    flag: "--seeds",
                    value,
                    expected: "a number",
                })?;
            }
            "--broken" => parsed.broken = true,
            "--trace-out" => {
                parsed.trace_out = PathBuf::from(require_value("--trace-out", &mut args)?);
            }
            "--trace-last-n" => {
                let value = require_value("--trace-last-n", &mut args)?;
                parsed.trace_last_n = parse_trace_last_n(&value)?;
            }
            "--jobs" => {
                let value = require_value("--jobs", &mut args)?;
                parsed.jobs = parse_jobs(&value)?;
            }
            other => match Algo::parse(other) {
                Some(algo) => parsed.algos.push(algo),
                None => {
                    return Err(CliError::Unknown {
                        arg: other.to_string(),
                        expected: "--seeds N, --broken, --trace-out DIR, \
                                   --trace-last-n N, --jobs N, or an algorithm \
                                   (consensus, reliable, approx, rotor)",
                    });
                }
            },
        }
    }
    Ok(parsed)
}

/// Parsed command line of the `experiments` bin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentsArgs {
    /// Experiment ids to run (empty = all, in presentation order).
    pub selected: Vec<String>,
    /// Postmortem dump directory for T10, if any.
    pub trace_out: Option<PathBuf>,
    /// Postmortem ring window size.
    pub trace_last_n: usize,
    /// Worker threads across the selected experiments.
    pub jobs: usize,
}

impl Default for ExperimentsArgs {
    fn default() -> Self {
        ExperimentsArgs {
            selected: Vec::new(),
            trace_out: None,
            trace_last_n: DEFAULT_TRACE_LAST_N,
            jobs: 1,
        }
    }
}

/// Parses the `experiments` bin's arguments (pass `std::env::args().skip(1)`).
pub fn parse_experiments_args(
    mut args: impl Iterator<Item = String>,
) -> Result<ExperimentsArgs, CliError> {
    let mut parsed = ExperimentsArgs::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--" => {}
            "--trace-out" => {
                parsed.trace_out = Some(PathBuf::from(require_value("--trace-out", &mut args)?));
            }
            "--trace-last-n" => {
                let value = require_value("--trace-last-n", &mut args)?;
                parsed.trace_last_n = parse_trace_last_n(&value)?;
            }
            "--jobs" => {
                let value = require_value("--jobs", &mut args)?;
                parsed.jobs = parse_jobs(&value)?;
            }
            other if ALL_EXPERIMENTS.contains(&other) => {
                parsed.selected.push(other.to_string());
            }
            other => {
                return Err(CliError::Unknown {
                    arg: other.to_string(),
                    expected: "--trace-out DIR, --trace-last-n N, --jobs N, \
                               or an experiment id (t1..t15, f1, f2)",
                });
            }
        }
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv<'a>(args: &'a [&'a str]) -> impl Iterator<Item = String> + 'a {
        args.iter().map(|s| s.to_string())
    }

    #[test]
    fn soak_defaults() {
        let parsed = parse_soak_args(argv(&[])).expect("empty argv parses");
        assert_eq!(parsed, SoakArgs::default());
        assert_eq!(parsed.seeds, HEALTHY_SEEDS);
        assert_eq!(parsed.trace_last_n, DEFAULT_TRACE_LAST_N);
        assert_eq!(parsed.jobs, 1);
    }

    #[test]
    fn soak_full_argv() {
        let parsed = parse_soak_args(argv(&[
            "--seeds",
            "10",
            "--broken",
            "--trace-out",
            "dumps",
            "--trace-last-n",
            "512",
            "--jobs",
            "4",
            "consensus",
            "rotor",
        ]))
        .expect("parses");
        assert_eq!(parsed.seeds, 10);
        assert!(parsed.broken);
        assert_eq!(parsed.trace_out, PathBuf::from("dumps"));
        assert_eq!(parsed.trace_last_n, 512);
        assert_eq!(parsed.jobs, 4);
        assert_eq!(parsed.algos, vec![Algo::Consensus, Algo::Rotor]);
    }

    #[test]
    fn soak_trailing_flag_reports_missing_value() {
        for flag in ["--seeds", "--trace-out", "--trace-last-n", "--jobs"] {
            let err = parse_soak_args(argv(&[flag])).expect_err("must reject");
            assert_eq!(
                err,
                CliError::MissingValue {
                    flag: err_flag(&err)
                }
            );
            assert_eq!(err.to_string(), format!("missing value for {flag}"));
        }
    }

    #[test]
    fn soak_rejects_zero_window_and_zero_jobs() {
        let err = parse_soak_args(argv(&["--trace-last-n", "0"])).expect_err("reject 0");
        assert!(matches!(
            err,
            CliError::InvalidValue {
                flag: "--trace-last-n",
                ..
            }
        ));
        let err = parse_soak_args(argv(&["--jobs", "0"])).expect_err("reject 0");
        assert!(matches!(err, CliError::InvalidValue { flag: "--jobs", .. }));
    }

    #[test]
    fn soak_rejects_unknown_argument() {
        let err = parse_soak_args(argv(&["paxos"])).expect_err("reject");
        assert!(matches!(err, CliError::Unknown { .. }));
        assert!(err.to_string().contains("unknown argument \"paxos\""));
    }

    #[test]
    fn soak_rejects_bad_seed_count() {
        let err = parse_soak_args(argv(&["--seeds", "many"])).expect_err("reject");
        assert_eq!(
            err,
            CliError::InvalidValue {
                flag: "--seeds",
                value: "many".to_string(),
                expected: "a number",
            }
        );
    }

    #[test]
    fn experiments_defaults_and_selection() {
        let parsed = parse_experiments_args(argv(&[])).expect("parses");
        assert_eq!(parsed, ExperimentsArgs::default());
        let parsed =
            parse_experiments_args(argv(&["t3", "--", "f1", "--jobs", "2"])).expect("parses");
        assert_eq!(parsed.selected, vec!["t3", "f1"]);
        assert_eq!(parsed.jobs, 2);
    }

    #[test]
    fn experiments_trailing_flag_reports_missing_value() {
        for flag in ["--trace-out", "--trace-last-n", "--jobs"] {
            let err = parse_experiments_args(argv(&[flag])).expect_err("must reject");
            assert!(matches!(err, CliError::MissingValue { .. }));
            assert_eq!(err.to_string(), format!("missing value for {flag}"));
        }
    }

    #[test]
    fn experiments_rejects_unknown_id_and_zero_window() {
        let err = parse_experiments_args(argv(&["t99"])).expect_err("reject");
        assert!(matches!(err, CliError::Unknown { .. }));
        let err = parse_experiments_args(argv(&["--trace-last-n", "0"])).expect_err("reject 0");
        assert!(matches!(
            err,
            CliError::InvalidValue {
                flag: "--trace-last-n",
                ..
            }
        ));
    }

    fn err_flag(err: &CliError) -> &'static str {
        match err {
            CliError::MissingValue { flag } | CliError::InvalidValue { flag, .. } => flag,
            CliError::Unknown { .. } => panic!("expected a flag error"),
        }
    }
}
