//! # uba-bench — the experiment harness
//!
//! Regenerates every table and figure of EXPERIMENTS.md. The paper is
//! theory-only, so each experiment empirically validates one theorem or
//! complexity claim; the mapping is documented in DESIGN.md §4 and
//! EXPERIMENTS.md.
//!
//! - `cargo run -p uba-bench --bin experiments` prints every table;
//!   `--bin experiments t3` prints a single one.
//! - `cargo bench -p uba-bench` measures wall-clock time of the same
//!   workloads with criterion.
//! - `cargo run -p uba-bench --bin bench-report -- --check` re-runs the
//!   T11-class workloads with runtime metrics attached and compares them
//!   against the committed `BENCH_sim.json` / `BENCH_net.json` trajectory
//!   (see [`report`]); `--write` regenerates the committed files.
//!
//! All experiments are deterministic per seed and run in seconds on a
//! laptop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod table;

pub use table::Table;

/// Every experiment id, in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "t1", "t2", "t3", "f1", "t4", "t5", "f2", "t6", "t7", "t8", "t9", "t10", "t11", "t12", "t13",
    "t14", "t15",
];

/// Runs one experiment by id, returning its tables.
///
/// # Panics
///
/// Panics on an unknown id (valid ids are in [`ALL_EXPERIMENTS`]).
pub fn run_experiment(id: &str) -> Vec<Table> {
    match id {
        "t1" => experiments::t1_reliable::run(),
        "t2" => experiments::t2_rotor::run(),
        "t3" => experiments::t3_consensus::run(),
        "f1" => experiments::f1_approx::run(),
        "t4" => experiments::t4_parallel::run(),
        "t5" => experiments::t5_ordering::run(),
        "f2" => experiments::f2_synchrony::run(),
        "t6" => experiments::t6_resiliency::run(),
        "t7" => experiments::t7_baselines::run(),
        "t8" => experiments::t8_extensions::run(),
        "t9" => experiments::t9_ablation::run_experiment(),
        "t10" => experiments::t10_faults::run(),
        "t11" => experiments::t11_net::run(),
        "t12" => experiments::t12_rejoin::run(),
        "t13" => experiments::t13_wan::run(),
        "t14" => experiments::t14_logd::run(),
        "t15" => experiments::t15_byzantine::run(),
        other => panic!("unknown experiment id {other:?}; valid: {ALL_EXPERIMENTS:?}"),
    }
}
