//! T2 — rotor-coordinator (Algorithm 2, Theorem `rc`).
//!
//! Paper claims validated:
//! - every correct node terminates in **O(n)** rounds (all-correct:
//!   exactly `3 + n`; under candidate-set attacks still linear);
//! - before terminating, every correct node witnesses a **good round**: a
//!   round in which all correct nodes selected the same, correct
//!   coordinator — this is the property consensus builds on.

use std::collections::BTreeSet;

use uba_adversary::attacks::{GhostCandidateAdversary, RotorSplitAdversary};
use uba_core::harness::{max_faulty, Setup};
use uba_core::rotor::{RotorCoordinator, RotorOutcome};
use uba_sim::{Adversary, NodeId, SyncEngine};

use crate::Table;

/// Whether some round saw every correct node select the same correct node.
fn good_round_exists(
    outcomes: &std::collections::BTreeMap<NodeId, RotorOutcome<u64>>,
    correct: &BTreeSet<NodeId>,
) -> bool {
    let all: Vec<&RotorOutcome<u64>> = outcomes.values().collect();
    let reference = &all[0].selections;
    reference.iter().any(|&(round, p)| {
        correct.contains(&p)
            && all
                .iter()
                .all(|o| o.selections.iter().any(|&(r, q)| r == round && q == p))
    })
}

fn run_one<A: Adversary<uba_core::rotor::RotorMsg<u64>>>(
    setup: &Setup,
    adversary: A,
    budget: u64,
) -> (u64, bool, usize) {
    let mut engine = SyncEngine::builder()
        .correct_many(
            setup
                .correct
                .iter()
                .map(|&id| RotorCoordinator::new(id, id.raw())),
        )
        .faulty_many(setup.faulty.iter().copied())
        .adversary(adversary)
        .build();
    let done = engine.run_to_completion(budget).expect("rotor terminates");
    let correct: BTreeSet<NodeId> = setup.correct.iter().copied().collect();
    let good = good_round_exists(&done.outputs, &correct);
    let max_candidates = done
        .outputs
        .values()
        .map(|o| o.selections.len())
        .max()
        .unwrap_or(0);
    (done.last_decided_round(), good, max_candidates)
}

/// Runs experiment T2.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "T2 — rotor-coordinator: O(n) termination and a guaranteed good round (Theorem rc)",
        &[
            "n",
            "f",
            "adversary",
            "termination round",
            "≤ 3 + 2n + 5",
            "good round",
            "selections",
        ],
    );
    for n in [4usize, 7, 13, 25, 40] {
        let f = max_faulty(n);
        let g = n - f;
        let linear_bound = 3 + 2 * n as u64 + 5;
        for name in ["none", "split", "ghosts"] {
            let setup = Setup::new(g, f, 31 + n as u64);
            let budget = linear_bound + 10;
            let (rounds, good, sels) = match name {
                "none" => run_one(&setup, uba_sim::NoAdversary, budget),
                "split" => run_one(&setup, RotorSplitAdversary::new(), budget),
                _ => run_one(&setup, GhostCandidateAdversary::new(f, 8, 3), budget),
            };
            table.row(&[
                n.to_string(),
                f.to_string(),
                name.to_string(),
                rounds.to_string(),
                (rounds <= linear_bound).to_string(),
                good.to_string(),
                sels.to_string(),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t2_claims_hold() {
        for table in run() {
            for row in &table.rows {
                assert_eq!(row[4], "true", "linear termination: {row:?}");
                assert_eq!(row[5], "true", "good round: {row:?}");
            }
        }
    }
}
