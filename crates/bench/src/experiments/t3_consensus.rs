//! T3 — early-terminating consensus (Algorithm 3, Theorem `earlyCon`).
//!
//! Paper claims validated:
//! - **agreement** and **validity** for `n > 3f` under every adversary;
//! - **O(f) rounds**: at fixed `n`, the decision round grows with `f`, not
//!   with `n` — and unanimous inputs always decide in one phase (7 rounds)
//!   regardless of `n` (the early-termination fast path);
//! - message complexity is polynomial (≈ `n` broadcasts per node per
//!   phase).

use std::collections::BTreeSet;

use uba_adversary::attacks::ConsensusEquivocator;
use uba_adversary::{CrashAdversary, ScriptedAdversary, SplitMirrorAdversary};
use uba_core::consensus::{ConsensusMsg, EarlyConsensus};
use uba_core::harness::{max_faulty, Setup};
use uba_sim::{Adversary, SyncEngine};

use crate::Table;

/// One consensus run; returns (agreement, validity, decision round, sends).
pub fn run_one<A: Adversary<ConsensusMsg<u64>>>(
    setup: &Setup,
    split_inputs: bool,
    adversary: A,
) -> (bool, bool, u64, u64) {
    let inputs: Vec<u64> = (0..setup.correct.len())
        .map(|i| if split_inputs { (i % 2) as u64 } else { 1 })
        .collect();
    let mut engine = SyncEngine::builder()
        .correct_many(
            setup
                .correct
                .iter()
                .zip(&inputs)
                .map(|(&id, &x)| EarlyConsensus::new(id, x)),
        )
        .faulty_many(setup.faulty.iter().copied())
        .adversary(adversary)
        .build();
    let done = engine
        .run_to_completion(2 + 5 * (setup.n() as u64 + 4))
        .expect("consensus terminates");
    let decided: BTreeSet<u64> = done.outputs.values().copied().collect();
    let agreement = decided.len() == 1;
    let validity = decided.iter().all(|v| inputs.contains(v));
    (
        agreement,
        validity,
        done.last_decided_round(),
        done.stats.correct_sends,
    )
}

fn adversary_run(setup: &Setup, name: &str, split_inputs: bool) -> (bool, bool, u64, u64) {
    match name {
        "none" => run_one(setup, split_inputs, uba_sim::NoAdversary),
        "vanish" => run_one(
            setup,
            split_inputs,
            ScriptedAdversary::announce_then_vanish(ConsensusMsg::RotorInit),
        ),
        "equivocate" => run_one(setup, split_inputs, ConsensusEquivocator::new(0u64, 1u64)),
        "split-mirror" => run_one(setup, split_inputs, SplitMirrorAdversary::new()),
        "crash" => run_one(
            setup,
            split_inputs,
            CrashAdversary::new(
                setup.faulty.iter().map(|&id| EarlyConsensus::new(id, 0u64)),
                10,
            ),
        ),
        other => panic!("unknown adversary {other}"),
    }
}

/// Runs experiment T3.
pub fn run() -> Vec<Table> {
    let mut by_f = Table::new(
        "T3a — O(f) round complexity: fixed n = 16, growing f (split inputs, equivocation attack)",
        &[
            "n",
            "f",
            "agreement",
            "validity",
            "decision round",
            "5f + 12 bound",
            "within",
        ],
    );
    let g_total = 16;
    for f in 0..=max_faulty(g_total) {
        let setup = Setup::new(g_total - f, f, 900 + f as u64);
        let (agree, valid, rounds, _) = adversary_run(&setup, "equivocate", true);
        // O(f): one phase per coordinator until a correct one is hit, ≤ f+1
        // phases, plus one closing phase; 5 rounds each after 2 init rounds.
        let bound = 5 * (f as u64) + 12;
        by_f.row(&[
            setup.n().to_string(),
            f.to_string(),
            agree.to_string(),
            valid.to_string(),
            rounds.to_string(),
            bound.to_string(),
            (rounds <= bound).to_string(),
        ]);
    }

    let mut by_n = Table::new(
        "T3b — rounds do not grow with n: f = ⌊(n−1)/3⌋, unanimous inputs decide in exactly one phase (round 7)",
        &["n", "f", "adversary", "decision round", "correct sends"],
    );
    for n in [4usize, 7, 13, 25, 40] {
        let f = max_faulty(n);
        for adv in ["vanish", "crash"] {
            let setup = Setup::new(n - f, f, 40 + n as u64);
            let (agree, valid, rounds, sends) = adversary_run(&setup, adv, false);
            assert!(agree && valid);
            by_n.row(&[
                n.to_string(),
                f.to_string(),
                adv.to_string(),
                rounds.to_string(),
                sends.to_string(),
            ]);
        }
    }

    let mut matrix = Table::new(
        "T3c — agreement/validity matrix: n = 13, f = 4, split inputs, all adversaries",
        &["adversary", "agreement", "validity", "decision round"],
    );
    for adv in ["none", "vanish", "equivocate", "split-mirror", "crash"] {
        let setup = Setup::new(9, 4, 77);
        let (agree, valid, rounds, _) = adversary_run(&setup, adv, true);
        matrix.row(&[
            adv.to_string(),
            agree.to_string(),
            valid.to_string(),
            rounds.to_string(),
        ]);
    }

    vec![by_f, by_n, matrix]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3_claims_hold() {
        let tables = run();
        for row in &tables[0].rows {
            assert_eq!(row[2], "true", "agreement: {row:?}");
            assert_eq!(row[3], "true", "validity: {row:?}");
            assert_eq!(row[6], "true", "O(f) bound: {row:?}");
        }
        for row in &tables[1].rows {
            assert_eq!(row[3], "7", "unanimous fast path: {row:?}");
        }
        for row in &tables[2].rows {
            assert_eq!(row[1], "true");
            assert_eq!(row[2], "true");
        }
    }
}
