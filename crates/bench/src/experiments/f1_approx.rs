//! F1 — approximate agreement convergence (Algorithm 4).
//!
//! Paper claims validated (as a *figure*: range vs iteration series):
//! - outputs always lie within the correct input range, with and without
//!   the extremist attack;
//! - the correct range contracts by a factor ≥ 2 per iteration
//!   (`(o_max − o_min) ≤ (i_max − i_min)/2`), so the series decays
//!   geometrically.

use uba_adversary::attacks::ApproxExtremist;
use uba_core::approx::ApproxAgreement;
use uba_core::harness::{max_faulty, Setup};
use uba_sim::{NoAdversary, SyncEngine};

use crate::Table;

/// Range of the correct nodes' estimates after each iteration.
pub fn range_series(n: usize, attack: bool, iterations: u64, seed: u64) -> Vec<f64> {
    let f = max_faulty(n);
    let setup = Setup::new(n - f, f, seed);
    let g = setup.correct.len();
    let inputs: Vec<f64> = (0..g)
        .map(|i| i as f64 * 10.0 / (g - 1).max(1) as f64)
        .collect();
    let build = |engine: uba_sim::EngineBuilder<ApproxAgreement, NoAdversary>| {
        engine.correct_many(
            setup
                .correct
                .iter()
                .zip(&inputs)
                .map(|(&id, &x)| ApproxAgreement::new(id, x).with_iterations(iterations)),
        )
    };
    let mut series = Vec::new();
    let mut record = |engine: &mut dyn FnMut() -> (f64, f64)| {
        let (lo, hi) = engine();
        series.push(hi - lo);
    };
    // Round 1 is the initial broadcast; the k-th update lands in round k+1.
    if attack {
        let mut engine = build(SyncEngine::builder())
            .faulty_many(setup.faulty.iter().copied())
            .adversary(ApproxExtremist::new(1e9))
            .build();
        record(&mut || current_range(&setup.correct, |id| engine.process(id).map(|p| p.current())));
        engine.run_round();
        for _ in 0..iterations {
            engine.run_round();
            record(&mut || {
                current_range(&setup.correct, |id| engine.process(id).map(|p| p.current()))
            });
        }
    } else {
        let mut engine = build(SyncEngine::builder()).build();
        record(&mut || current_range(&setup.correct, |id| engine.process(id).map(|p| p.current())));
        engine.run_round();
        for _ in 0..iterations {
            engine.run_round();
            record(&mut || {
                current_range(&setup.correct, |id| engine.process(id).map(|p| p.current()))
            });
        }
    }
    series
}

fn current_range(
    ids: &[uba_sim::NodeId],
    get: impl Fn(uba_sim::NodeId) -> Option<f64>,
) -> (f64, f64) {
    let values: Vec<f64> = ids.iter().filter_map(|&id| get(id)).collect();
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

/// Runs experiment F1.
pub fn run() -> Vec<Table> {
    let mut series_table = Table::new(
        "F1 — approximate agreement: correct-range contraction per iteration (n = 13, f = 4, inputs spread over [0, 10])",
        &["iteration", "range (no adversary)", "range (extremist attack)", "attack ratio vs prev", "≤ 0.5"],
    );
    let iterations = 8;
    let clean = range_series(13, false, iterations, 5);
    let attacked = range_series(13, true, iterations, 5);
    for i in 0..=iterations as usize {
        let ratio = if i == 0 || attacked[i - 1] == 0.0 {
            f64::NAN
        } else {
            attacked[i] / attacked[i - 1]
        };
        series_table.row(&[
            i.to_string(),
            format!("{:.6}", clean[i]),
            format!("{:.6}", attacked[i]),
            if ratio.is_nan() {
                "—".into()
            } else {
                format!("{ratio:.3}")
            },
            if ratio.is_nan() {
                "—".into()
            } else {
                (ratio <= 0.5 + 1e-9).to_string()
            },
        ]);
    }

    let mut within = Table::new(
        "F1b — outputs stay within the correct input range under attack",
        &["n", "f", "input range", "output range", "within"],
    );
    for n in [4usize, 10, 22, 40] {
        let f = max_faulty(n);
        let setup = Setup::new(n - f, f, 60 + n as u64);
        let g = setup.correct.len();
        let inputs: Vec<f64> = (0..g).map(|i| i as f64).collect();
        let mut engine = SyncEngine::builder()
            .correct_many(
                setup
                    .correct
                    .iter()
                    .zip(&inputs)
                    .map(|(&id, &x)| ApproxAgreement::new(id, x).with_iterations(3)),
            )
            .faulty_many(setup.faulty.iter().copied())
            .adversary(ApproxExtremist::new(1e9))
            .build();
        let done = engine.run_to_completion(6).expect("terminates");
        let lo = done.outputs.values().cloned().fold(f64::INFINITY, f64::min);
        let hi = done
            .outputs
            .values()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let max_in = (g - 1) as f64;
        within.row(&[
            n.to_string(),
            f.to_string(),
            format!("0.0..{max_in:.1}"),
            format!("{lo:.3}..{hi:.3}"),
            (lo >= 0.0 && hi <= max_in).to_string(),
        ]);
    }

    vec![series_table, within]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_claims_hold() {
        let tables = run();
        for row in &tables[0].rows {
            if row[4] != "—" {
                assert_eq!(row[4], "true", "halving violated: {row:?}");
            }
        }
        for row in &tables[1].rows {
            assert_eq!(row[4], "true", "escaped input range: {row:?}");
        }
    }
}
