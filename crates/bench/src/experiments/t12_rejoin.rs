//! T12 — crash-recovery rejoin: a killed node replays its journal and
//! decides as if it never died.
//!
//! Claims validated (DESIGN.md §9):
//! - a cluster member killed at the start of a round and immediately
//!   restarted from its durable round journal rejoins over the
//!   `SyncRequest`/`Backfill` protocol and decides **byte-identically** to
//!   the *uninterrupted* simulator run — the crash is invisible to the
//!   protocol's outcome;
//! - the simulator's churn-schedule `Restart` action is a faithful twin of
//!   that rejoin: replaying a fresh process through the recorded inbox
//!   history reproduces the same outputs and decision rounds;
//! - recovery tolerates a torn final journal line (the crash interrupted
//!   the append): the victim resumes one round earlier, re-collects the
//!   missing round from peer backfill, and still converges identically.
//!
//! Every cell runs the configuration three ways — plain engine, engine
//! with a scripted `Restart`, TCP cluster with a scripted kill — and all
//! three must agree on every output and on the last decision round.

use std::collections::BTreeMap;
use std::time::Duration;

use uba_core::consensus::EarlyConsensus;
use uba_core::reliable::ReliableBroadcast;
use uba_net::{decisions, run_local_cluster_with_restart, KillSpec, NetConfig, NetReport, Wire};
use uba_sim::{sparse_ids, ChurnSchedule, NodeId, Process, SyncEngine};
use uba_trace::NoopTracer;

use crate::Table;

/// Transport config for the rejoin drill: generous timeouts (the claim is
/// about decisions, not deadlines) and a round budget matching the twins.
fn net_config() -> NetConfig {
    NetConfig {
        round_timeout: Duration::from_secs(10),
        setup_timeout: Duration::from_secs(30),
        max_rounds: 200,
        ..NetConfig::default()
    }
}

/// One rejoin cell: which algorithm, how big, who dies when, and whether
/// the journal's final line is torn before recovery.
struct CellSpec {
    algo: &'static str,
    n: usize,
    seed: u64,
    kill_at: u64,
    victim_idx: usize,
    torn: bool,
}

/// The deterministic rejoin cells. Kill rounds precede every decision
/// round, so the crash always actually happens; the torn cell needs
/// `kill_at ≥ 3` so at least one journal entry survives the tear.
const CELLS: [CellSpec; 4] = [
    CellSpec {
        algo: "consensus",
        n: 4,
        seed: 42,
        kill_at: 3,
        victim_idx: 0,
        torn: false,
    },
    CellSpec {
        algo: "consensus",
        n: 7,
        seed: 1,
        kill_at: 3,
        victim_idx: 2,
        torn: false,
    },
    CellSpec {
        algo: "reliable bcast",
        n: 5,
        seed: 11,
        kill_at: 2,
        victim_idx: 1,
        torn: false,
    },
    CellSpec {
        algo: "consensus",
        n: 4,
        seed: 42,
        kill_at: 3,
        victim_idx: 0,
        torn: true,
    },
];

/// Outcome of one cell: the three executions' outputs and last decision
/// rounds, rendered via `Debug` so one table covers both algorithms.
struct Cell {
    reference_outputs: BTreeMap<NodeId, String>,
    reference_rounds: u64,
    restart_outputs: BTreeMap<NodeId, String>,
    restart_rounds: u64,
    net_outputs: BTreeMap<NodeId, String>,
    net_rounds: u64,
}

impl Cell {
    fn matches(&self) -> bool {
        self.reference_outputs == self.restart_outputs
            && self.reference_outputs == self.net_outputs
            && self.reference_rounds == self.restart_rounds
            && self.reference_rounds == self.net_rounds
    }
}

fn render<O: std::fmt::Debug>(outputs: &BTreeMap<NodeId, O>) -> BTreeMap<NodeId, String> {
    outputs
        .iter()
        .map(|(&id, o)| (id, format!("{o:?}")))
        .collect()
}

fn net_decided_rounds<O, T>(reports: &BTreeMap<NodeId, NetReport<O, T>>) -> u64 {
    reports
        .values()
        .filter_map(|r| r.decided_round)
        .max()
        .unwrap_or(0)
}

/// Runs one cell's three executions over `factory()`'s processes.
fn run_cell<P, F>(spec: &CellSpec, tag: usize, factory: F) -> Cell
where
    P: Process + Send,
    P::Msg: Wire,
    P::Output: Send,
    F: Fn() -> Vec<P>,
{
    let ids: Vec<NodeId> = factory().iter().map(|p| p.id()).collect();
    let victim = ids[spec.victim_idx];

    // 1. The uninterrupted engine run: the reference execution.
    let mut engine = SyncEngine::builder().correct_many(factory()).build();
    let reference = engine
        .run_to_completion(200)
        .expect("reference twin must complete");

    // 2. The engine with the same crash scripted as a churn `Restart`.
    let fresh = factory()
        .into_iter()
        .find(|p| p.id() == victim)
        .expect("factory covers the victim");
    let mut churn = ChurnSchedule::new();
    churn.restart(spec.kill_at, fresh);
    let mut engine = SyncEngine::builder()
        .correct_many(factory())
        .churn(churn)
        .build();
    let restarted = engine
        .run_to_completion(200)
        .expect("restart twin must complete");

    // 3. The TCP cluster with the kill for real: journals on disk, victim
    // killed at the round start, restarted immediately, rejoined via
    // backfill. The journal directory is per-process and per-cell, and
    // removed afterwards.
    let journal_dir =
        std::env::temp_dir().join(format!("uba-t12-{}-cell{tag}", std::process::id()));
    let kill = KillSpec {
        victim,
        kill_at: spec.kill_at,
        restart_delay: Duration::ZERO,
        journal_dir: journal_dir.clone(),
        tear_journal: spec.torn,
    };
    let reports = run_local_cluster_with_restart(
        &ids,
        |id| {
            factory()
                .into_iter()
                .find(|p| p.id() == id)
                .expect("factory covers every id")
        },
        net_config(),
        |_| NoopTracer,
        &kill,
    )
    .expect("network run must complete");
    let _ = std::fs::remove_dir_all(&journal_dir);
    let net = decisions(&reports);

    Cell {
        reference_outputs: render(&reference.outputs),
        reference_rounds: reference.decided_round.values().copied().max().unwrap_or(0),
        restart_outputs: render(&restarted.outputs),
        restart_rounds: restarted.decided_round.values().copied().max().unwrap_or(0),
        net_outputs: render(&net),
        net_rounds: net_decided_rounds(&reports),
    }
}

fn consensus_cluster(seed: u64, n: usize) -> Vec<EarlyConsensus<u64>> {
    let ids = sparse_ids(n, seed);
    ids.iter()
        .enumerate()
        .map(|(i, &id)| EarlyConsensus::new(id, (seed >> (i % 64)) & 1))
        .collect()
}

fn reliable_cluster(seed: u64, n: usize) -> Vec<ReliableBroadcast<u64>> {
    let ids = sparse_ids(n, seed);
    let sender = ids[0];
    ids.iter()
        .map(|&id| {
            let own = (id == sender).then_some(seed);
            ReliableBroadcast::new(id, sender, own).with_horizon(6)
        })
        .collect()
}

/// Runs one cell by index (shared with the tests).
fn run_indexed(tag: usize, spec: &CellSpec) -> Cell {
    match spec.algo {
        "consensus" => run_cell(spec, tag, || consensus_cluster(spec.seed, spec.n)),
        "reliable bcast" => run_cell(spec, tag, || reliable_cluster(spec.seed, spec.n)),
        other => panic!("unknown T12 algorithm {other:?}"),
    }
}

/// Runs experiment T12.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "T12 — crash-recovery rejoin: kill at round start, journal replay + backfill, vs the uninterrupted engine and the churn-Restart engine",
        &[
            "algorithm",
            "n",
            "seed",
            "kill@",
            "victim",
            "torn tail",
            "sim rounds",
            "net rounds",
            "decisions",
        ],
    );
    for (tag, spec) in CELLS.iter().enumerate() {
        let cell = run_indexed(tag, spec);
        table.row(&[
            spec.algo.to_string(),
            spec.n.to_string(),
            spec.seed.to_string(),
            spec.kill_at.to_string(),
            spec.victim_idx.to_string(),
            if spec.torn { "yes" } else { "no" }.to_string(),
            cell.reference_rounds.to_string(),
            cell.net_rounds.to_string(),
            if cell.matches() { "match" } else { "MISMATCH" }.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Locks the three-way equivalence: uninterrupted engine, churn-Restart
    /// engine, and killed-and-rejoined cluster all decide identically.
    #[test]
    fn t12_every_cell_survives_the_kill_identically() {
        for (tag, spec) in CELLS.iter().enumerate() {
            let cell = run_indexed(tag, spec);
            assert!(
                cell.matches(),
                "{} n={} seed={} kill@{} torn={}: reference {:?} (round {}) vs \
                 restart-sim {:?} (round {}) vs net {:?} (round {})",
                spec.algo,
                spec.n,
                spec.seed,
                spec.kill_at,
                spec.torn,
                cell.reference_outputs,
                cell.reference_rounds,
                cell.restart_outputs,
                cell.restart_rounds,
                cell.net_outputs,
                cell.net_rounds
            );
        }
    }
}
