//! T7 — head-to-head against the classic known-`(n, f)` baselines.
//!
//! Paper claims validated (Discussion section): dropping the knowledge of
//! `n` and `f` costs neither resiliency nor asymptotic complexity —
//! - reliable broadcast: same acceptance round (3) and the same `Θ(n²)`
//!   echo traffic as Srikanth–Toueg (one extra `present` round of `n²`
//!   deliveries is the entire price of not knowing `n`);
//! - approximate agreement: same per-iteration contraction (½) as the
//!   known-`f` trimming;
//! - consensus: the unknown-`n,f` early-terminating algorithm decides in
//!   `O(f)` rounds like the phase-king baseline's `O(f)` schedule, while
//!   the rotor-driven king variant pays `O(n)` — the paper's stated
//!   trade-off between its own two algorithms.

use uba_core::approx::ApproxAgreement;
use uba_core::baselines::{KnownApprox, PhaseKing, StBroadcast};
use uba_core::consensus::{king::KingConsensus, EarlyConsensus};
use uba_core::harness::{max_faulty, Setup};
use uba_core::reliable::ReliableBroadcast;
use uba_sim::SyncEngine;

use crate::Table;

/// Runs experiment T7.
pub fn run() -> Vec<Table> {
    let mut rb = Table::new(
        "T7a — reliable broadcast vs Srikanth–Toueg (all-correct, correct sender): same acceptance round, comparable messages",
        &["n", "accept round (unknown n,f)", "accept round (ST, known f)", "sends (unknown)", "sends (ST)"],
    );
    for n in [4usize, 10, 22, 40] {
        let f = max_faulty(n);
        let setup = Setup::new(n, 0, 4 + n as u64);
        let sender = setup.correct[0];

        let mut ours = SyncEngine::builder()
            .correct_many(setup.correct.iter().map(|&id| {
                ReliableBroadcast::new(id, sender, (id == sender).then_some("m")).with_horizon(5)
            }))
            .build();
        let ours_done = ours.run_to_completion(7).expect("completes");
        let ours_round = ours_done
            .outputs
            .values()
            .filter_map(|a| a.get("m").copied())
            .max()
            .unwrap_or(0);

        let mut st = SyncEngine::builder()
            .correct_many(setup.correct.iter().map(|&id| {
                StBroadcast::new(id, sender, (id == sender).then_some("m"), f).with_horizon(5)
            }))
            .build();
        let st_done = st.run_to_completion(7).expect("completes");
        let st_round = st_done
            .outputs
            .values()
            .filter_map(|a| a.get("m").copied())
            .max()
            .unwrap_or(0);

        rb.row(&[
            n.to_string(),
            ours_round.to_string(),
            st_round.to_string(),
            ours_done.stats.correct_sends.to_string(),
            st_done.stats.correct_sends.to_string(),
        ]);
    }

    let mut approx = Table::new(
        "T7b — approximate agreement vs known-f trimming: identical contraction after 4 iterations (all-correct)",
        &["n", "output range (unknown n,f)", "output range (known f)", "bound (range/16)"],
    );
    for n in [4usize, 10, 22] {
        let f = max_faulty(n);
        let setup = Setup::new(n, 0, 9 + n as u64);
        let inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let spread = |outputs: &std::collections::BTreeMap<uba_sim::NodeId, f64>| {
            let lo = outputs.values().cloned().fold(f64::INFINITY, f64::min);
            let hi = outputs.values().cloned().fold(f64::NEG_INFINITY, f64::max);
            hi - lo
        };

        let mut ours = SyncEngine::builder()
            .correct_many(
                setup
                    .correct
                    .iter()
                    .zip(&inputs)
                    .map(|(&id, &x)| ApproxAgreement::new(id, x).with_iterations(4)),
            )
            .build();
        let ours_range = spread(&ours.run_to_completion(7).expect("completes").outputs);

        let mut known = SyncEngine::builder()
            .correct_many(
                setup
                    .correct
                    .iter()
                    .zip(&inputs)
                    .map(|(&id, &x)| KnownApprox::new(id, x, f).with_iterations(4)),
            )
            .build();
        let known_range = spread(&known.run_to_completion(7).expect("completes").outputs);

        approx.row(&[
            n.to_string(),
            format!("{ours_range:.6}"),
            format!("{known_range:.6}"),
            format!("{:.6}", (n - 1) as f64 / 16.0),
        ]);
    }

    let mut consensus = Table::new(
        "T7c — consensus round complexity: early-terminating (O(f)) vs rotor-king (O(n)) vs phase-king baseline (known n,f; 4(f+1) rounds), split inputs, all-correct runs",
        &["n", "f used", "early (unknown n,f)", "rotor-king (unknown n,f)", "phase-king (known n,f)"],
    );
    for n in [4usize, 7, 13, 25, 40] {
        let f = max_faulty(n);
        let setup = Setup::new(n, 0, 13 + n as u64);

        let mut early = SyncEngine::builder()
            .correct_many(
                setup
                    .correct
                    .iter()
                    .enumerate()
                    .map(|(i, &id)| EarlyConsensus::new(id, (i % 2) as u64)),
            )
            .build();
        let early_rounds = early
            .run_to_completion(2 + 5 * (n as u64 + 2))
            .expect("completes")
            .last_decided_round();

        let mut king = SyncEngine::builder()
            .correct_many(
                setup
                    .correct
                    .iter()
                    .enumerate()
                    .map(|(i, &id)| KingConsensus::new(id, (i % 2) as u64)),
            )
            .build();
        let king_rounds = king
            .run_to_completion(2 + 5 * (n as u64 + 2))
            .expect("completes")
            .last_decided_round();

        let mut pk =
            SyncEngine::builder()
                .correct_many(
                    setup.correct.iter().enumerate().map(|(i, &id)| {
                        PhaseKing::new(id, (i % 2) as u64, setup.correct.clone(), f)
                    }),
                )
                .build();
        let pk_rounds = pk
            .run_to_completion(4 * (f as u64 + 1) + 2)
            .expect("completes")
            .last_decided_round();

        consensus.row(&[
            n.to_string(),
            f.to_string(),
            early_rounds.to_string(),
            king_rounds.to_string(),
            pk_rounds.to_string(),
        ]);
    }

    vec![rb, approx, consensus]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t7_claims_hold() {
        let tables = run();
        for row in &tables[0].rows {
            assert_eq!(row[1], row[2], "same acceptance round: {row:?}");
        }
        for row in &tables[1].rows {
            let ours: f64 = row[1].parse().unwrap();
            let bound: f64 = row[3].parse().unwrap();
            assert!(ours <= bound + 1e-9, "contraction: {row:?}");
        }
        // Early terminating consensus beats the O(n) king variant for
        // larger n and tracks the known-(n,f) baseline's order.
        let last = tables[2].rows.last().expect("rows");
        let early: u64 = last[2].parse().unwrap();
        let king: u64 = last[3].parse().unwrap();
        assert!(
            early < king,
            "early termination must win at n = 40: {last:?}"
        );
    }
}
