//! T11 — sim-vs-net equivalence: the TCP transport reproduces the engine.
//!
//! Claims validated:
//! - for fault-free runs, a localhost TCP cluster (`uba-net`) decides
//!   **identically** to a [`SyncEngine`] run of the same seeded processes —
//!   same outputs, same decision rounds — because the round synchronizer
//!   reproduces the engine's delivery semantics exactly (DESIGN.md §8);
//! - the synchronous-round abstraction is cheap on a real (localhost)
//!   network: barrier-enforced rounds complete in well under a millisecond,
//!   so the model's round counts translate directly into wall-clock time.
//!
//! The equivalence table is deterministic; the latency table reports
//! measured wall-clock numbers and naturally varies between machines (its
//! *shape* — sub-millisecond rounds, growing mildly with `n` — is the
//! reproduction target).

use std::collections::BTreeMap;
use std::time::Duration;

use uba_core::consensus::EarlyConsensus;
use uba_core::reliable::ReliableBroadcast;
use uba_net::{decisions, run_local_cluster, NetConfig, NetReport, Wire};
use uba_sim::{sparse_ids, NodeId, Process, SyncEngine};
use uba_trace::NoopTracer;

use crate::Table;

/// Transport config for experiment runs: generous timeouts (the claim is
/// about decisions, not deadlines) and a round budget matching the twin.
pub(crate) fn net_config() -> NetConfig {
    NetConfig {
        round_timeout: Duration::from_secs(10),
        setup_timeout: Duration::from_secs(30),
        max_rounds: 200,
        ..NetConfig::default()
    }
}

/// Outcome of one sim-vs-net cell.
struct Cell {
    sim_outputs: BTreeMap<NodeId, String>,
    sim_rounds: u64,
    net_outputs: BTreeMap<NodeId, String>,
    net_rounds: u64,
    round_micros: Vec<u64>,
}

impl Cell {
    fn matches(&self) -> bool {
        self.sim_outputs == self.net_outputs && self.sim_rounds == self.net_rounds
    }
}

/// Runs `factory()`'s processes both ways and compares (outputs rendered
/// via `Debug`, so one table covers heterogeneous output types).
fn run_cell<P, F>(factory: F) -> Cell
where
    P: Process + Send,
    P::Msg: Wire,
    P::Output: Send,
    F: Fn() -> Vec<P>,
{
    let mut engine = SyncEngine::builder().correct_many(factory()).build();
    let sim = engine
        .run_to_completion(200)
        .expect("simulator twin must complete");
    let reports = run_local_cluster(factory(), net_config(), |_| NoopTracer)
        .expect("network run must complete");
    let net = decisions(&reports);
    Cell {
        sim_outputs: sim
            .outputs
            .iter()
            .map(|(&id, o)| (id, format!("{o:?}")))
            .collect(),
        sim_rounds: sim.decided_round.values().copied().max().unwrap_or(0),
        net_outputs: net.iter().map(|(&id, o)| (id, format!("{o:?}"))).collect(),
        net_rounds: net_decided_rounds(&reports),
        round_micros: reports
            .values()
            .flat_map(|r| r.round_micros.iter().copied())
            .collect(),
    }
}

fn net_decided_rounds<O, T>(reports: &BTreeMap<NodeId, NetReport<O, T>>) -> u64 {
    reports
        .values()
        .filter_map(|r| r.decided_round)
        .max()
        .unwrap_or(0)
}

pub(crate) fn consensus_cluster(seed: u64, n: usize) -> Vec<EarlyConsensus<u64>> {
    let ids = sparse_ids(n, seed);
    ids.iter()
        .enumerate()
        .map(|(i, &id)| EarlyConsensus::new(id, (seed >> (i % 64)) & 1))
        .collect()
}

pub(crate) fn reliable_cluster(seed: u64, n: usize) -> Vec<ReliableBroadcast<u64>> {
    let ids = sparse_ids(n, seed);
    let sender = ids[0];
    ids.iter()
        .map(|&id| {
            let own = (id == sender).then_some(seed);
            ReliableBroadcast::new(id, sender, own).with_horizon(6)
        })
        .collect()
}

/// The deterministic equivalence cells: `(algorithm, n, seed)`.
pub(crate) const CONSENSUS_CELLS: [(usize, u64); 3] = [(4, 42), (4, 7), (7, 1)];
pub(crate) const RELIABLE_CELLS: [(usize, u64); 2] = [(4, 42), (5, 11)];

/// Runs one equivalence cell by name (shared with the tests).
fn run_named(algo: &str, n: usize, seed: u64) -> Cell {
    match algo {
        "consensus" => run_cell(|| consensus_cluster(seed, n)),
        "reliable bcast" => run_cell(|| reliable_cluster(seed, n)),
        other => panic!("unknown T11 algorithm {other:?}"),
    }
}

/// Runs experiment T11.
pub fn run() -> Vec<Table> {
    let mut equivalence = Table::new(
        "T11 — sim-vs-net equivalence: localhost TCP cluster vs SyncEngine, same seeded processes",
        &[
            "algorithm",
            "n",
            "seed",
            "sim rounds",
            "net rounds",
            "decisions",
        ],
    );
    let mut latency = Table::new(
        "T11 — measured localhost round latency (wall-clock; shape, not numbers, is the target)",
        &["algorithm", "n", "rounds", "mean us/round", "max us/round"],
    );
    let cells = CONSENSUS_CELLS
        .iter()
        .map(|&(n, seed)| ("consensus", n, seed))
        .chain(
            RELIABLE_CELLS
                .iter()
                .map(|&(n, seed)| ("reliable bcast", n, seed)),
        );
    for (algo, n, seed) in cells {
        let cell = run_named(algo, n, seed);
        equivalence.row(&[
            algo.to_string(),
            n.to_string(),
            seed.to_string(),
            cell.sim_rounds.to_string(),
            cell.net_rounds.to_string(),
            if cell.matches() { "match" } else { "MISMATCH" }.to_string(),
        ]);
        let mean = if cell.round_micros.is_empty() {
            0
        } else {
            cell.round_micros.iter().sum::<u64>() / cell.round_micros.len() as u64
        };
        let max = cell.round_micros.iter().copied().max().unwrap_or(0);
        latency.row(&[
            algo.to_string(),
            n.to_string(),
            cell.net_rounds.to_string(),
            mean.to_string(),
            max.to_string(),
        ]);
    }
    vec![equivalence, latency]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Locks the equivalence claim only — latency is machine-dependent and
    /// deliberately unasserted.
    #[test]
    fn t11_every_cell_matches_the_engine() {
        for &(n, seed) in &CONSENSUS_CELLS {
            let cell = run_named("consensus", n, seed);
            assert!(
                cell.matches(),
                "consensus n={n} seed={seed}: sim {:?} (round {}) vs net {:?} (round {})",
                cell.sim_outputs,
                cell.sim_rounds,
                cell.net_outputs,
                cell.net_rounds
            );
        }
        for &(n, seed) in &RELIABLE_CELLS {
            let cell = run_named("reliable bcast", n, seed);
            assert!(cell.matches(), "reliable n={n} seed={seed} diverged");
        }
    }
}
