//! T10 — fault-injection soak: sampled fault plans + online monitors.
//!
//! Paper claims validated:
//! - within the `n > 3f` budget, benign faults (crash-stop, crash-recovery,
//!   omission, lossy links) sampled by [`FaultPlan::sample`] and composed
//!   with each algorithm's strongest Byzantine attack never violate an
//!   online invariant — over ≥ 100 sampled plans per algorithm;
//! - once `f ≥ n/3`, the online monitors catch the violation and pinpoint
//!   its **first** round, and the greedy schedule shrinker reduces the
//!   sampled plan to a minimal reproduction (usually the empty plan: the
//!   Byzantine nodes alone already break the guarantee).
//!
//! Every case is reproducible from `(algorithm, sweep, seed)` alone; the
//! `soak` binary re-runs any subset from the command line.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use uba_adversary::attacks::{ApproxExtremist, ConsensusEquivocator, RotorSplitAdversary};
use uba_core::approx::ApproxAgreement;
use uba_core::consensus::EarlyConsensus;
use uba_core::harness::Setup;
use uba_core::monitor::{
    AgreementMonitor, ApproxMonitor, RelayMonitor, UnforgeabilityMonitor, ValidityMonitor,
};
use uba_core::observe;
use uba_core::reliable::{RbMsg, ReliableBroadcast};
use uba_core::rotor::RotorCoordinator;
use uba_core::spec;
use uba_sim::{
    Adversary, AdversaryOutbox, AdversaryView, EngineError, FaultPlan, FaultUniverse, FnAdversary,
    MonitorSet, NodeId, Process, SyncEngine,
};
use uba_trace::{to_json, Fanout, Metrics, RingTracer, SharedTracer, TraceEvent};

use crate::Table;

/// The algorithms the soak exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Early-terminating consensus (Algorithm 3) vs the equivocator.
    Consensus,
    /// Reliable broadcast (Algorithm 1) vs an echo forger.
    Reliable,
    /// Approximate agreement (Algorithm 4) vs the extremist.
    Approx,
    /// The rotor-coordinator (Algorithm 2) vs the candidate splitter.
    Rotor,
}

impl Algo {
    /// All soaked algorithms, in presentation order.
    pub const ALL: [Algo; 4] = [Algo::Consensus, Algo::Reliable, Algo::Approx, Algo::Rotor];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Consensus => "consensus",
            Algo::Reliable => "reliable bcast",
            Algo::Approx => "approx",
            Algo::Rotor => "rotor",
        }
    }

    /// File-name-safe identifier (no spaces), also the CLI token.
    pub fn slug(self) -> &'static str {
        match self {
            Algo::Consensus => "consensus",
            Algo::Reliable => "reliable",
            Algo::Approx => "approx",
            Algo::Rotor => "rotor",
        }
    }

    /// Parses a command-line name.
    pub fn parse(s: &str) -> Option<Algo> {
        match s {
            "consensus" => Some(Algo::Consensus),
            "reliable" => Some(Algo::Reliable),
            "approx" => Some(Algo::Approx),
            "rotor" => Some(Algo::Rotor),
            _ => None,
        }
    }

    /// Distinct seed base so no two algorithms share a node population.
    fn seed_base(self) -> u64 {
        match self {
            Algo::Consensus => 10_000,
            Algo::Reliable => 20_000,
            Algo::Approx => 30_000,
            Algo::Rotor => 40_000,
        }
    }

    /// Horizon (last round) for injected faults: long enough to hit the
    /// algorithm's whole critical window.
    fn fault_horizon(self) -> u64 {
        match self {
            Algo::Consensus => 12,
            Algo::Reliable => 6,
            Algo::Approx => 5,
            Algo::Rotor => 12,
        }
    }

    /// First round eligible for faults. Consensus freezes its participant
    /// estimate in round 3; a node crashed across that window can never
    /// rejoin the instance (that scenario is churn, not crash-recovery), so
    /// its faults start afterwards.
    fn fault_onset(self) -> u64 {
        match self {
            Algo::Consensus => 4,
            _ => 1,
        }
    }
}

/// One point of the sweep grid: how many correct, Byzantine and
/// benign-faulted nodes a case uses.
#[derive(Debug, Clone, Copy)]
pub struct Sweep {
    /// Number of correct nodes (pristine + benign victims).
    pub correct: usize,
    /// Number of Byzantine nodes.
    pub byzantine: usize,
    /// Number of correct nodes the fault plan may touch.
    pub victims: usize,
}

impl Sweep {
    /// The in-budget sweep: `n = 10`, `b + |victims| = 3 = ⌊(n−1)/3⌋`.
    pub const HEALTHY: Sweep = Sweep {
        correct: 9,
        byzantine: 1,
        victims: 2,
    };

    /// The over-budget sweep: `n = 12` with 4 Byzantine nodes, so
    /// `f ≥ n/3` even before any benign fault is charged.
    pub const BROKEN: Sweep = Sweep {
        correct: 8,
        byzantine: 4,
        victims: 2,
    };

    /// Total node count.
    pub fn n(&self) -> usize {
        self.correct + self.byzantine
    }

    /// The fault budget the sweep consumes (Byzantine + benign victims).
    pub fn f(&self) -> usize {
        self.byzantine + self.victims
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        if self.n() > 3 * self.f() {
            "healthy"
        } else {
            "broken"
        }
    }
}

/// The sampled node population of one case.
struct Topology {
    setup: Setup,
    /// Correct nodes the plan never touches; all invariants are over these.
    pristine: Vec<NodeId>,
    /// Correct nodes the plan may fault.
    victims: Vec<NodeId>,
}

fn topology(algo: Algo, sweep: &Sweep, seed: u64) -> Topology {
    let setup = Setup::new(sweep.correct, sweep.byzantine, algo.seed_base() + seed);
    let split = sweep.correct - sweep.victims;
    Topology {
        pristine: setup.correct[..split].to_vec(),
        victims: setup.correct[split..].to_vec(),
        setup,
    }
}

/// Samples the case's fault plan (a pure function of `(algo, sweep, seed)`).
pub fn build_plan(algo: Algo, sweep: &Sweep, seed: u64) -> FaultPlan {
    let topo = topology(algo, sweep, seed);
    let mut population = topo.setup.correct.clone();
    population.extend(topo.setup.faulty.iter().copied());
    let universe = FaultUniverse::new(topo.victims, population, algo.fault_horizon())
        .starting_at(algo.fault_onset());
    FaultPlan::sample(seed, &universe)
}

/// The scripted crash→recover family: every benign victim crashes partway
/// into the algorithm's fault window and recovers two rounds later, all
/// composed with the algorithm's strongest Byzantine attack. A
/// deterministic complement to [`build_plan`]'s sampling, which may or may
/// not draw a crash/recover pair — this family guarantees the recovery
/// path is exercised on every run.
pub fn build_crash_recover_plan(algo: Algo, sweep: &Sweep, seed: u64) -> FaultPlan {
    let topo = topology(algo, sweep, seed);
    let onset = algo.fault_onset();
    let horizon = algo.fault_horizon();
    // Latest eligible crash round keeping `recover = crash + 2 ≤ horizon`.
    let span = horizon.saturating_sub(onset + 2).max(1);
    let mut plan = FaultPlan::new();
    for (i, &victim) in topo.victims.iter().enumerate() {
        let crash_round = onset + (seed + i as u64) % span;
        plan.crash(crash_round, victim);
        plan.recover(crash_round + 2, victim);
    }
    plan
}

/// Why one soak case failed.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// First violating round, when an online monitor caught it; `None` for
    /// post-hoc failures (liveness, missing good round).
    pub round: Option<u64>,
    /// Name of the monitor (property) that fired, when one did.
    pub monitor: Option<String>,
    /// Ids of the offending nodes, when blame is attributable.
    pub nodes: Vec<NodeId>,
    /// Human-readable description.
    pub detail: String,
}

impl CaseFailure {
    fn post_hoc(detail: String) -> Self {
        CaseFailure {
            round: None,
            monitor: None,
            nodes: Vec::new(),
            detail,
        }
    }

    fn post_hoc_blaming(nodes: Vec<NodeId>, detail: String) -> Self {
        CaseFailure {
            nodes,
            ..CaseFailure::post_hoc(detail)
        }
    }
}

fn engine_failure(err: EngineError) -> CaseFailure {
    let (round, monitor, nodes) = match &err {
        EngineError::InvariantViolated(report) => (
            Some(report.round),
            Some(report.spec.clone()),
            report.nodes.clone(),
        ),
        EngineError::FaultedNodeActed { round, node }
        | EngineError::MissingNode { round, node } => (Some(*round), None, vec![*node]),
        EngineError::AcquaintanceViolation { round, from, to } => {
            (Some(*round), None, vec![*from, *to])
        }
        EngineError::MaxRoundsExceeded { undecided, .. } => (None, None, undecided.clone()),
    };
    CaseFailure {
        round,
        monitor,
        nodes,
        detail: err.to_string(),
    }
}

/// Drives `engine` until every pristine node decided or `budget` rounds
/// elapsed, returning the pristine outputs.
fn drive<P, A>(
    engine: &mut SyncEngine<P, A>,
    budget: u64,
    pristine: &[NodeId],
) -> Result<BTreeMap<NodeId, P::Output>, CaseFailure>
where
    P: Process,
    A: Adversary<P::Msg>,
{
    for _ in 0..budget {
        engine.try_run_round().map_err(engine_failure)?;
        let outputs = engine.outputs();
        if pristine.iter().all(|id| outputs.contains_key(id)) {
            return Ok(outputs
                .into_iter()
                .filter(|(id, _)| pristine.contains(id))
                .collect());
        }
    }
    let outputs = engine.outputs();
    let stuck: Vec<NodeId> = pristine
        .iter()
        .copied()
        .filter(|id| !outputs.contains_key(id))
        .collect();
    Err(CaseFailure::post_hoc_blaming(
        stuck.clone(),
        format!("liveness: {stuck:?} undecided after {budget} rounds"),
    ))
}

fn consensus_case(
    sweep: &Sweep,
    seed: u64,
    plan: &FaultPlan,
    tracer: Option<&CaseTracer>,
) -> Option<CaseFailure> {
    let topo = topology(Algo::Consensus, sweep, seed);
    let inputs: BTreeMap<NodeId, u64> = topo
        .setup
        .correct
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, (i % 2) as u64))
        .collect();
    let monitors = MonitorSet::new()
        .with(AgreementMonitor::new(topo.pristine.iter().copied()))
        .with(ValidityMonitor::new(inputs.clone()));
    let mut builder = SyncEngine::builder()
        .correct_many(
            topo.setup
                .correct
                .iter()
                .map(|&id| EarlyConsensus::new(id, inputs[&id])),
        )
        .faulty_many(topo.setup.faulty.iter().copied())
        .adversary(ConsensusEquivocator::new(0u64, 1u64))
        .faults(plan.clone())
        .monitor(monitors);
    if let Some(handle) = tracer {
        builder = builder.tracer(handle.clone()).observe(observe::probe);
    }
    let mut engine = builder.build();
    let budget = 2 + 5 * (topo.setup.n() as u64 + 4);
    drive(&mut engine, budget, &topo.pristine).err()
}

fn reliable_case(
    sweep: &Sweep,
    seed: u64,
    plan: &FaultPlan,
    tracer: Option<&CaseTracer>,
) -> Option<CaseFailure> {
    let topo = topology(Algo::Reliable, sweep, seed);
    let healthy = sweep.n() > 3 * sweep.f();
    // Healthy sweep: a pristine sender broadcasts and the relay property is
    // monitored. Broken sweep: the sender stays silent and the forger tries
    // to sneak an acceptance past the unforgeability monitor.
    let sender = topo.pristine[0];
    let payload: u64 = 7;
    let forger = FnAdversary::new(
        move |view: &AdversaryView<'_, RbMsg<u64>>, out: &mut AdversaryOutbox<RbMsg<u64>>| {
            for &b in view.faulty.iter() {
                out.broadcast(b, RbMsg::Echo(99));
                if view.round > 1 {
                    out.broadcast(b, RbMsg::Echo(payload));
                }
            }
        },
    );
    let mut monitors = MonitorSet::new().with(RelayMonitor::new(topo.pristine.iter().copied()));
    if !healthy {
        monitors =
            MonitorSet::new().with(UnforgeabilityMonitor::new(topo.pristine.iter().copied()));
    }
    let mut builder = SyncEngine::builder()
        .correct_many(topo.setup.correct.iter().map(|&id| {
            let m = (healthy && id == sender).then_some(payload);
            ReliableBroadcast::new(id, sender, m).with_horizon(8)
        }))
        .faulty_many(topo.setup.faulty.iter().copied())
        .adversary(forger)
        .faults(plan.clone())
        .monitor(monitors);
    if let Some(handle) = tracer {
        builder = builder.tracer(handle.clone()).observe(observe::probe);
    }
    let mut engine = builder.build();
    let outputs = match drive(&mut engine, 10, &topo.pristine) {
        Ok(outputs) => outputs,
        Err(fail) => return Some(fail),
    };
    if healthy {
        for (id, accepted) in &outputs {
            if !accepted.contains_key(&payload) {
                return Some(CaseFailure::post_hoc(format!(
                    "correctness: {id} never accepted the pristine sender's payload"
                )));
            }
        }
    }
    None
}

fn approx_case(
    sweep: &Sweep,
    seed: u64,
    plan: &FaultPlan,
    tracer: Option<&CaseTracer>,
) -> Option<CaseFailure> {
    let topo = topology(Algo::Approx, sweep, seed);
    const ITERATIONS: u32 = 2;
    let inputs: BTreeMap<NodeId, f64> = topo
        .setup
        .correct
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i as f64))
        .collect();
    let mut builder = SyncEngine::builder()
        .correct_many(
            topo.setup.correct.iter().map(|&id| {
                ApproxAgreement::new(id, inputs[&id]).with_iterations(ITERATIONS as u64)
            }),
        )
        .faulty_many(topo.setup.faulty.iter().copied())
        .adversary(ApproxExtremist::new(1e9))
        .faults(plan.clone())
        .monitor(
            ApproxMonitor::new(inputs.clone(), ITERATIONS).watched(topo.pristine.iter().copied()),
        );
    if let Some(handle) = tracer {
        builder = builder.tracer(handle.clone()).observe(observe::probe);
    }
    let mut engine = builder.build();
    let outputs = match drive(&mut engine, 10, &topo.pristine) {
        Ok(outputs) => outputs,
        Err(fail) => return Some(fail),
    };
    // Contraction over the pristine outputs (the monitor only checks it
    // when every watched node terminates, which crashed victims never do).
    let report = spec::approx_contraction(&inputs, &outputs, ITERATIONS);
    if !report.holds() {
        return Some(CaseFailure::post_hoc(report.violations.join("; ")));
    }
    None
}

fn rotor_case(
    sweep: &Sweep,
    seed: u64,
    plan: &FaultPlan,
    tracer: Option<&CaseTracer>,
) -> Option<CaseFailure> {
    let topo = topology(Algo::Rotor, sweep, seed);
    let mut builder = SyncEngine::builder()
        .correct_many(
            topo.setup
                .correct
                .iter()
                .map(|&id| RotorCoordinator::new(id, id.raw())),
        )
        .faulty_many(topo.setup.faulty.iter().copied())
        .adversary(RotorSplitAdversary::new())
        .faults(plan.clone());
    if let Some(handle) = tracer {
        builder = builder.tracer(handle.clone()).observe(observe::probe);
    }
    let mut engine = builder.build();
    let outputs = match drive(&mut engine, 60, &topo.pristine) {
        Ok(outputs) => outputs,
        Err(fail) => return Some(fail),
    };
    // The rotor's existential guarantee: some selection round is *good* —
    // every pristine node selected the same pristine coordinator.
    let pristine_set: BTreeSet<NodeId> = topo.pristine.iter().copied().collect();
    let mut iter = outputs.values();
    let first = iter.next().expect("at least one pristine node");
    let mut common: BTreeSet<(u64, NodeId)> = first
        .selections
        .iter()
        .copied()
        .filter(|(_, c)| pristine_set.contains(c))
        .collect();
    for outcome in iter {
        let theirs: BTreeSet<(u64, NodeId)> = outcome.selections.iter().copied().collect();
        common = common.intersection(&theirs).copied().collect();
    }
    if common.is_empty() {
        return Some(CaseFailure::post_hoc(
            "no good round: pristine nodes never unanimously selected a pristine coordinator"
                .to_string(),
        ));
    }
    None
}

/// The tracer stack a traced case installs: a bounded ring of the last
/// events, fanned out with the metrics registry, behind a shared handle so
/// the harness can read both back after the engine is done.
pub type CaseTracer = SharedTracer<Fanout<RingTracer, Metrics>>;

/// Runs one case: a single algorithm under a single fault plan.
pub fn run_case(algo: Algo, sweep: &Sweep, seed: u64, plan: &FaultPlan) -> Option<CaseFailure> {
    run_case_with(algo, sweep, seed, plan, None)
}

fn run_case_with(
    algo: Algo,
    sweep: &Sweep,
    seed: u64,
    plan: &FaultPlan,
    tracer: Option<&CaseTracer>,
) -> Option<CaseFailure> {
    match algo {
        Algo::Consensus => consensus_case(sweep, seed, plan, tracer),
        Algo::Reliable => reliable_case(sweep, seed, plan, tracer),
        Algo::Approx => approx_case(sweep, seed, plan, tracer),
        Algo::Rotor => rotor_case(sweep, seed, plan, tracer),
    }
}

/// One case re-run with full tracing: the outcome plus the captured event
/// window and derived metrics.
#[derive(Debug, Clone)]
pub struct TracedCase {
    /// The case's outcome (identical to the untraced run — tracing never
    /// perturbs the schedule).
    pub failure: Option<CaseFailure>,
    /// The retained trace window, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events that fell out of the window (`--trace-last-n`).
    pub dropped: u64,
    /// Metrics derived from the full event stream (dropped events included).
    pub metrics: Metrics,
}

impl TracedCase {
    /// Renders the window as JSONL, with a `window` header line when events
    /// were dropped — byte-identical across runs for a fixed
    /// `(algo, sweep, seed, plan)`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "{{\"ev\":\"window\",\"dropped\":{}}}\n",
                self.dropped
            ));
        }
        for event in &self.events {
            out.push_str(&to_json(event));
            out.push('\n');
        }
        out
    }
}

/// Re-runs one case with the [`CaseTracer`] stack installed, keeping the
/// last `last_n` events.
pub fn run_case_traced(
    algo: Algo,
    sweep: &Sweep,
    seed: u64,
    plan: &FaultPlan,
    last_n: usize,
) -> TracedCase {
    let handle: CaseTracer = SharedTracer::new(Fanout(RingTracer::new(last_n), Metrics::default()));
    let failure = run_case_with(algo, sweep, seed, plan, Some(&handle));
    let (events, dropped, metrics) = handle.with(|fan| {
        (
            fan.0.events().cloned().collect(),
            fan.0.dropped(),
            fan.1.clone(),
        )
    });
    TracedCase {
        failure,
        events,
        dropped,
        metrics,
    }
}

/// Where a sweep's postmortem dump goes: `dir` joined with
/// `soak-postmortem-<algo>-<sweep>-seed<seed>.jsonl` (a name CI can glob).
pub fn postmortem_path(dir: &Path, algo: Algo, sweep: &Sweep, seed: u64) -> PathBuf {
    dir.join(format!(
        "soak-postmortem-{}-{}-seed{}.jsonl",
        algo.slug(),
        sweep.name(),
        seed
    ))
}

/// Re-runs a shrunk reproduction with tracing and writes the full JSONL
/// next to the report, plus the derived metrics registry as a sibling
/// `.metrics.json` document ([`Metrics::to_json`]: schema-versioned,
/// sorted keys) so a postmortem carries its aggregate shape — counters and
/// histograms — alongside the raw event window. Returns the traced case
/// and the JSONL path written.
pub fn write_postmortem(
    dir: &Path,
    algo: Algo,
    sweep: &Sweep,
    repro: &FailureRepro,
    last_n: usize,
) -> std::io::Result<(TracedCase, PathBuf)> {
    let traced = run_case_traced(algo, sweep, repro.seed, &repro.plan, last_n);
    std::fs::create_dir_all(dir)?;
    let path = postmortem_path(dir, algo, sweep, repro.seed);
    std::fs::write(&path, traced.to_jsonl())?;
    std::fs::write(
        path.with_extension("metrics.json"),
        traced.metrics.to_json(),
    )?;
    Ok((traced, path))
}

/// Greedy schedule shrinker: repeatedly drops single events whose removal
/// keeps the case failing, until no single removal does.
pub fn shrink_plan<F: Fn(&FaultPlan) -> Option<CaseFailure>>(
    still_fails: F,
    plan: &FaultPlan,
) -> FaultPlan {
    let mut current = plan.clone();
    'outer: loop {
        for i in 0..current.len() {
            let candidate = current.without_event(i);
            if still_fails(&candidate).is_some() {
                current = candidate;
                continue 'outer;
            }
        }
        return current;
    }
}

/// A minimal reproduction of the sweep's first failure.
#[derive(Debug, Clone)]
pub struct FailureRepro {
    /// Seed of the failing case.
    pub seed: u64,
    /// First violating round, when an online monitor pinpointed one.
    pub round: Option<u64>,
    /// Name of the monitor that fired, when one did.
    pub monitor: Option<String>,
    /// Offending nodes, when blame is attributable.
    pub nodes: Vec<NodeId>,
    /// Failure description (after shrinking).
    pub detail: String,
    /// The shrunk, minimal fault plan that still reproduces the failure.
    pub plan: FaultPlan,
}

impl FailureRepro {
    /// Compact single-line rendering (the format documented in
    /// EXPERIMENTS.md). The detail is clipped to the first listed violation;
    /// the `soak` binary prints the full report.
    pub fn render(&self) -> String {
        let round = self
            .round
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".to_string());
        let events: Vec<String> = self
            .plan
            .events()
            .map(|(r, f)| format!("{f}@{r}"))
            .collect();
        let detail = self.detail.split("; ").next().unwrap_or(&self.detail);
        format!(
            "seed={} round={} plan={{{}}} {}",
            self.seed,
            round,
            events.join(", "),
            detail
        )
    }
}

/// Aggregate result of soaking one algorithm over one sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The soaked algorithm.
    pub algo: Algo,
    /// The sweep grid point.
    pub sweep: Sweep,
    /// Number of sampled fault plans run.
    pub cases: u64,
    /// Number of failing cases.
    pub failures: u64,
    /// Shrunk reproduction of the first failure, if any.
    pub first_failure: Option<Box<FailureRepro>>,
}

/// Soaks `algo` over `seeds` sampled fault plans on the given sweep.
pub fn soak(algo: Algo, sweep: Sweep, seeds: u64) -> SweepReport {
    soak_jobs(algo, sweep, seeds, 1)
}

/// Like [`soak`], running the independent seed trials on up to `jobs`
/// worker threads. Every trial is a pure function of
/// `(algo, sweep, seed)`; results are merged in seed order and the shrink
/// pass runs once on the smallest failing seed, so the report is
/// byte-identical to the sequential run.
pub fn soak_jobs(algo: Algo, sweep: Sweep, seeds: u64, jobs: usize) -> SweepReport {
    let results = crate::runner::run_indexed(jobs, seeds as usize, |i| {
        let seed = i as u64;
        let plan = build_plan(algo, &sweep, seed);
        run_case(algo, &sweep, seed, &plan).map(|failure| (seed, plan, failure))
    });
    let mut failures = 0;
    let mut first_failure = None;
    for (seed, plan, failure) in results.into_iter().flatten() {
        failures += 1;
        if first_failure.is_none() {
            let shrunk = shrink_plan(|p| run_case(algo, &sweep, seed, p), &plan);
            let after = run_case(algo, &sweep, seed, &shrunk).unwrap_or(failure);
            first_failure = Some(Box::new(FailureRepro {
                seed,
                round: after.round,
                monitor: after.monitor,
                nodes: after.nodes,
                detail: after.detail,
                plan: shrunk,
            }));
        }
    }
    SweepReport {
        algo,
        sweep,
        cases: seeds,
        failures,
        first_failure,
    }
}

/// Seeds per algorithm in the healthy sweep of [`run`].
pub const HEALTHY_SEEDS: u64 = 100;
/// Seeds per algorithm in the broken sweep of [`run`].
pub const BROKEN_SEEDS: u64 = 25;
/// Seeds per algorithm in the crash→recover family of [`run`].
pub const CRASH_RECOVER_SEEDS: u64 = 50;

/// Soaks `algo` over the scripted crash→recover family on the healthy
/// sweep: `seeds` deterministic plans from [`build_crash_recover_plan`],
/// each run against the algorithm's attack with the monitors installed.
pub fn crash_recover_family(algo: Algo, seeds: u64) -> SweepReport {
    let sweep = Sweep::HEALTHY;
    let mut failures = 0;
    let mut first_failure = None;
    for seed in 0..seeds {
        let plan = build_crash_recover_plan(algo, &sweep, seed);
        if let Some(failure) = run_case(algo, &sweep, seed, &plan) {
            failures += 1;
            if first_failure.is_none() {
                let shrunk = shrink_plan(|p| run_case(algo, &sweep, seed, p), &plan);
                let after = run_case(algo, &sweep, seed, &shrunk).unwrap_or(failure);
                first_failure = Some(Box::new(FailureRepro {
                    seed,
                    round: after.round,
                    monitor: after.monitor,
                    nodes: after.nodes,
                    detail: after.detail,
                    plan: shrunk,
                }));
            }
        }
    }
    SweepReport {
        algo,
        sweep,
        cases: seeds,
        failures,
        first_failure,
    }
}

/// Runs experiment T10.
pub fn run() -> Vec<Table> {
    run_with_postmortem(None)
}

/// Like [`run`], but when `postmortem` supplies `(directory, last_n)` every
/// sweep's first failure is re-run with tracing and dumped as JSONL via
/// [`write_postmortem`] (the `--trace-out` / `--trace-last-n` flags).
pub fn run_with_postmortem(postmortem: Option<(&Path, usize)>) -> Vec<Table> {
    let mut table = Table::new(
        "T10 — fault-injection soak: sampled fault plans composed with each algorithm's attack, online monitors on the pristine nodes",
        &["algorithm", "sweep", "n", "f", "cases", "violations", "first repro (shrunk)"],
    );
    for (sweep, seeds) in [
        (Sweep::HEALTHY, HEALTHY_SEEDS),
        (Sweep::BROKEN, BROKEN_SEEDS),
    ] {
        for algo in Algo::ALL {
            let report = soak(algo, sweep, seeds);
            if let (Some((dir, last_n)), Some(first)) =
                (postmortem, report.first_failure.as_deref())
            {
                match write_postmortem(dir, algo, &sweep, first, last_n) {
                    Ok((_, path)) => eprintln!("postmortem trace: {}", path.display()),
                    Err(err) => eprintln!("postmortem trace write failed: {err}"),
                }
            }
            table.row(&[
                algo.name().to_string(),
                sweep.name().to_string(),
                sweep.n().to_string(),
                sweep.f().to_string(),
                report.cases.to_string(),
                report.failures.to_string(),
                report
                    .first_failure
                    .as_deref()
                    .map(FailureRepro::render)
                    .unwrap_or_default(),
            ]);
        }
    }
    let mut family = Table::new(
        "T10 — scripted crash→recover family: every victim crashes mid-window and recovers two rounds later, composed with the attack (healthy sweep)",
        &["algorithm", "n", "f", "cases", "violations", "first repro (shrunk)"],
    );
    for algo in Algo::ALL {
        let report = crash_recover_family(algo, CRASH_RECOVER_SEEDS);
        family.row(&[
            algo.name().to_string(),
            report.sweep.n().to_string(),
            report.sweep.f().to_string(),
            report.cases.to_string(),
            report.failures.to_string(),
            report
                .first_failure
                .as_deref()
                .map(FailureRepro::render)
                .unwrap_or_default(),
        ]);
    }
    vec![table, family]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t10_healthy_sweep_is_clean() {
        for algo in Algo::ALL {
            let report = soak(algo, Sweep::HEALTHY, 30);
            assert_eq!(
                report.failures,
                0,
                "{} failed in-budget: {}",
                algo.name(),
                report
                    .first_failure
                    .as_deref()
                    .map(FailureRepro::render)
                    .unwrap_or_default()
            );
        }
    }

    #[test]
    fn t10_crash_recover_family_is_clean() {
        for algo in Algo::ALL {
            let report = crash_recover_family(algo, 20);
            assert_eq!(
                report.failures,
                0,
                "{} violated an invariant under scripted crash→recover: {}",
                algo.name(),
                report
                    .first_failure
                    .as_deref()
                    .map(FailureRepro::render)
                    .unwrap_or_default()
            );
        }
    }

    #[test]
    fn t10_broken_sweep_pinpoints_the_first_round() {
        let report = soak(Algo::Consensus, Sweep::BROKEN, 10);
        assert!(report.failures > 0, "equivocator too weak at f >= n/3");
        let first = report.first_failure.expect("a failure was recorded");
        assert!(
            first.round.is_some(),
            "the monitor pinpoints the first violating round: {}",
            first.render()
        );
    }

    #[test]
    fn t10_shrinker_reaches_a_fixpoint() {
        let report = soak(Algo::Consensus, Sweep::BROKEN, 3);
        let first = report.first_failure.expect("a failure was recorded");
        // Every single-event removal from the shrunk plan must repair the
        // case — otherwise the shrinker stopped early.
        for i in 0..first.plan.len() {
            let candidate = first.plan.without_event(i);
            assert!(
                run_case(Algo::Consensus, &Sweep::BROKEN, first.seed, &candidate).is_some(),
                "shrunk plan is not minimal: event {i} is removable"
            );
        }
    }
}
