//! T5 — total ordering in dynamic networks (Algorithm 6).
//!
//! Paper claims validated:
//! - **chain-prefix**: at every observation point, any two correct nodes'
//!   chains are prefixes of one another (suffix-consistent for late
//!   joiners);
//! - **chain-growth**: chains keep growing while correct nodes submit
//!   events, across joins and leaves (always with `n > 3f`);
//! - the finality lag matches the rule `r − r' > 5|S|/2 + 2`.

use uba_core::harness::mutual_prefix;
use uba_core::ordering::{Chain, TotalOrdering};
use uba_sim::{sparse_ids, ChurnSchedule, SyncEngine};

use crate::Table;

/// Runs experiment T5.
pub fn run() -> Vec<Table> {
    let mut growth = Table::new(
        "T5a — chain growth and prefix-consistency under churn (4 founders, 2 joiners, 1 leaver, events every round)",
        &["round", "members' chains (min len)", "max len", "prefix-consistent", "finality lag (rounds)"],
    );

    let ids = sparse_ids(7, 1234);
    let founders = &ids[..4];
    let horizon = 90;
    let mut churn: ChurnSchedule<TotalOrdering<u64>> = ChurnSchedule::new();
    for (k, &joiner) in ids[4..6].iter().enumerate() {
        churn.join_correct(
            8 + 4 * k as u64,
            TotalOrdering::joining(joiner)
                .with_events((20..40).map(|r| (r, 1000 * (k as u64 + 1) + r)))
                .with_horizon(horizon),
        );
    }
    let mut engine = SyncEngine::builder()
        .correct_many(founders.iter().enumerate().map(|(i, &id)| {
            let node = TotalOrdering::genesis(id)
                .with_events((2..60).map(move |r| (r, 100 * i as u64 + r)));
            if i == 0 {
                node.with_leave_at(45)
            } else {
                node.with_horizon(horizon)
            }
        }))
        .churn(churn)
        .build();

    let mut last_len: std::collections::BTreeMap<uba_sim::NodeId, usize> =
        std::collections::BTreeMap::new();
    let mut growth_ok = true;
    for checkpoint in 1..=9u64 {
        engine.run_rounds(10);
        let round = checkpoint * 10;
        // Per-node growth: no node's chain may ever shrink.
        for &id in engine.correct_ids().iter() {
            if let Some(p) = engine.process(id) {
                let len = p.chain().len();
                let prev = last_len.insert(id, len).unwrap_or(0);
                growth_ok &= len >= prev;
            }
        }
        // Observe the live chains of all present, running nodes.
        let chains: Vec<Chain<u64>> = engine
            .correct_ids()
            .iter()
            .filter_map(|&id| engine.process(id).map(|p| p.chain()))
            .filter(|c| !c.is_empty())
            .collect();
        if chains.is_empty() {
            growth.row(&[
                round.to_string(),
                "0".into(),
                "0".into(),
                "true".into(),
                "—".into(),
            ]);
            continue;
        }
        let min_len = chains.iter().map(Vec::len).min().unwrap_or(0);
        let max_len = chains.iter().map(Vec::len).max().unwrap_or(0);
        let mut consistent = true;
        for i in 0..chains.len() {
            for j in i + 1..chains.len() {
                let (a, b) = (&chains[i], &chains[j]);
                let lo = a[0].wave.max(b[0].wave);
                let a_win: Vec<_> = a.iter().filter(|e| e.wave >= lo).collect();
                let b_win: Vec<_> = b.iter().filter(|e| e.wave >= lo).collect();
                if !mutual_prefix(&a_win, &b_win) {
                    consistent = false;
                }
            }
        }
        // Finality lag: current round minus the newest final wave.
        let newest_final = chains
            .iter()
            .filter_map(|c| c.last().map(|e| e.wave))
            .max()
            .unwrap_or(0);
        growth.row(&[
            round.to_string(),
            min_len.to_string(),
            max_len.to_string(),
            consistent.to_string(),
            (round.saturating_sub(newest_final)).to_string(),
        ]);
    }
    assert!(growth_ok, "chain length regressed");

    let mut finality = Table::new(
        "T5b — finality rule: a wave with snapshot size |S| is final after 5|S|/2 + 2 rounds (plus consensus termination)",
        &["|S|", "finality lag bound (rounds)"],
    );
    for s in [4usize, 6, 9, 13] {
        finality.row(&[s.to_string(), format!("> {}", 5 * s as u64 / 2 + 2)]);
    }

    vec![growth, finality]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t5_claims_hold() {
        let tables = run();
        for row in &tables[0].rows {
            assert_eq!(row[3], "true", "prefix consistency: {row:?}");
        }
        // Chains eventually grow.
        let last = tables[0].rows.last().expect("rows");
        assert!(last[1].parse::<usize>().unwrap() > 0, "no growth: {last:?}");
    }
}
