//! One module per experiment of EXPERIMENTS.md.
//!
//! Every module exposes `run() -> Vec<Table>`; the tables' shapes (not
//! absolute timings) are the reproduction targets — who wins, by what
//! factor, and where thresholds fall.

pub mod f1_approx;
pub mod f2_synchrony;
pub mod t10_faults;
pub mod t11_net;
pub mod t12_rejoin;
pub mod t13_wan;
pub mod t14_logd;
pub mod t15_byzantine;
pub mod t1_reliable;
pub mod t2_rotor;
pub mod t3_consensus;
pub mod t4_parallel;
pub mod t5_ordering;
pub mod t6_resiliency;
pub mod t7_baselines;
pub mod t8_extensions;
pub mod t9_ablation;
