//! T1 — reliable broadcast (Algorithm 1).
//!
//! Paper claims validated:
//! - **Correctness**: with a correct sender, every correct node accepts in
//!   round 3, for every `n > 3f` and every adversary.
//! - **Relay**: acceptance rounds of any two correct nodes differ by ≤ 1.
//! - **Unforgeability**: a message the (correct, silent) sender never
//!   broadcast is never accepted, no matter how many forged echoes the
//!   adversary injects.
//! - Message complexity matches the known-`f` Srikanth–Toueg baseline up to
//!   the one extra `present` round (see T7).

use std::collections::BTreeMap;

use uba_adversary::ScriptedAdversary;
use uba_core::harness::{max_faulty, Setup};
use uba_core::reliable::{RbMsg, ReliableBroadcast};
use uba_sim::{Adversary, AdversaryOutbox, AdversaryView, FnAdversary, NodeId, SyncEngine};

use crate::Table;

type Msg = RbMsg<&'static str>;

fn run_one<A: Adversary<Msg>>(
    setup: &Setup,
    sender_sends: bool,
    adversary: A,
) -> (BTreeMap<NodeId, BTreeMap<&'static str, u64>>, u64, u64) {
    let sender = setup.correct[0];
    let horizon = 8;
    let mut engine = SyncEngine::builder()
        .correct_many(setup.correct.iter().map(|&id| {
            ReliableBroadcast::new(id, sender, (id == sender && sender_sends).then_some("m"))
                .with_horizon(horizon)
        }))
        .faulty_many(setup.faulty.iter().copied())
        .adversary(adversary)
        .build();
    let done = engine
        .run_to_completion(horizon + 2)
        .expect("horizon reached");
    let sends = done.stats.correct_sends;
    (done.outputs, sends, done.stats.adversary_sends)
}

/// Echo-forging adversary: floods `echo("forged")` (and also echoes the real
/// message to be maximally confusing) from every faulty node, every round.
fn forger() -> impl Adversary<Msg> {
    FnAdversary::new(
        |view: &AdversaryView<'_, Msg>, out: &mut AdversaryOutbox<Msg>| {
            for &b in view.faulty.iter() {
                out.broadcast(b, RbMsg::Echo("forged"));
                out.broadcast(b, RbMsg::Echo("m"));
            }
        },
    )
}

/// Runs experiment T1.
pub fn run() -> Vec<Table> {
    let mut correctness = Table::new(
        "T1a — correctness & relay: correct sender accepted in round 3 by every correct node (n > 3f, adversary active)",
        &["n", "f", "adversary", "accepted by", "accept round (min..max)", "relay gap ≤ 1", "correct sends"],
    );

    for n in [4usize, 7, 13, 25, 40, 61] {
        let f = max_faulty(n);
        let g = n - f;
        for (name, idx) in [("none", 0), ("vanish", 1), ("forge-echo", 2)] {
            let setup = Setup::new(g, f, 7 + n as u64);
            let (outputs, sends, _) = match idx {
                0 => run_one(&setup, true, uba_sim::NoAdversary),
                1 => run_one(
                    &setup,
                    true,
                    ScriptedAdversary::announce_then_vanish(RbMsg::Present),
                ),
                _ => run_one(&setup, true, forger()),
            };
            let rounds: Vec<u64> = outputs
                .values()
                .filter_map(|acc| acc.get("m").copied())
                .collect();
            let accepted = rounds.len();
            let min = rounds.iter().min().copied().unwrap_or(0);
            let max = rounds.iter().max().copied().unwrap_or(0);
            correctness.row(&[
                n.to_string(),
                f.to_string(),
                name.to_string(),
                format!("{accepted}/{g}"),
                format!("{min}..{max}"),
                (max.saturating_sub(min) <= 1).to_string(),
                sends.to_string(),
            ]);
        }
    }

    let mut unforgeability = Table::new(
        "T1b — unforgeability: forged echoes never get accepted when the correct sender stays silent",
        &["n", "f", "forged echo senders", "forged accepted", "anything accepted"],
    );
    for n in [4usize, 10, 22, 40] {
        let f = max_faulty(n);
        let setup = Setup::new(n - f, f, 100 + n as u64);
        let (outputs, _, _) = run_one(&setup, false, forger());
        let forged = outputs
            .values()
            .filter(|acc| acc.contains_key("forged"))
            .count();
        let anything = outputs.values().filter(|acc| !acc.is_empty()).count();
        unforgeability.row(&[
            n.to_string(),
            f.to_string(),
            f.to_string(),
            forged.to_string(),
            anything.to_string(),
        ]);
    }

    vec![correctness, unforgeability]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_claims_hold() {
        let tables = run();
        for row in &tables[0].rows {
            assert!(
                row[3].starts_with(&row[3].split('/').next_back().unwrap().to_string()),
                "all correct nodes accept: {row:?}"
            );
            let parts: Vec<&str> = row[3].split('/').collect();
            assert_eq!(parts[0], parts[1], "everyone accepted: {row:?}");
            assert_eq!(row[4], "3..3", "acceptance in round 3: {row:?}");
            assert_eq!(row[5], "true");
        }
        for row in &tables[1].rows {
            assert_eq!(row[3], "0", "forgery accepted: {row:?}");
            assert_eq!(row[4], "0", "spurious acceptance: {row:?}");
        }
    }
}
